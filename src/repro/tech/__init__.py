"""Process technology substrate: node parameters and delay models."""

from repro.tech.delay import (
    DriveResult,
    buffer_chain_delay,
    horowitz,
    rc_charge_time,
    rc_wire_delay,
)
from repro.tech.node import SUPPORTED_NODES_NM, TechnologyNode, get_node, nearest_node

__all__ = [
    "SUPPORTED_NODES_NM",
    "TechnologyNode",
    "get_node",
    "nearest_node",
    "horowitz",
    "rc_wire_delay",
    "rc_charge_time",
    "buffer_chain_delay",
    "DriveResult",
]
