"""Gate and interconnect delay models.

Implements the standard building blocks NVSim/CACTI use to turn an array
organization into timing numbers:

* :func:`horowitz` — Horowitz's approximation for the delay of a gate driving
  an RC load with a non-zero input transition time.
* :func:`rc_wire_delay` — Elmore delay of a distributed RC wire.
* :func:`rc_charge_time` — time for an RC node to swing a given fraction of
  the supply, used for bitline discharge through a cell.
* :func:`buffer_chain_delay` — delay and energy of an optimally-sized
  inverter chain driving a large capacitive load (wordline drivers, output
  drivers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.node import TechnologyNode

#: Threshold-crossing ratio for Horowitz (input swing considered "switched").
_VS = 0.5
#: ln(2) — RC time constants to swing half the rail.
_LN2 = math.log(2.0)


def horowitz(input_ramp: float, time_constant: float) -> float:
    """Delay of a gate with output time constant ``time_constant`` (seconds)
    driven by an input with 10-90% ramp ``input_ramp`` (seconds).

    This is the same approximation CACTI and NVSim use; for a step input it
    reduces to ``time_constant * ln(2)``.
    """
    if time_constant < 0 or input_ramp < 0:
        raise ValueError("horowitz arguments must be non-negative")
    if time_constant == 0:
        return 0.0
    a = input_ramp / time_constant
    return time_constant * math.sqrt((_LN2 * _LN2) + 2 * a * (1 - _VS) * _LN2)


def rc_wire_delay(resistance: float, capacitance: float) -> float:
    """Elmore delay of a distributed RC line (0.38 RC), in seconds."""
    return 0.38 * resistance * capacitance


def rc_charge_time(resistance: float, capacitance: float, swing_fraction: float = 0.5) -> float:
    """Time for an RC node to swing ``swing_fraction`` of the rail, seconds.

    Used for bitline discharge through a memory cell: the cell's effective
    resistance drives the bitline capacitance until the sense amplifier can
    resolve the swing.
    """
    if not 0.0 < swing_fraction < 1.0:
        raise ValueError("swing_fraction must be in (0, 1)")
    return resistance * capacitance * math.log(1.0 / (1.0 - swing_fraction))


@dataclass(frozen=True)
class DriveResult:
    """Delay and switching energy of a driver stage or chain."""

    delay: float
    energy: float


def buffer_chain_delay(node: TechnologyNode, load_cap: float) -> DriveResult:
    """Delay/energy of an inverter chain driving ``load_cap`` farads.

    Sizes the chain with fanout-of-4 stages starting from a minimum inverter;
    delay is ``n_stages * fo4`` and energy is the total switched capacitance
    at vdd (load plus intermediate stages, approximated by a geometric
    series with ratio 1/4 of the load).
    """
    if load_cap < 0:
        raise ValueError("load_cap must be non-negative")
    c_min = node.min_transistor_gate_cap
    if load_cap <= c_min or c_min <= 0:
        return DriveResult(delay=node.logic_gate_delay, energy=load_cap * node.vdd**2)
    n_stages = max(1, math.ceil(math.log(load_cap / c_min, 4.0)))
    # Intermediate stage caps form a geometric series summing to ~load/3.
    switched_cap = load_cap * (1.0 + 1.0 / 3.0)
    return DriveResult(
        delay=n_stages * node.logic_gate_delay,
        energy=switched_cap * node.vdd**2,
    )
