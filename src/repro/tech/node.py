"""Process technology node models.

The array characterizer (:mod:`repro.nvsim`) needs per-node device and
interconnect parameters: supply voltage, transistor drive strength and
capacitance, wire RC, and leakage.  This module provides a table of
technology nodes from 130 nm down to 7 nm with parameters that follow the
scaling trends used by CACTI and NVSim: drive current per micron improves
slowly, capacitance per micron shrinks with pitch, wire resistance per micron
grows sharply below 32 nm, and leakage per micron of transistor width grows
as threshold voltages drop.

The absolute values are representative rather than foundry-exact — the
reproduction needs correct relative behaviour across nodes and technologies
(see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import NANOMETER

#: Nodes the framework ships parameters for, in nanometers.
SUPPORTED_NODES_NM: tuple[int, ...] = (7, 10, 14, 16, 22, 28, 32, 40, 45, 65, 90, 130)


@dataclass(frozen=True)
class TechnologyNode:
    """Device and interconnect parameters for one process node.

    Attributes
    ----------
    node_nm:
        Nominal feature size in nanometers (e.g. ``22``).
    feature_size:
        Feature size ``F`` in meters; cell areas are expressed in units of
        ``F^2``.
    vdd:
        Nominal supply voltage in volts.
    ion_per_um:
        NMOS saturation drive current per micron of gate width, in A/um.
    ioff_per_um:
        NMOS off-state (leakage) current per micron of gate width, in A/um.
    gate_cap_per_um:
        Gate capacitance per micron of gate width, in F/um.
    drain_cap_per_um:
        Drain diffusion capacitance per micron of gate width, in F/um.
    min_width_um:
        Minimum transistor width in microns (~3F).
    wire_res_per_um:
        Local wire (M2-class) resistance, ohms per micron.
    wire_cap_per_um:
        Local wire capacitance, farads per micron.
    sense_amp_delay:
        Latched sense-amplifier resolution delay, seconds.
    sense_amp_energy:
        Energy per sense-amp activation, joules.
    sense_amp_area:
        Layout area of one sense amplifier, m^2.
    logic_gate_delay:
        FO4 inverter delay, seconds; used for decoder stage estimates.
    """

    node_nm: int
    feature_size: float
    vdd: float
    ion_per_um: float
    ioff_per_um: float
    gate_cap_per_um: float
    drain_cap_per_um: float
    min_width_um: float
    wire_res_per_um: float
    wire_cap_per_um: float
    sense_amp_delay: float
    sense_amp_energy: float
    sense_amp_area: float
    logic_gate_delay: float

    @property
    def min_transistor_on_resistance(self) -> float:
        """Effective on-resistance of a minimum-width NMOS, in ohms."""
        return self.vdd / (self.ion_per_um * self.min_width_um)

    @property
    def min_transistor_gate_cap(self) -> float:
        """Gate capacitance of a minimum-width transistor, in farads."""
        return self.gate_cap_per_um * self.min_width_um

    @property
    def min_transistor_drain_cap(self) -> float:
        """Drain capacitance of a minimum-width transistor, in farads."""
        return self.drain_cap_per_um * self.min_width_um

    @property
    def min_transistor_leakage(self) -> float:
        """Off-state leakage power of a minimum-width NMOS at vdd, in watts."""
        return self.vdd * self.ioff_per_um * self.min_width_um

    @property
    def global_wire_res_per_um(self) -> float:
        """Wide upper-metal (H-tree) wire resistance, ohms per micron."""
        return 0.45 * self.wire_res_per_um

    def wire_resistance(self, length: float) -> float:
        """Resistance of a local wire of ``length`` meters, in ohms."""
        return self.wire_res_per_um * (length / 1e-6)

    def global_wire_resistance(self, length: float) -> float:
        """Resistance of a global wire of ``length`` meters, in ohms."""
        return self.global_wire_res_per_um * (length / 1e-6)

    def wire_capacitance(self, length: float) -> float:
        """Capacitance of a local wire of ``length`` meters, in farads."""
        return self.wire_cap_per_um * (length / 1e-6)


def _build_table() -> dict[int, TechnologyNode]:
    # (node, vdd, ion uA/um, ioff nA/um, cgate fF/um, cdrain fF/um,
    #  wire ohm/um, wire fF/um, SA ps, SA fJ, fo4 ps)
    #
    # Wire resistance is for minimum-pitch in-array routing (bitlines and
    # wordlines run at cell pitch); it rises sharply below 32 nm as barrier
    # layers eat into the copper cross-section.  Global routing (the H-tree)
    # uses wider upper-metal wires; see TechnologyNode.global_wire_res_per_um.
    rows = [
        (130, 1.30, 600, 10.0, 1.60, 1.30, 1.6, 0.40, 400, 12.0, 45),
        (90, 1.20, 700, 30.0, 1.40, 1.10, 2.5, 0.35, 320, 9.0, 33),
        (65, 1.10, 750, 100.0, 1.20, 0.95, 4.0, 0.30, 260, 7.0, 24),
        (45, 1.00, 850, 200.0, 1.00, 0.80, 7.0, 0.26, 210, 5.0, 17),
        (40, 1.00, 880, 220.0, 0.95, 0.76, 8.0, 0.25, 200, 4.6, 15),
        (32, 0.95, 950, 280.0, 0.85, 0.68, 12.0, 0.22, 170, 3.6, 12),
        (28, 0.95, 1000, 300.0, 0.80, 0.64, 14.0, 0.21, 160, 3.2, 11),
        (22, 0.90, 1050, 320.0, 0.72, 0.58, 20.0, 0.19, 140, 2.6, 9),
        (16, 0.85, 1150, 350.0, 0.62, 0.50, 35.0, 0.17, 120, 2.0, 7),
        (14, 0.80, 1200, 360.0, 0.58, 0.46, 42.0, 0.16, 110, 1.8, 6),
        (10, 0.75, 1250, 380.0, 0.52, 0.42, 60.0, 0.15, 100, 1.5, 5),
        (7, 0.70, 1300, 400.0, 0.46, 0.37, 90.0, 0.14, 90, 1.2, 4),
    ]
    table: dict[int, TechnologyNode] = {}
    for node, vdd, ion, ioff, cg, cd, wres, wcap, sa_ps, sa_fj, fo4_ps in rows:
        feature = node * NANOMETER
        min_width_um = 3.0 * node * 1e-3  # ~3F expressed in microns
        # A sense amp occupies roughly 60 F x 30 F of layout.
        sa_area = (60 * feature) * (30 * feature)
        table[node] = TechnologyNode(
            node_nm=node,
            feature_size=feature,
            vdd=vdd,
            ion_per_um=ion * 1e-6,
            ioff_per_um=ioff * 1e-9,
            gate_cap_per_um=cg * 1e-15,
            drain_cap_per_um=cd * 1e-15,
            min_width_um=min_width_um,
            wire_res_per_um=wres,
            wire_cap_per_um=wcap * 1e-15,
            sense_amp_delay=sa_ps * 1e-12,
            sense_amp_energy=sa_fj * 1e-15,
            sense_amp_area=sa_area,
            logic_gate_delay=fo4_ps * 1e-12,
        )
    return table


_NODE_TABLE: dict[int, TechnologyNode] = _build_table()


def get_node(node_nm: int) -> TechnologyNode:
    """Return the :class:`TechnologyNode` for ``node_nm``.

    Raises
    ------
    ConfigError
        If the node is not one of :data:`SUPPORTED_NODES_NM`.
    """
    try:
        return _NODE_TABLE[int(node_nm)]
    except KeyError:
        supported = ", ".join(str(n) for n in SUPPORTED_NODES_NM)
        raise ConfigError(
            f"unsupported technology node {node_nm} nm (supported: {supported})"
        ) from None


def nearest_node(node_nm: float) -> TechnologyNode:
    """Return the supported node closest to ``node_nm``.

    Useful when a surveyed publication reports an off-grid node (e.g. 120 nm).
    """
    best = min(SUPPORTED_NODES_NM, key=lambda n: abs(n - node_nm))
    return _NODE_TABLE[best]
