"""SPEC CPU2017 last-level-cache traffic characterization (Section IV-C).

The paper simulates SPECrate CPU2017 on a Skylake-like core with Sniper and
feeds the resulting 16 MB LLC access statistics (reads, writes, execution
time per benchmark) into NVMExplorer.  Sniper and the SPEC binaries are not
available offline, so this module ships a characterization table whose LLC
read/write rates are consistent with published SPEC2017 LLC MPKI studies:
a ~4 GHz 8-core part, per-benchmark LLC read MPKI of roughly 0.2-25 and
write (dirty writeback) MPKI of roughly 0.05-12.

``repro.cachesim`` can regenerate a table of the same form from synthetic
address streams (see DESIGN.md, "Substitutions"); the studies accept either
source because both are just lists of :class:`TrafficPattern`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traffic.base import TrafficPattern

#: 64-byte cache lines.
LLC_LINE_BYTES = 64

#: Aggregate instruction throughput of the simulated 8-core part, inst/s.
_AGGREGATE_IPS = 2.0e10


@dataclass(frozen=True)
class SpecBenchmark:
    """One SPEC CPU2017 benchmark's LLC behaviour."""

    name: str
    suite: str  # "SPECint" | "SPECfp"
    llc_read_mpki: float
    llc_write_mpki: float

    @property
    def reads_per_second(self) -> float:
        return self.llc_read_mpki * _AGGREGATE_IPS / 1000.0

    @property
    def writes_per_second(self) -> float:
        return self.llc_write_mpki * _AGGREGATE_IPS / 1000.0


#: Characterization table: LLC MPKI values representative of SPECrate 2017
#: on a 16 MB inclusive LLC (read MPKI = LLC loads, write MPKI = dirty
#: writebacks).  Memory-bound benchmarks (mcf, lbm, bwaves...) sit at the
#: top; compute-bound ones (exchange2, leela...) at the bottom.
SPEC2017_BENCHMARKS: tuple[SpecBenchmark, ...] = (
    SpecBenchmark("600.perlbench_s", "SPECint", 0.9, 0.35),
    SpecBenchmark("602.gcc_s", "SPECint", 5.2, 2.6),
    SpecBenchmark("605.mcf_s", "SPECint", 24.8, 7.4),
    SpecBenchmark("620.omnetpp_s", "SPECint", 10.3, 4.9),
    SpecBenchmark("623.xalancbmk_s", "SPECint", 4.1, 1.3),
    SpecBenchmark("625.x264_s", "SPECint", 1.2, 0.5),
    SpecBenchmark("631.deepsjeng_s", "SPECint", 1.6, 0.7),
    SpecBenchmark("641.leela_s", "SPECint", 0.4, 0.15),
    SpecBenchmark("648.exchange2_s", "SPECint", 0.2, 0.05),
    SpecBenchmark("657.xz_s", "SPECint", 6.4, 3.1),
    SpecBenchmark("603.bwaves_s", "SPECfp", 18.5, 6.2),
    SpecBenchmark("607.cactuBSSN_s", "SPECfp", 7.9, 3.8),
    SpecBenchmark("619.lbm_s", "SPECfp", 22.1, 11.8),
    SpecBenchmark("621.wrf_s", "SPECfp", 6.8, 2.9),
    SpecBenchmark("627.cam4_s", "SPECfp", 4.6, 1.9),
    SpecBenchmark("628.pop2_s", "SPECfp", 5.8, 2.4),
    SpecBenchmark("638.imagick_s", "SPECfp", 0.6, 0.2),
    SpecBenchmark("644.nab_s", "SPECfp", 1.1, 0.4),
    SpecBenchmark("649.fotonik3d_s", "SPECfp", 14.2, 5.6),
    SpecBenchmark("654.roms_s", "SPECfp", 9.7, 4.2),
)


def spec_traffic(benchmark: SpecBenchmark) -> TrafficPattern:
    """LLC traffic for one benchmark."""
    return TrafficPattern(
        name=benchmark.name,
        reads_per_second=benchmark.reads_per_second,
        writes_per_second=benchmark.writes_per_second,
        access_bytes=LLC_LINE_BYTES,
        metadata={"suite": benchmark.suite, "kind": "spec2017"},
    )


def spec2017_suite() -> list[TrafficPattern]:
    """LLC traffic for the full SPEC CPU2017 characterization table."""
    return [spec_traffic(b) for b in SPEC2017_BENCHMARKS]


def benchmark_by_name(name: str) -> SpecBenchmark:
    """Look up one benchmark (exact or suffix-tolerant match)."""
    for bench in SPEC2017_BENCHMARKS:
        if bench.name == name or bench.name.split(".")[-1] == name:
            return bench
    raise KeyError(f"unknown SPEC2017 benchmark: {name!r}")
