"""DNN workload descriptors and the NVDLA-style buffer performance model.

The DNN case study (Section IV-A) extracts on-chip buffer traffic for a
ResNet-class image network and an ALBERT-class NLP network, deployed either
*continuously* (60 frames per second of streaming video) or *intermittently*
(the accelerator powers off between inferences and eNVM retains the
weights).

The paper uses the NVDLA performance model for traffic extraction; here
:class:`NVDLAPerformanceModel` is an analytical equivalent: per frame, the
on-chip buffer serves each live weight a ``weight_reuse``-times (tiling
re-reads) and, when activations are buffered on-chip too, one write and one
read per activation byte.  ALBERT re-reads its layer-shared parameters once
per transformer layer, which is what makes its per-inference access count —
and hence its energy slope in Figure 7 — much larger than ResNet's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TrafficError
from repro.traffic.base import TrafficPattern
from repro.units import mb

#: Buffer access granularity of the accelerator datapath (one 64 B block).
ACCELERATOR_ACCESS_BYTES = 64

#: Frame rate for the continuous (streaming HD video) use case.
CONTINUOUS_FPS = 60.0


@dataclass(frozen=True)
class DNNWorkload:
    """One network's storage and compute footprint.

    ``weight_bytes`` assumes 8-bit weights (the storage studies sweep the
    encoding separately); ``weight_reuse`` is how many times each buffered
    weight byte is re-read per inference by the tiled dataflow.
    """

    name: str
    weight_bytes: int
    activation_bytes: int
    macs_per_inference: float
    weight_reuse: float
    #: Rough single-inference latency on the accelerator, seconds (used for
    #: the active-window energy of intermittent operation).
    inference_seconds: float
    task: str = "image-classification"

    def __post_init__(self) -> None:
        if self.weight_bytes <= 0 or self.activation_bytes < 0:
            raise TrafficError(f"{self.name}: invalid footprint")
        if self.weight_reuse < 1.0:
            raise TrafficError(f"{self.name}: weight reuse must be >= 1")
        if self.inference_seconds <= 0:
            raise TrafficError(f"{self.name}: inference time must be positive")

    def combined_with(self, *others: "DNNWorkload", name: str) -> "DNNWorkload":
        """A multi-task workload running this network plus ``others``."""
        nets = (self, *others)
        return DNNWorkload(
            name=name,
            weight_bytes=sum(n.weight_bytes for n in nets),
            activation_bytes=sum(n.activation_bytes for n in nets),
            macs_per_inference=sum(n.macs_per_inference for n in nets),
            weight_reuse=max(n.weight_reuse for n in nets),
            inference_seconds=sum(n.inference_seconds for n in nets),
            task="multi-task",
        )


# --- the paper's workloads -------------------------------------------------

# The edge-quantized ResNet26 of the NVDLA study: 8-bit weights sized to the
# accelerator's 2 MB convolution buffer.
RESNET26 = DNNWorkload(
    name="resnet26",
    weight_bytes=mb(2),
    activation_bytes=mb(1),
    macs_per_inference=2.6e9,
    weight_reuse=3.0,
    inference_seconds=8e-3,
)

RESNET18 = DNNWorkload(
    name="resnet18",
    weight_bytes=mb(11.5),
    activation_bytes=mb(2.0),
    macs_per_inference=1.8e9,
    weight_reuse=3.0,
    inference_seconds=7e-3,
)

OBJECT_DETECTION = DNNWorkload(
    name="object-detection",
    weight_bytes=mb(8),
    activation_bytes=mb(4),
    macs_per_inference=4.0e9,
    weight_reuse=3.0,
    inference_seconds=12e-3,
    task="object-detection",
)

TRACKING = DNNWorkload(
    name="tracking",
    weight_bytes=mb(4),
    activation_bytes=mb(2),
    macs_per_inference=1.2e9,
    weight_reuse=3.0,
    inference_seconds=5e-3,
    task="tracking",
)

#: Multi-task image processing: detection + tracking + classification.
MULTI_TASK_IMAGE = RESNET26.combined_with(
    OBJECT_DETECTION, TRACKING, name="multi-task-image"
)

#: ALBERT shares one transformer block's parameters across all 12 layers,
#: so each inference re-reads the shared weights ~12x: a small footprint
#: with a very large per-inference access count.
ALBERT = DNNWorkload(
    name="albert",
    weight_bytes=mb(24),
    activation_bytes=mb(3),
    macs_per_inference=22e9,
    weight_reuse=12.0,
    inference_seconds=40e-3,
    task="nlp",
)

#: ALBERT with only its (uncompressed) token embeddings held on-chip.
ALBERT_EMBEDDINGS = DNNWorkload(
    name="albert-embeddings",
    weight_bytes=mb(8),
    activation_bytes=mb(1),
    macs_per_inference=2e9,
    weight_reuse=1.0,
    inference_seconds=40e-3,
    task="nlp",
)

MULTI_TASK_NLP = ALBERT.combined_with(
    DNNWorkload(
        name="nlp-aux",
        weight_bytes=mb(8),
        activation_bytes=mb(1),
        macs_per_inference=6e9,
        weight_reuse=12.0,
        inference_seconds=15e-3,
        task="nlp",
    ),
    name="multi-task-nlp",
)

DNN_WORKLOADS: dict[str, DNNWorkload] = {
    w.name: w
    for w in (
        RESNET26,
        RESNET18,
        OBJECT_DETECTION,
        TRACKING,
        MULTI_TASK_IMAGE,
        ALBERT,
        ALBERT_EMBEDDINGS,
        MULTI_TASK_NLP,
    )
}


class NVDLAPerformanceModel:
    """Analytical buffer-traffic model for an NVDLA-style accelerator.

    Parameters
    ----------
    buffer_bytes:
        On-chip buffer capacity backing the traffic (the memory under
        study).
    access_bytes:
        Buffer access granularity.
    """

    def __init__(
        self,
        buffer_bytes: int,
        access_bytes: int = ACCELERATOR_ACCESS_BYTES,
    ) -> None:
        if buffer_bytes <= 0:
            raise TrafficError("buffer capacity must be positive")
        self.buffer_bytes = int(buffer_bytes)
        self.access_bytes = int(access_bytes)

    # --- continuous operation ------------------------------------------------

    def continuous_traffic(
        self,
        workload: DNNWorkload,
        fps: float = CONTINUOUS_FPS,
        store_activations: bool = False,
    ) -> TrafficPattern:
        """Buffer traffic for streaming inference at ``fps`` frames/second.

        Weights resident in the buffer are re-read ``weight_reuse`` times
        per frame (weights beyond the buffer capacity stream through it and
        are counted once — plus the writes that stream them in).  With
        ``store_activations`` the intermediate feature maps are written to
        and read back from the same buffer.
        """
        if fps <= 0:
            raise TrafficError("fps must be positive")
        resident = min(workload.weight_bytes, self.buffer_bytes)
        streamed = max(0, workload.weight_bytes - resident)
        weight_read_bytes = resident * workload.weight_reuse + streamed
        weight_write_bytes = float(streamed)  # streamed tiles refill the buffer

        act_read_bytes = act_write_bytes = 0.0
        if store_activations:
            act_read_bytes = float(workload.activation_bytes)
            act_write_bytes = float(workload.activation_bytes)

        reads_per_frame = (weight_read_bytes + act_read_bytes) / self.access_bytes
        writes_per_frame = (weight_write_bytes + act_write_bytes) / self.access_bytes
        suffix = "weights+acts" if store_activations else "weights"
        return TrafficPattern(
            name=f"{workload.name}-{suffix}-{fps:g}fps",
            reads_per_second=reads_per_frame * fps,
            writes_per_second=writes_per_frame * fps,
            access_bytes=self.access_bytes,
            reads_per_task=reads_per_frame,
            writes_per_task=writes_per_frame,
            metadata={
                "workload": workload.name,
                "use_case": "continuous",
                "storage": suffix,
                "task": workload.task,
            },
        )

    # --- intermittent operation ----------------------------------------------

    def intermittent_traffic(
        self,
        workload: DNNWorkload,
        inferences_per_second: float = 1.0,
    ) -> TrafficPattern:
        """Traffic for wake-on-demand inference with weights held on-chip.

        All weight reads per inference hit the (monolithic, non-volatile)
        buffer; nothing is written in steady state.
        """
        if inferences_per_second <= 0:
            raise TrafficError("inference rate must be positive")
        reads_per_inf = (
            workload.weight_bytes * workload.weight_reuse / self.access_bytes
        )
        return TrafficPattern(
            name=f"{workload.name}-intermittent-{inferences_per_second:g}ips",
            reads_per_second=reads_per_inf * inferences_per_second,
            writes_per_second=0.0,
            access_bytes=self.access_bytes,
            reads_per_task=reads_per_inf,
            writes_per_task=0.0,
            metadata={
                "workload": workload.name,
                "use_case": "intermittent",
                "storage": "weights",
                "task": workload.task,
            },
        )


#: Access scale factor of multi-task image processing over single-task.
MULTI_TASK_SCALE = 3.2


def continuous_scenarios(buffer_bytes: int = mb(2)) -> list[TrafficPattern]:
    """The four Figure 6 (left) traffic scenarios against a 2 MB buffer.

    Multi-task processing multiplies the per-frame access count while — as
    the paper observes — "the ratio of read-to-write traffic stays roughly
    the same", so the multi-task scenarios are rate-scaled versions of the
    single-task patterns rather than weight-streaming ones.
    """
    model = NVDLAPerformanceModel(buffer_bytes)
    scenarios = []
    for store_acts in (False, True):
        single = model.continuous_traffic(RESNET26, store_activations=store_acts)
        scenarios.append(single)
        multi = single.scaled(MULTI_TASK_SCALE, MULTI_TASK_SCALE)
        suffix = "weights+acts" if store_acts else "weights"
        scenarios.append(
            multi.renamed(f"multi-task-image-{suffix}-60fps").with_metadata(
                workload="multi-task-image", task="multi-task"
            )
        )
    return scenarios
