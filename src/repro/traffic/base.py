"""Memory traffic patterns: the application-level input to the framework.

A :class:`TrafficPattern` is what Section II-A calls "information about
memory traffic": read/write access rates against one memory structure, the
access granularity, and optionally per-task totals for energy-per-task
accounting (DNN inference, graph kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.errors import TrafficError
from repro.units import BITS_PER_BYTE


@dataclass(frozen=True)
class TrafficPattern:
    """Memory traffic against one memory structure.

    Attributes
    ----------
    name:
        Workload label ("resnet26-single-task", "bfs-facebook", "605.mcf_s").
    reads_per_second / writes_per_second:
        Sustained access rates, accesses per second.
    access_bytes:
        Bytes moved per access (8 for a word, 64 for a cache line).
    reads_per_task / writes_per_task:
        Accesses needed to complete one unit of work (one inference, one
        kernel run).  ``None`` when the workload has no task notion.
    duration:
        Length of the characterized execution window, seconds (used to
        convert per-execution totals to rates; informational afterwards).
    metadata:
        Free-form tags the studies use for grouping (e.g. ``{"suite":
        "SPECint"}``).
    """

    name: str
    reads_per_second: float
    writes_per_second: float
    access_bytes: int = 8
    reads_per_task: Optional[float] = None
    writes_per_task: Optional[float] = None
    duration: Optional[float] = None
    metadata: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.reads_per_second < 0 or self.writes_per_second < 0:
            raise TrafficError(f"{self.name}: access rates must be non-negative")
        if self.access_bytes <= 0:
            raise TrafficError(f"{self.name}: access_bytes must be positive")
        if self.duration is not None and self.duration <= 0:
            raise TrafficError(f"{self.name}: duration must be positive")
        for attr in ("reads_per_task", "writes_per_task"):
            value = getattr(self, attr)
            if value is not None and value < 0:
                raise TrafficError(f"{self.name}: {attr} must be non-negative")

    # --- derived ----------------------------------------------------------

    @property
    def total_accesses_per_second(self) -> float:
        return self.reads_per_second + self.writes_per_second

    @property
    def read_bandwidth(self) -> float:
        """Demanded read bandwidth, bytes/second."""
        return self.reads_per_second * self.access_bytes

    @property
    def write_bandwidth(self) -> float:
        """Demanded write bandwidth, bytes/second."""
        return self.writes_per_second * self.access_bytes

    @property
    def write_bits_per_second(self) -> float:
        return self.write_bandwidth * BITS_PER_BYTE

    @property
    def read_fraction(self) -> float:
        """Reads as a fraction of all accesses (1.0 for read-only)."""
        total = self.total_accesses_per_second
        if total == 0:
            return 0.0
        return self.reads_per_second / total

    # --- constructors -----------------------------------------------------

    @classmethod
    def from_totals(
        cls,
        name: str,
        total_reads: float,
        total_writes: float,
        duration: float,
        access_bytes: int = 8,
        **kwargs,
    ) -> "TrafficPattern":
        """Build a pattern from per-execution totals and execution time."""
        if duration <= 0:
            raise TrafficError(f"{name}: duration must be positive")
        return cls(
            name=name,
            reads_per_second=total_reads / duration,
            writes_per_second=total_writes / duration,
            access_bytes=access_bytes,
            duration=duration,
            **kwargs,
        )

    # --- transformations ---------------------------------------------------

    def scaled(self, read_factor: float = 1.0, write_factor: float = 1.0) -> "TrafficPattern":
        """A copy with rates (and per-task totals) scaled."""
        return replace(
            self,
            reads_per_second=self.reads_per_second * read_factor,
            writes_per_second=self.writes_per_second * write_factor,
            reads_per_task=(
                None if self.reads_per_task is None else self.reads_per_task * read_factor
            ),
            writes_per_task=(
                None
                if self.writes_per_task is None
                else self.writes_per_task * write_factor
            ),
        )

    def renamed(self, name: str) -> "TrafficPattern":
        return replace(self, name=name)

    def with_metadata(self, **tags: str) -> "TrafficPattern":
        merged = dict(self.metadata)
        merged.update(tags)
        return replace(self, metadata=merged)
