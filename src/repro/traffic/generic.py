"""Generic traffic sweep generators (Section IV-B's "generic trafﬁc").

The graph-processing study evaluates memories under a grid of read and write
bandwidths covering the demands of graph kernels: read rates of 1-10 GB/s
and write rates of 1-100 MB/s, per the workload characterization the paper
cites.  These helpers build that grid (and arbitrary custom grids).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import TrafficError
from repro.traffic.base import TrafficPattern

#: The graph-processing envelope the paper sweeps (bytes/second).
GRAPH_READ_BANDWIDTH_RANGE = (1e9, 10e9)
GRAPH_WRITE_BANDWIDTH_RANGE = (1e6, 100e6)


def log_spaced(low: float, high: float, count: int) -> list[float]:
    """``count`` log-spaced values covering [low, high]."""
    if low <= 0 or high <= 0:
        raise TrafficError("log-spaced ranges must be positive")
    if high < low:
        raise TrafficError("range upper bound below lower bound")
    if count < 1:
        raise TrafficError("count must be >= 1")
    if count == 1:
        return [low]
    return list(np.logspace(np.log10(low), np.log10(high), count))


def generic_sweep(
    read_rates: Iterable[float],
    write_rates: Iterable[float],
    access_bytes: int = 8,
    name_prefix: str = "generic",
) -> list[TrafficPattern]:
    """Cross product of read x write access rates (accesses/second)."""
    patterns = []
    for r in read_rates:
        for w in write_rates:
            patterns.append(
                TrafficPattern(
                    name=f"{name_prefix}-r{r:.2e}-w{w:.2e}",
                    reads_per_second=float(r),
                    writes_per_second=float(w),
                    access_bytes=access_bytes,
                    metadata={"kind": "generic"},
                )
            )
    return patterns


def graph_envelope_sweep(
    points_per_axis: int = 5,
    access_bytes: int = 8,
    extend_low_reads: bool = True,
) -> list[TrafficPattern]:
    """The paper's graph-processing traffic grid.

    Read bandwidth spans 1-10 GB/s and write bandwidth 1-100 MB/s; with
    ``extend_low_reads`` the read axis is stretched down two decades so the
    power-versus-read-rate plot (Figure 8, left) covers the light-traffic
    region where FeFET wins.
    """
    read_low, read_high = GRAPH_READ_BANDWIDTH_RANGE
    if extend_low_reads:
        read_low = read_low / 100.0
    reads = [
        bw / access_bytes
        for bw in log_spaced(read_low, read_high, points_per_axis + (4 if extend_low_reads else 0))
    ]
    writes = [
        bw / access_bytes
        for bw in log_spaced(*GRAPH_WRITE_BANDWIDTH_RANGE, points_per_axis)
    ]
    return generic_sweep(reads, writes, access_bytes=access_bytes, name_prefix="graph")


def read_rate_sweep(
    rates: Sequence[float],
    write_rate: float,
    access_bytes: int = 8,
) -> list[TrafficPattern]:
    """Vary read rate at a fixed write rate (one plot column at a time)."""
    return generic_sweep(rates, [write_rate], access_bytes=access_bytes)


def write_rate_sweep(
    rates: Sequence[float],
    read_rate: float,
    access_bytes: int = 8,
) -> list[TrafficPattern]:
    """Vary write rate at a fixed read rate."""
    return generic_sweep([read_rate], rates, access_bytes=access_bytes)
