"""Graph-processing workloads: kernels over synthetic social networks.

The paper extracts graph traffic two ways: generic bandwidth envelopes
(:mod:`repro.traffic.generic`) and breadth-first search over SNAP's Facebook
and Wikipedia graphs running on a Graphicionado-style accelerator with an
8 MB scratchpad.  SNAP datasets are not shipped offline, so this module
builds synthetic scale-free graphs with matching vertex/edge scale
(preferential attachment gives the heavy-tailed degree distribution social
networks have), executes the kernels for real with access counting, and
converts the counts into scratchpad traffic at the accelerator's throughput
(see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

import networkx as nx

from repro.errors import TrafficError
from repro.traffic.base import TrafficPattern

#: Scratchpad access granularity (one vertex property record).
GRAPH_ACCESS_BYTES = 8
#: Edge throughput of the Graphicionado-style compute stream, edges/second.
ACCELERATOR_EDGES_PER_SECOND = 2e9


@dataclass(frozen=True)
class AccessCounts:
    """Memory accesses a kernel issued against the vertex-property store."""

    reads: int
    writes: int
    edges_traversed: int

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            self.reads + other.reads,
            self.writes + other.writes,
            self.edges_traversed + other.edges_traversed,
        )


@lru_cache(maxsize=8)
def synthetic_social_graph(n_vertices: int, attachment: int, seed: int = 7) -> nx.Graph:
    """A scale-free graph standing in for a SNAP social network."""
    if n_vertices <= attachment:
        raise TrafficError("graph needs more vertices than the attachment degree")
    return nx.barabasi_albert_graph(n_vertices, attachment, seed=seed)


def facebook_like_graph() -> nx.Graph:
    """~4k vertices / ~88k edges, the scale of SNAP's ego-Facebook."""
    return synthetic_social_graph(4039, 22)


def wikipedia_like_graph() -> nx.Graph:
    """~7k vertices / ~100k edges, the scale of SNAP's wiki-Vote."""
    return synthetic_social_graph(7115, 15)


# --- kernels with access counting ------------------------------------------


def bfs_access_counts(graph: nx.Graph, source: int = 0) -> AccessCounts:
    """Run breadth-first search and count vertex-property accesses.

    Per Graphicionado's dataflow: each traversed edge reads the destination
    vertex property; each newly-visited vertex writes its depth; frontier
    management reads each frontier vertex once.
    """
    visited = {source}
    frontier = [source]
    reads = writes = edges = 0
    writes += 1  # source depth
    while frontier:
        next_frontier = []
        for u in frontier:
            reads += 1  # frontier vertex record
            for v in graph.neighbors(u):
                edges += 1
                reads += 1  # destination property check
                if v not in visited:
                    visited.add(v)
                    writes += 1  # depth update
                    next_frontier.append(v)
        frontier = next_frontier
    return AccessCounts(reads=reads, writes=writes, edges_traversed=edges)


def pagerank_access_counts(
    graph: nx.Graph, iterations: int = 10, damping: float = 0.85
) -> AccessCounts:
    """Run power-iteration PageRank and count vertex-property accesses."""
    if not 0.0 < damping < 1.0:
        raise TrafficError("damping must be in (0, 1)")
    n = graph.number_of_nodes()
    rank = {v: 1.0 / n for v in graph.nodes}
    reads = writes = edges = 0
    for _ in range(iterations):
        new_rank = {}
        for v in graph.nodes:
            acc = 0.0
            for u in graph.neighbors(v):
                edges += 1
                reads += 1  # neighbor rank
                degree = graph.degree(u)
                acc += rank[u] / max(1, degree)
            new_rank[v] = (1.0 - damping) / n + damping * acc
            writes += 1  # rank update
        rank = new_rank
    return AccessCounts(reads=reads, writes=writes, edges_traversed=edges)


def sssp_access_counts(graph: nx.Graph, source: int = 0) -> AccessCounts:
    """Bellman-Ford-style SSSP (unit weights) with access counting."""
    INF = float("inf")
    dist = {v: INF for v in graph.nodes}
    dist[source] = 0.0
    reads = writes = edges = 0
    writes += 1
    active = {source}
    while active:
        next_active = set()
        for u in active:
            reads += 1
            for v in graph.neighbors(u):
                edges += 1
                reads += 1
                if dist[u] + 1.0 < dist[v]:
                    dist[v] = dist[u] + 1.0
                    writes += 1
                    next_active.add(v)
        active = next_active
    return AccessCounts(reads=reads, writes=writes, edges_traversed=edges)


# --- traffic extraction ------------------------------------------------------


def kernel_traffic(
    name: str,
    counts: AccessCounts,
    edges_per_second: float = ACCELERATOR_EDGES_PER_SECOND,
    access_bytes: int = GRAPH_ACCESS_BYTES,
) -> TrafficPattern:
    """Convert kernel access counts into scratchpad traffic rates.

    The accelerator streams ``edges_per_second``; the kernel's runtime is
    ``edges_traversed / edges_per_second`` and its accesses spread across it.
    """
    if counts.edges_traversed <= 0:
        raise TrafficError(f"{name}: kernel traversed no edges")
    duration = counts.edges_traversed / edges_per_second
    return TrafficPattern.from_totals(
        name=name,
        total_reads=counts.reads,
        total_writes=counts.writes,
        duration=duration,
        access_bytes=access_bytes,
        reads_per_task=counts.reads,
        writes_per_task=counts.writes,
        metadata={"kind": "graph-kernel"},
    )


@lru_cache(maxsize=4)
def facebook_bfs_traffic() -> TrafficPattern:
    """BFS over the Facebook-scale graph (a Figure 8 'pink point')."""
    counts = bfs_access_counts(facebook_like_graph())
    return kernel_traffic("Facebook-Graph-BFS", counts)


@lru_cache(maxsize=4)
def wikipedia_bfs_traffic() -> TrafficPattern:
    """BFS over the Wikipedia-scale graph (a Figure 8 'pink point')."""
    counts = bfs_access_counts(wikipedia_like_graph())
    return kernel_traffic("Wikipedia-BFS", counts)


def graph_kernel_suite() -> Iterator[TrafficPattern]:
    """BFS / PageRank / SSSP over both synthetic graphs."""
    for label, graph in (
        ("facebook", facebook_like_graph()),
        ("wikipedia", wikipedia_like_graph()),
    ):
        yield kernel_traffic(f"{label}-bfs", bfs_access_counts(graph))
        yield kernel_traffic(f"{label}-pagerank", pagerank_access_counts(graph, iterations=3))
        yield kernel_traffic(f"{label}-sssp", sssp_access_counts(graph))
