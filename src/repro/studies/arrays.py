"""Array-level studies: Figures 3, 4, 5 and 10.

* :func:`optimization_target_study` — Figure 3: iso-capacity (4 MB) arrays
  for every validated technology under a sweep of optimization targets,
  against 16 nm SRAM.
* :func:`tentpole_validation` — Figure 4: tentpole STT arrays bracket a
  published 1 MB STT-MRAM macro.
* :func:`dnn_buffer_arrays` — Figure 5: 2 MB arrays (the NVDLA buffer) —
  read characteristics and storage density.
* :func:`llc_arrays` — Figure 10: 16 MB arrays with 64 B line accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.cells import STUDY_TECHNOLOGIES, sram_cell, study_cells
from repro.cells.base import TechnologyClass
from repro.cells.database import survey_entries
from repro.core.engine import SweepSpec, array_record  # noqa: F401
from repro.nvsim.result import DEFAULT_TARGET_SWEEP, OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, engine_for
from repro.units import mb

#: eNVM implementation node / SRAM comparison node used throughout.
ENVM_NODE_NM = 22
SRAM_NODE_NM = 16


def optimization_target_study(
    capacity_bytes: int = mb(4),
    technologies=STUDY_TECHNOLOGIES,
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 3: array metrics under various optimization targets."""
    cells = study_cells(tuple(technologies)) + [sram_cell(SRAM_NODE_NM)]
    spec = SweepSpec(
        cells=cells,
        capacities_bytes=[capacity_bytes],
        node_nm=ENVM_NODE_NM,
        sram_node_nm=SRAM_NODE_NM,
        optimization_targets=DEFAULT_TARGET_SWEEP,
    )
    return engine_for(runtime).run(spec)


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of the Figure 4 tentpole-coverage exercise for one metric."""

    metric: str
    optimistic: float
    pessimistic: float
    published: float

    @property
    def covered(self) -> bool:
        """Does [optimistic, pessimistic] bracket the published value?"""
        lo = min(self.optimistic, self.pessimistic)
        hi = max(self.optimistic, self.pessimistic)
        return lo <= self.published <= hi

    @property
    def within_order_of_magnitude(self) -> bool:
        """The paper's weaker criterion: similar in magnitude."""
        ref = self.published
        return all(
            ref / 10.0 <= v <= ref * 10.0 for v in (self.optimistic, self.pessimistic)
        )


def tentpole_validation(
    tech: TechnologyClass = TechnologyClass.STT,
    capacity_bytes: int = mb(1),
) -> list[ValidationResult]:
    """Figure 4: tentpole arrays vs. the published ISSCC 2018 1 MB STT macro.

    Characterizes iso-capacity optimistic/pessimistic arrays and compares
    read latency / write latency / read energy against the survey entry's
    reported numbers.
    """
    from repro.cells import tentpoles_for
    from repro.nvsim import characterize

    published = next(
        e for e in survey_entries(tech=tech) if e.name == "isscc2018-stt-1mb-2.8ns"
    )
    tent = tentpoles_for(tech)
    arrays = {
        flavor: characterize(
            cell, capacity_bytes, node_nm=28,
            optimization_target=OptimizationTarget.READ_LATENCY,
        )
        for flavor, cell in tent.labelled()
        if flavor in ("optimistic", "pessimistic")
    }
    results = []
    checks = [
        ("read_latency", "read_latency", lambda a: a.read_latency),
        ("write_latency", "write_latency", lambda a: a.write_latency),
        ("read_energy_pj", "read_energy_pj", lambda a: a.read_energy_per_bit / 1e-12),
    ]
    for metric, field_name, extract in checks:
        reference = getattr(published, field_name)
        if reference is None:
            continue
        results.append(
            ValidationResult(
                metric=metric,
                optimistic=extract(arrays["optimistic"]),
                pessimistic=extract(arrays["pessimistic"]),
                published=float(reference),
            )
        )
    return results


def dnn_buffer_arrays(
    capacity_bytes: int = mb(2),
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 5: 2 MB arrays provisioned to replace the NVDLA buffer."""
    cells = study_cells(STUDY_TECHNOLOGIES) + [sram_cell(SRAM_NODE_NM)]
    spec = SweepSpec(
        cells=cells,
        capacities_bytes=[capacity_bytes],
        node_nm=ENVM_NODE_NM,
        sram_node_nm=SRAM_NODE_NM,
        optimization_targets=(OptimizationTarget.READ_EDP,),
        access_bits=512,
    )
    return engine_for(runtime).run(spec)


def llc_arrays(
    capacity_bytes: int = mb(16),
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 10: 16 MB LLC-candidate arrays (64 B line access)."""
    cells = study_cells(STUDY_TECHNOLOGIES) + [sram_cell(SRAM_NODE_NM)]
    spec = SweepSpec(
        cells=cells,
        capacities_bytes=[capacity_bytes],
        node_nm=ENVM_NODE_NM,
        sram_node_nm=SRAM_NODE_NM,
        optimization_targets=(
            OptimizationTarget.READ_EDP,
            OptimizationTarget.WRITE_EDP,
        ),
        access_bits=512,
    )
    return engine_for(runtime).run(spec)
