"""The MLC reliability study (Section V-C, Figure 13).

SLC vs. 2-bit MLC storage of DNN weights across the fault-modelled
technologies (RRAM, CTT, FeFET): characterize the arrays (MLC doubles
density and pays program-verify costs) and fault-inject the weights to get
task accuracy, then filter to the configurations that keep accuracy within
the application's tolerance — reproducing "MLC RRAM is denser and more
performant than SLC RRAM, while MLC FeFET is only sufficiently reliable for
larger cell sizes".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cells import tentpoles_for
from repro.cells.base import CellTechnology, TechnologyClass
from repro.core.metrics import array_record
from repro.dnn.proxies import trained_proxy
from repro.faults.models import FAULT_MODELLED_TECHNOLOGIES, fault_model_for
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, ensure_runtime
from repro.studies.arrays import ENVM_NODE_NM
from repro.units import mb

#: Accuracy must stay within this of the clean baseline to be acceptable.
ACCURACY_TOLERANCE = 0.01

#: FeFET cell sizes swept in Figure 13 (small cells fail MLC reliability).
FEFET_AREA_SWEEP_F2 = (2.0, 16.0, 40.0, 103.0)


def _fefet_at_area(area_f2: float) -> CellTechnology:
    base = tentpoles_for(TechnologyClass.FEFET).optimistic
    return replace(base, name=f"FeFET-{area_f2:g}F2", area_f2=area_f2)


def mlc_study(
    capacities=(mb(8), mb(16)),
    workload: str = "resnet18",
    trials: int = 3,
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 13: density/performance vs. fault-injected accuracy."""
    runtime = ensure_runtime(runtime)
    engine = runtime.engine()
    proxy = trained_proxy(workload)
    table = ResultTable()

    cells: list[CellTechnology] = []
    for tech in FAULT_MODELLED_TECHNOLOGIES:
        if tech is TechnologyClass.FEFET:
            cells.extend(_fefet_at_area(a) for a in FEFET_AREA_SWEEP_F2)
        else:
            cells.append(tentpoles_for(tech).optimistic)

    for cell in cells:
        for bits in (1, 2):
            model = fault_model_for(cell, bits)
            accuracy = proxy.accuracy_under_model(
                model, trials=trials, seed=runtime.seed_or(0)
            )
            for capacity in capacities:
                array = engine.characterize(
                    cell, capacity, ENVM_NODE_NM,
                    OptimizationTarget.READ_EDP, 64, bits,
                )
                row = array_record(array)
                row.update(
                    {
                        "workload": workload,
                        "cell_error_rate": model.cell_error_rate,
                        "accuracy": accuracy,
                        "baseline_accuracy": proxy.baseline_accuracy,
                        "accuracy_ok": accuracy
                        >= proxy.baseline_accuracy - ACCURACY_TOLERANCE,
                    }
                )
                table.append(row)
    return table


def acceptable(table: ResultTable) -> ResultTable:
    """The paper's filter: only accuracy-preserving configurations."""
    return table.filter(lambda r: r["accuracy_ok"])
