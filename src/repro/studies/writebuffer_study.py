"""The write-buffering study (Section V-D, Figure 14).

For SPEC2017 and the Facebook-BFS workload, evaluate every study eNVM at
8 MB under the write-buffer scenarios (no buffer / mask latency / mask +
reduce traffic 25% / 50%) and report which technologies become performant
(latency) or attractive (power) as buffering improves.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Optional, Sequence

from repro.cells import STUDY_TECHNOLOGIES, sram_cell, study_cells
from repro.core.metrics import evaluation_record
from repro.core.writebuffer import DEFAULT_SCENARIOS, WriteBufferConfig, evaluate_with_buffer
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, engine_for
from repro.studies.arrays import ENVM_NODE_NM, SRAM_NODE_NM
from repro.traffic.base import TrafficPattern
from repro.traffic.graph import facebook_bfs_traffic
from repro.traffic.spec import benchmark_by_name, spec_traffic
from repro.units import mb

STUDY_CAPACITY = mb(8)


def _scenario_rows(array, traffic, extra: Any) -> list[dict]:
    """Block evaluator: every (traffic, write-buffer scenario) row.

    ``extra`` is the JSON-able scenario list (it participates in the
    evaluation-cache fingerprint, so changing the scenario sweep
    invalidates cached blocks).
    """
    scenarios = [WriteBufferConfig(**config) for config in extra]
    rows = []
    for pattern in traffic:
        for config in scenarios:
            ev = evaluate_with_buffer(array, pattern, config)
            row = evaluation_record(ev)
            row["scenario"] = config.label
            row["base_workload"] = pattern.name
            rows.append(row)
    return rows


def writebuffer_study(
    workloads: Sequence[TrafficPattern] = (),
    scenarios: Sequence[WriteBufferConfig] = DEFAULT_SCENARIOS,
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 14: eNVM power/latency across write-buffer scenarios."""
    if not workloads:
        workloads = (
            facebook_bfs_traffic(),
            spec_traffic(benchmark_by_name("605.mcf_s")),
            spec_traffic(benchmark_by_name("619.lbm_s")),
        )
    engine = engine_for(runtime)
    cells = study_cells(STUDY_TECHNOLOGIES, include_reference=False)
    arrays = []
    for cell in cells + [sram_cell(SRAM_NODE_NM)]:
        node = ENVM_NODE_NM if cell.tech_class.is_nonvolatile else SRAM_NODE_NM
        arrays.append(engine.characterize(
            cell, STUDY_CAPACITY, node,
            OptimizationTarget.READ_EDP, 64, 1,
        ))
    blocks = engine.evaluate_blocks(
        arrays, tuple(workloads),
        rows_fn=_scenario_rows,
        extra=[asdict(config) for config in scenarios],
    )
    table = ResultTable()
    for rows in blocks:
        for row in rows:
            table.append(row)
    return table


def performant_technologies(
    table: ResultTable,
    workload_name: str,
    scenario_label: str,
    latency_budget: float = 1.0,
) -> set[str]:
    """Technologies meeting the latency budget under one scenario."""
    rows = table.where(base_workload=workload_name, scenario=scenario_label)
    return {
        r["tech"]
        for r in rows
        if r["memory_latency_s_per_s"] <= latency_budget and r["feasible"]
    }
