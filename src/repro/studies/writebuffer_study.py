"""The write-buffering study (Section V-D, Figure 14).

For SPEC2017 and the Facebook-BFS workload, evaluate every study eNVM at
8 MB under the write-buffer scenarios (no buffer / mask latency / mask +
reduce traffic 25% / 50%) and report which technologies become performant
(latency) or attractive (power) as buffering improves.
"""

from __future__ import annotations

from typing import Sequence

from repro.cells import STUDY_TECHNOLOGIES, sram_cell, study_cells
from repro.core.engine import evaluation_record
from repro.core.writebuffer import DEFAULT_SCENARIOS, WriteBufferConfig, evaluate_with_buffer
from repro.nvsim import characterize
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.studies.arrays import ENVM_NODE_NM, SRAM_NODE_NM
from repro.traffic.base import TrafficPattern
from repro.traffic.graph import facebook_bfs_traffic
from repro.traffic.spec import benchmark_by_name, spec_traffic
from repro.units import mb

STUDY_CAPACITY = mb(8)


def writebuffer_study(
    workloads: Sequence[TrafficPattern] = (),
    scenarios: Sequence[WriteBufferConfig] = DEFAULT_SCENARIOS,
) -> ResultTable:
    """Figure 14: eNVM power/latency across write-buffer scenarios."""
    if not workloads:
        workloads = (
            facebook_bfs_traffic(),
            spec_traffic(benchmark_by_name("605.mcf_s")),
            spec_traffic(benchmark_by_name("619.lbm_s")),
        )
    table = ResultTable()
    cells = study_cells(STUDY_TECHNOLOGIES, include_reference=False)
    for cell in cells + [sram_cell(SRAM_NODE_NM)]:
        node = ENVM_NODE_NM if cell.tech_class.is_nonvolatile else SRAM_NODE_NM
        array = characterize(
            cell, STUDY_CAPACITY, node_nm=node,
            optimization_target=OptimizationTarget.READ_EDP,
            access_bits=64,
        )
        for traffic in workloads:
            for config in scenarios:
                ev = evaluate_with_buffer(array, traffic, config)
                row = evaluation_record(ev)
                row["scenario"] = config.label
                row["base_workload"] = traffic.name
                table.append(row)
    return table


def performant_technologies(
    table: ResultTable,
    workload_name: str,
    scenario_label: str,
    latency_budget: float = 1.0,
) -> set[str]:
    """Technologies meeting the latency budget under one scenario."""
    rows = table.where(base_workload=workload_name, scenario=scenario_label)
    return {
        r["tech"]
        for r in rows
        if r["memory_latency_s_per_s"] <= latency_budget and r["feasible"]
    }
