"""The paper's case studies, one module per section/figure family."""

from repro.studies.arrays import (
    ENVM_NODE_NM,
    SRAM_NODE_NM,
    ValidationResult,
    dnn_buffer_arrays,
    llc_arrays,
    optimization_target_study,
    tentpole_validation,
)
from repro.studies.codesign import (
    area_efficiency_study,
    back_gated_fefet_study,
    efficiency_of_latency_extremes,
    low_efficiency_latency_advantage,
)
from repro.studies.dnn_study import (
    INTERMITTENT_WORKLOADS,
    PreferredChoice,
    continuous_study,
    fefet_stt_crossover,
    intermittent_study,
    intermittent_sweep,
    preferred_technologies,
)
from repro.studies.graph_study import (
    SCRATCHPAD_BYTES,
    best_lifetime_technology,
    graph_study,
    lowest_power_technology,
    worst_lifetime_technology,
)
from repro.studies.hierarchy_study import hierarchy_study, measured_coalescing
from repro.studies.llc_study import feasible, llc_study, winner_per_benchmark
from repro.studies.retention_study import retention_study, scrub_burdened_technologies
from repro.studies.mlc_study import ACCURACY_TOLERANCE, acceptable, mlc_study
from repro.studies.writebuffer_study import performant_technologies, writebuffer_study
from repro.studies.pipeline import (
    REGISTRY,
    StudyOutcome,
    StudySpec,
    get_study,
    run_study,
    study_names,
)
from repro.runtime.options import RuntimeOptions

__all__ = [
    "ENVM_NODE_NM",
    "SRAM_NODE_NM",
    "optimization_target_study",
    "tentpole_validation",
    "ValidationResult",
    "dnn_buffer_arrays",
    "llc_arrays",
    "continuous_study",
    "intermittent_study",
    "intermittent_sweep",
    "fefet_stt_crossover",
    "preferred_technologies",
    "PreferredChoice",
    "INTERMITTENT_WORKLOADS",
    "graph_study",
    "lowest_power_technology",
    "best_lifetime_technology",
    "worst_lifetime_technology",
    "SCRATCHPAD_BYTES",
    "llc_study",
    "feasible",
    "winner_per_benchmark",
    "back_gated_fefet_study",
    "area_efficiency_study",
    "low_efficiency_latency_advantage",
    "efficiency_of_latency_extremes",
    "mlc_study",
    "acceptable",
    "ACCURACY_TOLERANCE",
    "writebuffer_study",
    "performant_technologies",
    "retention_study",
    "scrub_burdened_technologies",
    "hierarchy_study",
    "measured_coalescing",
    "REGISTRY",
    "RuntimeOptions",
    "StudyOutcome",
    "StudySpec",
    "get_study",
    "run_study",
    "study_names",
]
