"""Co-design studies (Section V-A/B, Figures 11 and 12).

* :func:`back_gated_fefet_study` — swap in the back-gated FeFET cell
  (10 ns writes, 1e12 endurance) and re-run the 8 MB graph/LLC traffic to
  see the write-latency gap close (Figure 11).
* :func:`area_efficiency_study` — the full internal-organization cloud for
  8 MB arrays, annotated with area efficiency, showing that low-efficiency
  organizations tend to deliver low total memory latency (Figure 12).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cells import back_gated_fefet, sram_cell, tentpoles_for
from repro.cells.base import TechnologyClass
from repro.core.engine import SweepSpec
from repro.nvsim import all_organizations
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.cache import organization_cloud_cache
from repro.runtime.options import RuntimeOptions, engine_for
from repro.studies.arrays import ENVM_NODE_NM, SRAM_NODE_NM
from repro.traffic.generic import graph_envelope_sweep
from repro.traffic.graph import wikipedia_bfs_traffic
from repro.traffic.spec import spec2017_suite
from repro.units import mb

CODESIGN_CAPACITY = mb(8)


def back_gated_fefet_study(
    points_per_axis: int = 3,
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 11: back-gated FeFET vs. standard FeFETs vs. SRAM at 8 MB."""
    tent = tentpoles_for(TechnologyClass.FEFET)
    cells = [
        back_gated_fefet(),
        tent.optimistic,
        tent.pessimistic,
        sram_cell(SRAM_NODE_NM),
    ]
    traffic = graph_envelope_sweep(points_per_axis=points_per_axis)
    traffic.append(wikipedia_bfs_traffic())
    traffic.extend(spec2017_suite()[:6])
    spec = SweepSpec(
        cells=cells,
        capacities_bytes=[CODESIGN_CAPACITY],
        traffic=traffic,
        node_nm=ENVM_NODE_NM,
        sram_node_nm=SRAM_NODE_NM,
        optimization_targets=(OptimizationTarget.READ_EDP,),
        access_bits=64,
    )
    return engine_for(runtime).run(spec)


def area_efficiency_study(
    capacity_bytes: int = CODESIGN_CAPACITY,
    traffic_points: int = 3,
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 12: the organization cloud, annotated with area efficiency.

    Every feasible internal organization of every study technology is
    evaluated under a spread of traffic patterns; rows carry area
    efficiency so callers can apply the paper's "maximum area efficiency"
    filter and inspect the latency structure.  The (organization x
    traffic) evaluation layer runs through the engine's block cache, so
    warm re-runs skip it.
    """
    engine = engine_for(runtime)
    cloud_cache = organization_cloud_cache(runtime)
    traffic = graph_envelope_sweep(points_per_axis=traffic_points)
    arrays = [
        array
        for tech in (TechnologyClass.STT, TechnologyClass.PCM,
                     TechnologyClass.RRAM, TechnologyClass.FEFET)
        for array in all_organizations(
            tentpoles_for(tech).optimistic, capacity_bytes,
            node_nm=ENVM_NODE_NM, cache=cloud_cache,
        )
    ]
    table = ResultTable()
    for array, rows in zip(arrays, engine.evaluate_blocks(arrays, traffic)):
        for row in rows:
            row["organization"] = array.organization.describe()
            table.append(row)
    return table


def low_efficiency_latency_advantage(
    table: ResultTable, efficiency_threshold: float = 0.5
) -> dict[str, float]:
    """Median memory latency of low- vs. high-efficiency organizations.

    Returns ``{"low_eff_median": ..., "high_eff_median": ...}``.  The paper
    observes the low-efficiency group tends to be faster; in our model the
    whole-cloud medians can go either way (H-tree delay grows with the
    inflated footprint of periphery-heavy designs), so the benches assert
    the per-technology extremes via :func:`efficiency_of_latency_extremes`
    and report these medians for comparison (see EXPERIMENTS.md).
    """
    low = [
        r["memory_latency_s_per_s"]
        for r in table
        if r["area_efficiency"] < efficiency_threshold
    ]
    high = [
        r["memory_latency_s_per_s"]
        for r in table
        if r["area_efficiency"] >= efficiency_threshold
    ]

    def median(values: list[float]) -> float:
        if not values:
            return math.nan
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    return {"low_eff_median": median(low), "high_eff_median": median(high)}


def efficiency_of_latency_extremes(
    capacity_bytes: int = CODESIGN_CAPACITY,
    *,
    runtime: Optional[RuntimeOptions] = None,
) -> dict[str, dict[str, float]]:
    """Per technology: area efficiency of the fastest vs. the densest design.

    The core of the Figure 12 observation — squeezing latency means doing
    *less* amortization of periphery, so the latency-optimal internal
    organization always shows lower area efficiency than the area-optimal
    one.  With a ``runtime`` carrying a ``cache_dir``, the per-technology
    clouds persist under ``<cache_dir>/clouds/`` and warm re-runs skip the
    characterization entirely.
    """
    cloud_cache = organization_cloud_cache(runtime)
    out: dict[str, dict[str, float]] = {}
    for tech in (TechnologyClass.STT, TechnologyClass.PCM,
                 TechnologyClass.RRAM, TechnologyClass.FEFET):
        cell = tentpoles_for(tech).optimistic
        cloud = all_organizations(
            cell, capacity_bytes, node_nm=ENVM_NODE_NM, cache=cloud_cache
        )
        fastest = min(cloud, key=lambda a: a.read_latency)
        densest = max(cloud, key=lambda a: a.area_efficiency)
        out[tech.value] = {
            "latency_optimal_efficiency": fastest.area_efficiency,
            "max_efficiency": densest.area_efficiency,
            "latency_optimal_ns": fastest.read_latency * 1e9,
            "max_efficiency_latency_ns": densest.read_latency * 1e9,
        }
    return out
