"""The graph-processing case study (Section IV-B, Figure 8).

8 MB scratchpad arrays under (a) generic traffic covering graph-kernel
bandwidth envelopes and (b) measured BFS traffic from the synthetic
Facebook/Wikipedia-scale graphs, evaluated for power, aggregate latency,
and projected lifetime.
"""

from __future__ import annotations

from typing import Optional

from repro.cells import STUDY_TECHNOLOGIES, sram_cell, study_cells
from repro.core.engine import SweepSpec
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, engine_for
from repro.studies.arrays import ENVM_NODE_NM, SRAM_NODE_NM
from repro.nvsim.result import OptimizationTarget
from repro.traffic.generic import graph_envelope_sweep
from repro.traffic.graph import facebook_bfs_traffic, wikipedia_bfs_traffic
from repro.units import mb

#: The Graphicionado-style scratchpad the paper replaces.
SCRATCHPAD_BYTES = mb(8)
#: The cited scratchpad latency target, seconds.
SCRATCHPAD_LATENCY_TARGET = 1.5e-9


def graph_study(
    points_per_axis: int = 4,
    include_kernels: bool = True,
    capacity_bytes: int = SCRATCHPAD_BYTES,
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 8: generic graph traffic (+ BFS kernel points) on 8 MB arrays."""
    traffic = graph_envelope_sweep(points_per_axis=points_per_axis)
    if include_kernels:
        traffic = traffic + [facebook_bfs_traffic(), wikipedia_bfs_traffic()]
    cells = study_cells(STUDY_TECHNOLOGIES) + [sram_cell(SRAM_NODE_NM)]
    spec = SweepSpec(
        cells=cells,
        capacities_bytes=[capacity_bytes],
        traffic=traffic,
        node_nm=ENVM_NODE_NM,
        sram_node_nm=SRAM_NODE_NM,
        optimization_targets=(OptimizationTarget.READ_EDP,),
        access_bits=64,
    )
    return engine_for(runtime).run(spec)


def lowest_power_technology(
    table: ResultTable,
    reads_per_second: float,
    tolerance: float = 2.0,
    flavor: Optional[str] = "optimistic",
) -> str:
    """The lowest-power technology at the traffic column nearest a read rate.

    Looks across all write rates at that column (like reading the bottom
    envelope of Figure 8, left).
    """
    rows = table.filter(lambda r: r["tech"] != "SRAM")
    if flavor is not None:
        rows = rows.where(flavor=flavor)
    rates = sorted(set(rows.column("reads_per_s")))
    nearest = min(rates, key=lambda r: abs(r - reads_per_second))
    column_rows = rows.filter(
        lambda r: abs(r["reads_per_s"] - nearest) <= nearest / tolerance
    )
    return column_rows.min_by("total_power_mw")["tech"]


def best_lifetime_technology(table: ResultTable) -> str:
    """Technology with the longest worst-case lifetime across the sweep."""
    worst: dict[str, float] = {}
    for row in table:
        if row["tech"] == "SRAM" or row.get("flavor") != "optimistic":
            continue
        lifetime = row.get("lifetime_years")
        if lifetime is None:
            lifetime = float("inf")
        tech = row["tech"]
        worst[tech] = min(worst.get(tech, float("inf")), lifetime)
    return max(worst, key=worst.get)


def worst_lifetime_technology(table: ResultTable) -> str:
    """Technology with the shortest best-case lifetime (Figure 8 right)."""
    best: dict[str, float] = {}
    for row in table:
        if row["tech"] == "SRAM" or row.get("flavor") != "optimistic":
            continue
        lifetime = row.get("lifetime_years")
        if lifetime is None:
            lifetime = float("inf")
        tech = row["tech"]
        best[tech] = max(best.get(tech, 0.0), lifetime) if tech in best else lifetime
    return min(best, key=best.get)
