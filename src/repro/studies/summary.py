"""Full-reproduction driver: regenerate every study artifact in one run.

``python -m repro.studies.summary [output_dir]`` runs every study in the
registry (:mod:`repro.studies.pipeline`), writes each result table as CSV
plus a markdown report, and prints a per-study pass/fail table — the
offline equivalent of the artifact's ``output/results/*.csv`` plus the
web dashboard snapshots.

Runtime options apply uniformly to **all** studies: ``--workers`` fans
sweeps over a process pool, ``--cache-dir`` persists array
characterizations, (array x traffic) evaluation blocks, and regenerated
LLC traces (``--trace-cache-dir`` relocates just the traces), ``--seed``
pins every stochastic component.  A warm second run against the same
cache directory performs zero characterizations and zero evaluation
blocks; ``--expect-warm`` turns that into an exit-code assertion for CI.

Four suite-scale features build on :mod:`repro.runtime.shard`:

* **Sharding** — ``--shard-index I --shard-count N`` runs a
  deterministic 1/N slice of the suite, so N hosts (or CI matrix jobs)
  split the work with no coordination.  Every run writes a
  ``manifest.json`` next to its outputs recording what ran, its status,
  telemetry, artifact paths, and cache schema tags.
* **Point sharding** — ``--point-shard-index I --point-shard-count N``
  splits every study's *sweep-point space* across hosts by content
  fingerprint, so one giant study no longer pins a whole shard.  Each
  host produces a partial table; the manifest records the planned /
  selected / completed point accounting the merge verifies.  Point
  shards should share one ``--cache-dir`` (or have their caches
  combined) so the merge can re-materialize full tables from cache.
* **Merging** — ``--merge DIR [DIR ...]`` combines shard output
  directories into the single summary table and artifact set, failing
  if any study — or any sweep point of a point-sharded study — was
  dropped or run twice.  Point-sharded studies are re-materialized
  whole from the shared caches (pass the same ``--cache-dir`` and
  ``--seed`` the shards used), yielding CSVs byte-identical to a
  single-host run.
* **Incremental runs** — a study whose manifest entry matches the
  current content fingerprint (parameters x schema tags x source
  digest x point shard) and whose artifacts still exist is skipped with
  a ``cached`` status instead of re-run; ``--force`` disables the skip.

Exit codes: ``0`` success, ``1`` study failures (or a violated
``--expect-warm``), ``2`` usage/config/merge errors, ``3`` for a
fully-incremental run (every study skipped as up to date) so CI logs
can tell a no-op invocation from one that recomputed artifacts, and
``130`` for an interrupted run (Ctrl-C or SIGTERM): the studies
completed before the interrupt are recorded in a partial manifest —
their artifacts and incremental state survive — and the rest resume on
the next invocation.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ReproError
from repro.results.table import ResultTable
from repro.runtime.chaos import parse_chaos_spec
from repro.runtime.interrupt import sigterm_as_keyboard_interrupt
from repro.runtime.options import RuntimeOptions, ensure_runtime
from repro.runtime.resilience import RetryPolicy
from repro.runtime.schedule import BalancedPointShard
from repro.runtime.shard import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    ManifestEntry,
    PointShard,
    RunManifest,
    ShardError,
    ShardPlan,
    collect_artifacts,
    merge_manifests,
    plan_shard,
    point_shard_section,
    schema_tags,
    study_fingerprint,
)
from repro.runtime.telemetry import SweepTelemetry
from repro.studies.pipeline import REGISTRY, StudyOutcome
from repro.viz.report import study_report

#: Back-compat alias: the registry keyed by study name.
STUDIES = REGISTRY

#: Exit codes (see module docstring).
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_ALL_INCREMENTAL = 3
EXIT_INTERRUPTED = 130  # the shell convention for SIGINT-style exits


@dataclass
class SummaryRun:
    """Every outcome of one full-reproduction (or shard) run."""

    outcomes: list[StudyOutcome] = field(default_factory=list)
    plan: Optional[ShardPlan] = None
    manifest: Optional[RunManifest] = None
    #: Ctrl-C / SIGTERM arrived mid-run; ``manifest`` holds only the
    #: studies that finished first (their incremental state is kept).
    interrupted: bool = False

    @property
    def tables(self) -> dict[str, ResultTable]:
        """Result tables of the studies that ran fresh and succeeded."""
        return {o.name: o.table for o in self.outcomes if o.table is not None}

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def telemetry(self) -> SweepTelemetry:
        """Counters aggregated across every study of the run."""
        total = SweepTelemetry()
        for outcome in self.outcomes:
            total.absorb(outcome.telemetry)
        return total

    @property
    def warm(self) -> bool:
        """Did the run recompute nothing (everything served from cache)?"""
        return self.telemetry.fresh_work == 0

    @property
    def incremental_skips(self) -> int:
        """Studies skipped because their manifest entry was up to date."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def fully_incremental(self) -> bool:
        """Was *every* selected study served by an incremental skip?"""
        return bool(self.outcomes) and all(o.cached for o in self.outcomes)


def _select(only: Optional[Sequence[str]], registry) -> dict:
    if only is None:
        return dict(registry)
    unknown = [name for name in only if name not in registry]
    if unknown:
        raise ReproError(
            f"unknown studies: {', '.join(unknown)} (known: {', '.join(registry)})"
        )
    return {name: registry[name] for name in only}


def _artifact_paths(name: str) -> dict[str, str]:
    """Relative artifact locations for one study under an output dir."""
    return {"csv": f"results/{name}.csv", "report": f"reports/{name}.md"}


def _reusable_entry(
    previous: Optional[RunManifest], name: str, fingerprint: str, out: Path
) -> Optional[ManifestEntry]:
    """The prior manifest entry iff it makes re-running ``name`` redundant.

    Redundant means: the prior run succeeded, its content fingerprint
    (parameters x schema tags x source digest) matches the current one,
    every recorded artifact still exists on disk, and no point of the
    prior run was quarantined as poisoned (a poisoned point means the
    table is incomplete, so the study must be re-attempted).
    """
    if previous is None:
        return None
    entry = previous.lookup(name)
    if entry is None or not entry.ok or entry.fingerprint != fingerprint:
        return None
    if not entry.artifacts:
        return None
    counters = entry.telemetry or {}
    if counters.get("poisoned", 0) or counters.get("eval_poisoned", 0):
        return None
    if not all((out / relpath).exists() for relpath in entry.artifacts.values()):
        return None
    return entry


def _write_artifacts(outcome: StudyOutcome, spec, out: Path) -> dict[str, str]:
    """Write one fresh study's CSV + report; returns their relative paths."""
    if outcome.table is None:
        return {}
    paths = _artifact_paths(outcome.name)
    outcome.table.to_csv(str(out / paths["csv"]))
    report = study_report(
        title=outcome.name.replace("_", " "),
        table=outcome.table,
        description=(
            f"{spec.description} Regenerated by repro.studies.summary "
            f"({outcome.rows} rows)."
        ),
        figure=spec.figure,
        **spec.report,
    )
    (out / paths["report"]).write_text(report)
    return paths


def run_all(
    output_dir: Union[str, Path] = "output",
    runtime: Optional[RuntimeOptions] = None,
    only: Optional[Sequence[str]] = None,
    shard_index: int = 0,
    shard_count: int = 1,
    incremental: bool = True,
) -> SummaryRun:
    """Run this shard's slice of the selected studies and record a manifest.

    ``runtime`` is forwarded to every study (see
    :class:`~repro.runtime.options.RuntimeOptions`); ``only`` restricts
    the suite to a subset of registry names; ``shard_index`` /
    ``shard_count`` select a deterministic slice of that suite
    (:func:`~repro.runtime.shard.plan_shard`).  With
    ``runtime.on_error="skip"`` a failing study is recorded in its
    outcome and the run continues.

    With ``incremental=True`` (the default), a study whose entry in the
    output directory's existing ``manifest.json`` matches the current
    content fingerprint — and whose artifacts are still on disk — is
    skipped with a ``cached`` outcome instead of re-run.  The manifest
    (:class:`~repro.runtime.shard.RunManifest`) is rewritten next to
    the outputs after every run.

    An active point shard (``runtime.point_shard_count > 1``) restricts
    every study to its deterministic slice of the sweep-point space;
    each manifest entry then carries a point-shard section (planned /
    selected / completed point fingerprints) that :func:`merge_shards`
    verifies and re-materializes from.
    """
    runtime = ensure_runtime(runtime)
    registry = _select(only, STUDIES)
    plan = plan_shard(list(registry), shard_index, shard_count)
    out = Path(output_dir)
    (out / "results").mkdir(parents=True, exist_ok=True)
    (out / "reports").mkdir(parents=True, exist_ok=True)
    # The previous manifest is read even under incremental=False: its
    # entries for studies *outside* this run's selection are retained in
    # the rewritten manifest so their incremental state is not clobbered
    # by a subset run.
    previous = RunManifest.try_load(out)
    reusable = previous if incremental else None
    run = SummaryRun(plan=plan)
    entries: list[ManifestEntry] = []
    try:
        _run_selected(run, entries, plan, registry, runtime, reusable, out)
    except KeyboardInterrupt:
        # Clean drain: keep everything that finished.  The partial
        # manifest written below records those studies (plus retained
        # prior entries), so artifacts and incremental state survive and
        # the next invocation resumes where this one stopped.
        run.interrupted = True
    # Prior entries are retained for every study this run did NOT
    # (re)record — including selected studies an interrupt skipped.
    recorded = {entry.name for entry in entries}
    retained = tuple(
        entry
        for entry in (*previous.entries, *previous.retained)
        if entry.name not in recorded
    ) if previous is not None else ()
    run.manifest = RunManifest(
        shard_index=shard_index,
        shard_count=shard_count,
        suite=plan.suite,
        entries=tuple(entries),
        tags=schema_tags(),
        retained=retained,
        point_shard_index=runtime.point_shard_index,
        point_shard_count=runtime.point_shard_count,
    )
    run.manifest.write(out)
    return run


def _run_selected(
    run: SummaryRun,
    entries: list,
    plan: ShardPlan,
    registry,
    runtime: RuntimeOptions,
    reusable: Optional[RunManifest],
    out: Path,
) -> None:
    """Run (or incrementally skip) each selected study, appending results.

    Mutates ``run.outcomes`` and ``entries`` in step so an interrupt
    leaves them consistent: every appended entry describes a study whose
    artifacts are fully on disk.
    """
    point_shard = runtime.point_shard
    # How each study's point slice is derived (see point_shard_section):
    # the static round-robin partition supports pre-run incremental
    # skips, while balanced plans and queue leases are only known
    # post-run — their fingerprints are derived from what actually ran,
    # and a stale static fingerprint must never skip them.
    if runtime.queue_dir is not None:
        scheme = "queue"
    elif runtime.schedule == "balanced" and point_shard is not None:
        scheme = "balanced"
    else:
        scheme = "fingerprint"
    for name in plan.selected:
        spec = registry[name]
        fingerprint = study_fingerprint(
            spec, seed=runtime.seed, point_shard=point_shard
        )
        prior = (
            _reusable_entry(reusable, name, fingerprint, out)
            if scheme == "fingerprint"
            else None
        )
        if prior is not None:
            outcome = StudyOutcome(
                name=name,
                table=None,
                telemetry=SweepTelemetry(),
                elapsed_s=0.0,
                cached=True,
                cached_rows=prior.rows,
            )
            entry = replace(
                prior, status=STATUS_CACHED, elapsed_s=0.0, telemetry={}
            )
            status = "cached (incremental: manifest up to date)"
        else:
            outcome = spec.run(runtime)
            artifacts = _write_artifacts(outcome, spec, out)
            section = {}
            if point_shard is not None or scheme == "queue":
                telemetry = outcome.telemetry
                section = point_shard_section(
                    point_shard
                    if point_shard is not None
                    else PointShard(
                        runtime.point_shard_index, runtime.point_shard_count
                    ),
                    telemetry.planned_points,
                    telemetry.selected_points,
                    telemetry.completed_points,
                    poisoned=telemetry.poisoned_points,
                    scheme=scheme,
                )
            if scheme == "balanced":
                # The slice a balanced run owns is the plan's output, so
                # its identity is only known post-run: fingerprint the
                # selector that actually ran (reconstructible at merge
                # time from the section's selected list).
                fingerprint = study_fingerprint(
                    spec,
                    seed=runtime.seed,
                    point_shard=BalancedPointShard.from_selected(
                        point_shard.index,
                        point_shard.count,
                        outcome.telemetry.selected_points,
                    ),
                )
            elif scheme == "queue":
                # Queue slices are nondeterministic (whoever leased
                # first); an empty fingerprint marks the entry as
                # non-verifiable-by-recomputation — merge still verifies
                # the selected sets land exactly once.
                fingerprint = ""
            entry = ManifestEntry(
                name=name,
                status=STATUS_OK if outcome.ok else STATUS_FAILED,
                fingerprint=fingerprint,
                rows=outcome.rows,
                elapsed_s=outcome.elapsed_s,
                error=outcome.error or "",
                artifacts=artifacts,
                telemetry=outcome.telemetry.counters(),
                point_shard=section,
            )
            if outcome.ok and outcome.poisoned:
                status = f"ok ({outcome.poisoned} poisoned)"
            else:
                status = "ok" if outcome.ok else f"FAIL ({outcome.error})"
        run.outcomes.append(outcome)
        entries.append(entry)
        print(f"{name:26s} {outcome.rows:5d} rows  "
              f"{outcome.elapsed_s:6.2f}s  {status}")


def _verify_point_shard_fingerprints(
    name: str,
    spec,
    manifests: Sequence[RunManifest],
    runtime: RuntimeOptions,
) -> None:
    """Check the shards ran the same study the merge will re-materialize.

    Every shard entry's fingerprint must equal the current
    :func:`~repro.runtime.shard.study_fingerprint` for its point-shard
    slice — same parameters, seed, schema tags, and source revision — or
    the re-materialized table would not reproduce the rows the shards
    computed (and cached).
    """
    for manifest in manifests:
        entry = manifest.entry_for(name)
        if entry is None:
            continue
        section = entry.point_shard or {}
        if section.get("scheme") == "balanced":
            # Balanced slices are membership-defined; rebuild the
            # selector the run recorded instead of the round-robin one.
            selector = BalancedPointShard.from_selected(
                manifest.point_shard_index,
                manifest.point_shard_count,
                section.get("selected", ()),
            )
        else:
            selector = manifest.point_shard
        expected = study_fingerprint(
            spec, seed=runtime.seed, point_shard=selector
        )
        if entry.fingerprint and entry.fingerprint != expected:
            raise ShardError(
                f"study {name!r}: shard {manifest.shard_index}"
                f"/{manifest.point_shard_index} was run against different "
                "parameters, seed, or source revision than this merge "
                "(pass the shards' --seed and run the merge from the same "
                "checkout)"
            )


def _rematerialize_study(
    name: str, spec, runtime: RuntimeOptions, out: Path
) -> ManifestEntry:
    """Re-run one point-sharded study whole and write its artifacts.

    With the shards' caches shared (or combined) under
    ``runtime.cache_dir`` every characterization and evaluation block is
    already stored, so this reassembles the full
    :class:`~repro.results.ResultTable` from cached row blocks — zero
    fresh model work — and produces CSVs byte-identical to a single-host
    run.
    """
    whole = replace(
        runtime,
        point_shard_index=0,
        point_shard_count=1,
        queue_dir=None,
        schedule="fingerprint",
    )
    outcome = spec.run(whole)
    artifacts = _write_artifacts(outcome, spec, out)
    return ManifestEntry(
        name=name,
        status=STATUS_OK if outcome.ok else STATUS_FAILED,
        fingerprint=study_fingerprint(spec, seed=whole.seed),
        rows=outcome.rows,
        elapsed_s=outcome.elapsed_s,
        error=outcome.error or "",
        artifacts=artifacts,
        telemetry=outcome.telemetry.counters(),
    )


def merge_shards(
    shard_dirs: Sequence[Union[str, Path]],
    output_dir: Union[str, Path],
    runtime: Optional[RuntimeOptions] = None,
) -> RunManifest:
    """Combine shard output directories into one summary directory.

    Loads every shard's ``manifest.json``, verifies the shards form one
    complete, non-overlapping partition of the suite
    (:func:`~repro.runtime.shard.merge_manifests` — under point sharding
    this includes every sweep point landing on exactly one shard),
    copies each shard's artifacts (CSVs + reports) under ``output_dir``,
    and writes the merged manifest there.

    Point-sharded studies have only *partial* per-shard CSVs, so instead
    of copying they are re-materialized whole via the registry under
    ``runtime`` — pass the same ``cache_dir`` (and ``seed``) the shards
    used and the full table is served entirely from the shared
    evaluation cache, byte-identical to a single-host run.

    Returns the merged manifest; raises
    :class:`~repro.runtime.shard.ShardError` on any dropped, duplicated,
    or inconsistent study or sweep point.
    """
    runtime = ensure_runtime(runtime)
    manifests = [RunManifest.load(d) for d in shard_dirs]
    merged = merge_manifests(manifests)
    point_sharded: set[str] = set()
    for manifest in manifests:
        if manifest.point_shard_count > 1:
            point_sharded.update(entry.name for entry in manifest.entries)
    out = Path(output_dir)
    (out / "results").mkdir(parents=True, exist_ok=True)
    (out / "reports").mkdir(parents=True, exist_ok=True)
    for manifest, shard_dir in zip(manifests, shard_dirs):
        collect_artifacts(manifest, shard_dir, out, skip=point_sharded)
    if point_sharded:
        rebuilt: dict[str, ManifestEntry] = {}
        for name in merged.suite:
            entry = merged.entry_for(name)
            if name not in point_sharded or not entry.ok:
                continue
            spec = STUDIES.get(name)
            if spec is None:
                raise ShardError(
                    f"study {name!r} is not in the registry; cannot "
                    "re-materialize its point-sharded artifacts"
                )
            _verify_point_shard_fingerprints(name, spec, manifests, runtime)
            rebuilt[name] = _rematerialize_study(name, spec, runtime, out)
        merged = replace(
            merged,
            entries=tuple(
                rebuilt.get(entry.name, entry) for entry in merged.entries
            ),
        )
    merged.write(out)
    return merged


def _table_status(entry: ManifestEntry) -> str:
    return "FAIL" if entry.status == STATUS_FAILED else entry.status


def _status_table(entries: Sequence[ManifestEntry]) -> str:
    """The per-study pass/fail table, rendered from manifest entries."""
    lines = [
        "| study | status | rows | time_s | chars fresh/cached | evals fresh/cached |",
        "|---|---|---|---|---|---|",
    ]
    for entry in entries:
        t = SweepTelemetry.from_counters(entry.telemetry)
        lines.append(
            f"| {entry.name} | {_table_status(entry)} | {entry.rows} "
            f"| {entry.elapsed_s:.2f} | {t.completed}/{t.cached} "
            f"| {t.evaluated}/{t.eval_cached} |"
        )
    return "\n".join(lines)


def _report_manifest(manifest: RunManifest, output_dir: str) -> int:
    """Print the merged/shard manifest summary; return the exit code."""
    entries = manifest.entries
    total_rows = sum(e.rows for e in entries)
    telemetry = SweepTelemetry()
    for entry in entries:
        telemetry.absorb(SweepTelemetry.from_counters(entry.telemetry))
    print(f"\n{_status_table(entries)}")
    shards = (len(manifest.merged_from) or 1) * (
        len(manifest.point_merged_from) or 1
    )
    print(f"\n{len(entries)} studies from {shards} shard(s), "
          f"{total_rows} result rows. CSVs in {output_dir}/results, "
          f"reports in {output_dir}/reports.")
    print(f"runtime totals: {telemetry.summary()}")
    if not manifest.ok:
        failed = ", ".join(e.name for e in entries if not e.ok)
        print(f"FAILED studies: {failed}", file=sys.stderr)
        return EXIT_FAILED
    return EXIT_OK


def _retry_policy(args) -> Optional[RetryPolicy]:
    """The retry policy the CLI flags describe, or ``None`` for defaults."""
    if (
        args.retries is None
        and args.retry_backoff is None
        and args.point_deadline is None
    ):
        return None
    defaults = RetryPolicy()
    return RetryPolicy(
        max_attempts=(
            defaults.max_attempts if args.retries is None else args.retries
        ),
        backoff_s=(
            defaults.backoff_s if args.retry_backoff is None
            else args.retry_backoff
        ),
        deadline_s=args.point_deadline,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.studies.summary",
        description="Regenerate every study artifact (CSVs + reports).",
        epilog=(
            "exit codes: 0 success, 1 study failure or violated "
            "--expect-warm, 2 usage/merge error, 3 fully-incremental run "
            "(every study skipped as up to date)"
        ),
    )
    parser.add_argument("output_dir", nargs="?", default="output")
    parser.add_argument(
        "--list", action="store_true",
        help="list registered studies and exit",
    )
    parser.add_argument(
        "--only", default=None, metavar="NAME[,NAME...]",
        help="run only the named studies",
    )
    parser.add_argument(
        "--shard-index", type=int, default=0, metavar="I",
        help="run the I-th slice of the deterministic shard plan",
    )
    parser.add_argument(
        "--shard-count", type=int, default=1, metavar="N",
        help="split the suite into N deterministic slices",
    )
    parser.add_argument(
        "--point-shard-index", type=int, default=0, metavar="I",
        help="run the I-th slice of every study's sweep-point space",
    )
    parser.add_argument(
        "--point-shard-count", type=int, default=1, metavar="N",
        help="split every study's sweep-point space into N deterministic "
             "slices (point shards should share one --cache-dir so the "
             "merge can re-materialize full tables from cache)",
    )
    parser.add_argument(
        "--schedule", choices=("fingerprint", "balanced"),
        default="fingerprint",
        help="how point shards are planned: round-robin fingerprint "
             "hashing, or cost-balanced LPT packing from the cost ledger "
             "under CACHE_DIR/costs (degrades to round-robin when the "
             "ledger is empty)",
    )
    parser.add_argument(
        "--queue-dir", default=None, metavar="PATH",
        help="pull-based mode: lease point batches from this shared work "
             "queue directory instead of taking a static point slice "
             "(give each consumer a distinct --point-shard-index; "
             "consumers should share one --cache-dir)",
    )
    parser.add_argument(
        "--queue-batch", type=int, default=4, metavar="N",
        help="points per leased queue batch (queue mode only)",
    )
    parser.add_argument(
        "--lease-expiry", type=float, default=30.0, metavar="S",
        help="seconds a queue lease may go without a heartbeat before "
             "any worker reclaims it (queue mode only)",
    )
    parser.add_argument(
        "--merge", nargs="+", default=None, metavar="DIR",
        help="merge shard output directories into OUTPUT_DIR instead of "
             "running studies (verifies no study — or sweep point — was "
             "dropped or duplicated; point-sharded studies are "
             "re-materialized under --cache-dir/--seed)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="re-run every study even when its manifest entry is up to date",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="parallel sweep worker processes",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent cache root (characterizations, evaluations, traces)",
    )
    parser.add_argument(
        "--trace-cache-dir", default=None, metavar="PATH",
        help="override the LLC-trace cache location (default: CACHE_DIR/traces)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="override every study's stochastic seed",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip"), default="skip",
        help="abort on the first failing study, or record it and continue",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per sweep point on transient failures "
             "(worker crashes, deadline timeouts, injected chaos); "
             "points that exhaust the budget are quarantined as poisoned",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=None, metavar="S",
        help="base backoff between point retry attempts, in seconds",
    )
    parser.add_argument(
        "--point-deadline", type=float, default=None, metavar="S",
        help="per-point wall-clock deadline: overdue workers are killed "
             "and the point is charged a transient attempt "
             "(default: no deadline)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault injection for resilience testing — "
             "comma-separated key=value pairs (seed, worker_error, "
             "worker_kill, stall, stall_s, poison, cache_corrupt, "
             "corrupt_mode); 'off' disables",
    )
    parser.add_argument(
        "--expect-warm", action="store_true",
        help="exit non-zero if anything was recomputed (CI cache check)",
    )
    args = parser.parse_args(argv)

    if args.list:
        from repro.studies.pipeline import describe_registry

        print(describe_registry())
        return EXIT_OK

    try:
        retry = _retry_policy(args)
        chaos = parse_chaos_spec(args.chaos) if args.chaos is not None else None
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.merge is not None:
        incompatible = [
            flag for flag, given in (
                ("--only", args.only is not None),
                ("--shard-index", args.shard_index != 0),
                ("--shard-count", args.shard_count != 1),
                ("--point-shard-index", args.point_shard_index != 0),
                ("--point-shard-count", args.point_shard_count != 1),
                ("--schedule", args.schedule != "fingerprint"),
                ("--queue-dir", args.queue_dir is not None),
                ("--force", args.force),
                ("--expect-warm", args.expect_warm),
                ("--chaos", chaos is not None),
            ) if given
        ]
        if incompatible:
            print(
                f"error: {', '.join(incompatible)} cannot be combined with "
                "--merge (merging only combines existing shard outputs; "
                "--workers/--cache-dir/--seed configure how point-sharded "
                "studies are re-materialized)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        print(f"Merging {len(args.merge)} shard(s) into {args.output_dir}/ ...")
        try:
            merged = merge_shards(
                args.merge,
                args.output_dir,
                runtime=RuntimeOptions(
                    workers=args.workers,
                    cache_dir=args.cache_dir,
                    trace_cache_dir=args.trace_cache_dir,
                    seed=args.seed,
                    on_error=args.on_error,
                    retry=retry,
                ),
            )
        except (ReproError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        return _report_manifest(merged, args.output_dir)

    only = args.only.split(",") if args.only else None
    try:
        runtime = RuntimeOptions(
            workers=args.workers,
            cache_dir=args.cache_dir,
            trace_cache_dir=args.trace_cache_dir,
            on_error=args.on_error,
            seed=args.seed,
            point_shard_index=args.point_shard_index,
            point_shard_count=args.point_shard_count,
            retry=retry,
            chaos=chaos,
            schedule=args.schedule,
            queue_dir=args.queue_dir,
            queue_batch=args.queue_batch,
            queue_lease_s=args.lease_expiry,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    shard_note = (
        f" (shard {args.shard_index}/{args.shard_count})"
        if args.shard_count > 1 else ""
    )
    if args.point_shard_count > 1:
        shard_note += (
            f" (point shard {args.point_shard_index}/{args.point_shard_count}"
            f"{', ' + args.schedule if args.schedule != 'fingerprint' else ''})"
        )
    if args.queue_dir is not None:
        shard_note += (
            f" (queue consumer {args.point_shard_index} of {args.queue_dir})"
        )
    print(f"Regenerating studies into {args.output_dir}/{shard_note} ...")
    try:
        # SIGTERM (CI runners, systemd, Kubernetes) takes the same clean
        # drain path as Ctrl-C: finish nothing new, write the partial
        # manifest, exit 130.
        with sigterm_as_keyboard_interrupt():
            run = run_all(
                args.output_dir,
                runtime=runtime,
                only=only,
                shard_index=args.shard_index,
                shard_count=args.shard_count,
                incremental=not args.force,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        # run_all drains interrupts that land inside the study loop; this
        # catches the window outside it (setup, manifest write).
        print("\ninterrupted before any study completed", file=sys.stderr)
        return EXIT_INTERRUPTED

    if run.interrupted:
        done = len(run.outcomes)
        print(
            f"\ninterrupted: {done} studies completed before the interrupt; "
            f"partial manifest written to {args.output_dir}/manifest.json "
            "(re-run to resume)",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED

    total_rows = sum(o.rows for o in run.outcomes)
    telemetry = run.telemetry
    print(f"\n{_status_table(run.manifest.entries)}")
    fresh = len(run.outcomes) - run.incremental_skips
    print(f"\n{len(run.outcomes)} studies ({fresh} run, "
          f"{run.incremental_skips} incremental-cached), {total_rows} result "
          f"rows. CSVs in {args.output_dir}/results, reports in "
          f"{args.output_dir}/reports.")
    print(f"runtime totals: {telemetry.summary()}")
    if not run.ok:
        failed = ", ".join(o.name for o in run.outcomes if not o.ok)
        print(f"FAILED studies: {failed}", file=sys.stderr)
        return EXIT_FAILED
    if args.expect_warm and not run.warm:
        print(
            f"expected a warm run but recomputed "
            f"{telemetry.completed} characterizations, "
            f"{telemetry.evaluated} evaluation blocks, and "
            f"{telemetry.trace_simulated} LLC traces",
            file=sys.stderr,
        )
        return EXIT_FAILED
    if args.expect_warm:
        print("warm run confirmed: zero characterizations, zero evaluations, "
              "zero trace simulations.")
        return EXIT_OK
    if run.fully_incremental:
        print(f"all {len(run.outcomes)} studies up to date "
              "(incremental skip); nothing recomputed.")
        return EXIT_ALL_INCREMENTAL
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
