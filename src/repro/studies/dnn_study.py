"""The DNN inference accelerator case study (Section IV-A).

Three artifacts:

* :func:`continuous_study` — Figure 6 (left): total operating power of 2 MB
  arrays under the four NVDLA traffic scenarios at 60 FPS, with infeasible
  candidates (can't sustain 60 FPS / fail accuracy) excluded.
* :func:`intermittent_study` — Figure 6 (right): memory energy per
  inference for wake-per-inference deployment, weights held on-chip.
* :func:`intermittent_sweep` — Figure 7: total daily energy vs. wake-up
  frequency; :func:`fefet_stt_crossover` locates the headline crossover.
* :func:`preferred_technologies` — Table II: the preferred eNVM per use
  case / task / priority, under optimistic and pessimistic cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cells import STUDY_TECHNOLOGIES, CellTechnology, sram_cell, tentpoles_for
from repro.cells.base import TechnologyClass
from repro.core.engine import SweepSpec
from repro.core.intermittent import crossover_rate, evaluate_intermittent
from repro.nvsim import characterize
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, engine_for
from repro.studies.arrays import ENVM_NODE_NM, SRAM_NODE_NM
from repro.traffic.dnn import (
    ALBERT,
    ALBERT_EMBEDDINGS,
    MULTI_TASK_IMAGE,
    MULTI_TASK_NLP,
    RESNET26,
    DNNWorkload,
    continuous_scenarios,
)
from repro.units import SECONDS_PER_DAY, mb

#: Latency target per frame at 60 FPS: the memory must not slow the
#: pipeline (aggregate access latency under 1 s per second of execution).
LATENCY_TARGET_S_PER_S = 1.0

#: The DNN study additionally evaluates CTT (Table II lists it as the
#: high-density alternative under pessimistic assumptions): its second-rank
#: density matters for read-dominated inference where its slow writes do
#: not disqualify it.
DNN_STUDY_TECHNOLOGIES = tuple(STUDY_TECHNOLOGIES) + (TechnologyClass.CTT,)


def _study_cells(flavor: str) -> list[CellTechnology]:
    cells = []
    for tech in DNN_STUDY_TECHNOLOGIES:
        tent = tentpoles_for(tech)
        cells.append(tent.optimistic if flavor == "optimistic" else tent.pessimistic)
    return cells


def _all_cells() -> list[CellTechnology]:
    cells = []
    for tech in DNN_STUDY_TECHNOLOGIES:
        cells.extend(tentpoles_for(tech).labelled())
    return [cell for _, cell in cells]


def continuous_study(
    buffer_mb: float = 2.0,
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 6 (left): operating power under continuous 60 FPS traffic.

    Rows that cannot meet the frame-rate (slowdown > 1) are marked
    infeasible, mirroring the paper's exclusion of candidates that cannot
    support 60 FPS.
    """
    cells = _all_cells() + [sram_cell(SRAM_NODE_NM)]
    spec = SweepSpec(
        cells=cells,
        capacities_bytes=[mb(buffer_mb)],
        traffic=continuous_scenarios(mb(buffer_mb)),
        node_nm=ENVM_NODE_NM,
        sram_node_nm=SRAM_NODE_NM,
        optimization_targets=(OptimizationTarget.READ_EDP,),
        access_bits=512,
    )
    table = engine_for(runtime).run(spec)
    return table.with_column(
        "meets_fps",
        lambda r: bool(r["feasible"]) and r["memory_latency_s_per_s"] <= LATENCY_TARGET_S_PER_S,
    )


#: Figure 6 (right) / Table II intermittent workloads and their on-chip
#: weight-storage capacity.
INTERMITTENT_WORKLOADS: tuple[tuple[DNNWorkload, int], ...] = (
    (RESNET26, mb(2)),
    (MULTI_TASK_IMAGE, mb(16)),
    (ALBERT_EMBEDDINGS, mb(8)),
    (ALBERT, mb(32)),
    (MULTI_TASK_NLP, mb(32)),
)


def intermittent_study(
    inferences_per_day: float = SECONDS_PER_DAY,  # 1 inference per second
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Figure 6 (right): energy per inference, weights resident in eNVM."""
    engine = engine_for(runtime)
    table = ResultTable()
    for workload, capacity in INTERMITTENT_WORKLOADS:
        for tech in DNN_STUDY_TECHNOLOGIES:
            for flavor, cell in tentpoles_for(tech).labelled():
                array = engine.characterize(
                    cell, capacity, ENVM_NODE_NM,
                    OptimizationTarget.READ_EDP, 512, 1,
                )
                ev = evaluate_intermittent(array, workload, inferences_per_day)
                table.append(
                    {
                        "workload": workload.name,
                        "capacity_mb": capacity / mb(1),
                        "tech": tech.value,
                        "flavor": flavor,
                        "cell": cell.name,
                        "density_mbit_mm2": array.density_mbit_per_mm2,
                        "energy_per_inference_uj": ev.energy_per_inference * 1e6,
                        "energy_per_day_j": ev.energy_per_day,
                        "sleep_uw": ev.sleep_power * 1e6,
                    }
                )
    return table


def intermittent_sweep(
    workload: DNNWorkload,
    capacity_bytes: int,
    rates_per_day: Sequence[float] = (1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7),
    flavor: str = "optimistic",
) -> ResultTable:
    """Figure 7: daily energy vs. inferences per day."""
    table = ResultTable()
    for cell in _study_cells(flavor):
        array = characterize(
            cell, capacity_bytes, node_nm=ENVM_NODE_NM,
            optimization_target=OptimizationTarget.READ_EDP, access_bits=512,
        )
        for rate in rates_per_day:
            ev = evaluate_intermittent(array, workload, rate)
            table.append(
                {
                    "workload": workload.name,
                    "tech": cell.tech_class.value,
                    "cell": cell.name,
                    "inferences_per_day": rate,
                    "energy_per_day_j": ev.energy_per_day,
                    "energy_per_inference_uj": ev.energy_per_inference * 1e6,
                }
            )
    return table


def fefet_stt_crossover(
    workload: DNNWorkload = ALBERT, capacity_bytes: int = mb(32)
) -> float:
    """Inferences/day where optimistic STT overtakes optimistic FeFET."""
    fefet = characterize(
        tentpoles_for(TechnologyClass.FEFET).optimistic,
        capacity_bytes, node_nm=ENVM_NODE_NM,
        optimization_target=OptimizationTarget.READ_EDP, access_bits=512,
    )
    stt = characterize(
        tentpoles_for(TechnologyClass.STT).optimistic,
        capacity_bytes, node_nm=ENVM_NODE_NM,
        optimization_target=OptimizationTarget.READ_EDP, access_bits=512,
    )
    a = evaluate_intermittent(fefet, workload, 1.0)
    b = evaluate_intermittent(stt, workload, 1.0)
    return crossover_rate(a, b)


@dataclass(frozen=True)
class PreferredChoice:
    """One Table II row: the winning technology for a use case."""

    use_case: str
    workload: str
    priority: str
    optimistic_winner: str
    pessimistic_winner: str


def preferred_technologies(
    runtime: Optional[RuntimeOptions] = None,
) -> list[PreferredChoice]:
    """Table II: preferred eNVM per use case / storage / priority.

    "Low power" (continuous) and "low energy per inference" (intermittent)
    pick the minimum-power/energy feasible candidate; "high density" picks
    the densest feasible candidate.
    """
    choices: list[PreferredChoice] = []

    continuous = continuous_study(runtime=runtime)
    for workload in continuous.unique("workload"):
        rows = continuous.where(workload=workload).filter(
            lambda r: r["tech"] != "SRAM" and r["meets_fps"]
        )
        for priority, column, mode in (
            ("low-power", "total_power_mw", "min"),
            ("high-density", "density_mbit_mm2", "max"),
        ):
            winners = {}
            for flavor in ("optimistic", "pessimistic"):
                flavored = rows.where(flavor=flavor)
                if not flavored:
                    winners[flavor] = "none"
                    continue
                pick = (
                    flavored.min_by(column) if mode == "min" else flavored.max_by(column)
                )
                winners[flavor] = pick["tech"]
            choices.append(
                PreferredChoice(
                    use_case="continuous",
                    workload=str(workload),
                    priority=priority,
                    optimistic_winner=winners["optimistic"],
                    pessimistic_winner=winners["pessimistic"],
                )
            )

    intermittent = intermittent_study(runtime=runtime)
    for workload in intermittent.unique("workload"):
        rows = intermittent.where(workload=workload)
        for priority, column, mode in (
            ("low-energy-per-inf", "energy_per_inference_uj", "min"),
            ("high-density", "density_mbit_mm2", "max"),
        ):
            winners = {}
            for flavor in ("optimistic", "pessimistic"):
                flavored = rows.where(flavor=flavor)
                if not flavored:
                    winners[flavor] = "none"
                    continue
                pick = (
                    flavored.min_by(column) if mode == "min" else flavored.max_by(column)
                )
                winners[flavor] = pick["tech"]
            choices.append(
                PreferredChoice(
                    use_case="intermittent",
                    workload=str(workload),
                    priority=priority,
                    optimistic_winner=winners["optimistic"],
                    pessimistic_winner=winners["pessimistic"],
                )
            )
    return choices
