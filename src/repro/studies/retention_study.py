"""Retention-aware intermittent deployment study (an extension).

Cross-checks the intermittent DNN use case (Section IV-A2) against each
technology's retention: at very low wake-up rates — exactly where the dense
FeFET/RRAM candidates win on energy — short-retention cells must add scrub
wake-ups, which costs energy and endurance.  The study quantifies how the
Figure 7 picture changes once retention is enforced.
"""

from __future__ import annotations

from typing import Optional

from repro.cells import tentpoles_for
from repro.core.retention import deployment_check, max_unpowered_interval
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, engine_for
from repro.studies.arrays import ENVM_NODE_NM
from repro.studies.dnn_study import DNN_STUDY_TECHNOLOGIES
from repro.units import SECONDS_PER_DAY, mb


def retention_study(
    capacity_bytes: int = mb(8),
    inferences_per_day=(1.0, 10.0, 1e3, 1e5),
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """Scrubbing requirements across technologies and wake-up rates."""
    engine = engine_for(runtime)
    table = ResultTable()
    for tech in DNN_STUDY_TECHNOLOGIES:
        for flavor, cell in tentpoles_for(tech).labelled():
            array = engine.characterize(
                cell, capacity_bytes, ENVM_NODE_NM,
                OptimizationTarget.READ_EDP, 512, 1,
            )
            limit = max_unpowered_interval(array)
            for rate in inferences_per_day:
                wake_interval = SECONDS_PER_DAY / rate
                check = deployment_check(array, wake_interval)
                table.append(
                    {
                        "tech": tech.value,
                        "flavor": flavor,
                        "cell": cell.name,
                        "retention_s": array.retention_seconds,
                        "max_unpowered_s": limit,
                        "inferences_per_day": rate,
                        "wake_interval_s": wake_interval,
                        "needs_scrubbing": check.needs_scrubbing,
                        "scrub_power_uw": check.scrub_power_watts * 1e6,
                        "sleep_power_uw": array.sleep_power * 1e6,
                        "scrub_dominates_sleep": (
                            check.needs_scrubbing
                            and check.scrub_power_watts > array.sleep_power
                        ),
                    }
                )
    return table


def scrub_burdened_technologies(table: ResultTable, rate: float) -> set[str]:
    """Technologies needing scrubbing at the given wake-up rate."""
    rows = table.where(inferences_per_day=rate)
    return {r["tech"] for r in rows if r["needs_scrubbing"]}
