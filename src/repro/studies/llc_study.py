"""The non-volatile LLC case study (Section IV-C, Figure 9).

16 MB last-level-cache arrays under SPEC CPU2017 traffic: per-benchmark
power, aggregate latency, and lifetime; candidates that cannot sustain a
benchmark's bandwidth demand are excluded, exactly as the paper drops
"arrays unable to meet application bandwidth".
"""

from __future__ import annotations

from repro.cells import STUDY_TECHNOLOGIES, sram_cell, study_cells
from repro.core.engine import DSEEngine, SweepSpec
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.studies.arrays import ENVM_NODE_NM, SRAM_NODE_NM
from repro.traffic.spec import spec2017_suite
from repro.units import mb

LLC_BYTES = mb(16)


def llc_study(
    capacity_bytes: int = LLC_BYTES,
    workers: int = 1,
    cache_dir=None,
) -> ResultTable:
    """Figure 9: SPEC2017 traffic against 16 MB LLC candidates."""
    cells = study_cells(STUDY_TECHNOLOGIES) + [sram_cell(SRAM_NODE_NM)]
    spec = SweepSpec(
        cells=cells,
        capacities_bytes=[capacity_bytes],
        traffic=spec2017_suite(),
        node_nm=ENVM_NODE_NM,
        sram_node_nm=SRAM_NODE_NM,
        optimization_targets=(OptimizationTarget.READ_EDP,),
        access_bits=512,
    )
    return DSEEngine(workers=workers, cache_dir=cache_dir).run(spec)


def feasible(table: ResultTable) -> ResultTable:
    """Drop candidates that cannot meet a benchmark's bandwidth."""
    return table.filter(lambda r: r["feasible"] and r["slowdown"] <= 1.0)


def winner_per_benchmark(table: ResultTable, column: str = "total_power_mw") -> dict:
    """The minimizing optimistic eNVM per SPEC benchmark."""
    winners = {}
    rows = feasible(table).filter(
        lambda r: r["tech"] != "SRAM" and r.get("flavor") == "optimistic"
    )
    for benchmark in rows.unique("workload"):
        winners[benchmark] = rows.where(workload=benchmark).min_by(column)["tech"]
    return winners
