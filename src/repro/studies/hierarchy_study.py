"""Write-buffer sizing study over explicit two-level hierarchies.

Extends the Figure 14 what-if into a concrete design question: an STT
front buffer over an 8 MB eNVM store, with the write-coalescing factor
*measured* per buffer size on a locality-parameterized write stream.
Reports the power/latency/lifetime landscape versus buffer size for each
backing technology.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.cachesim import zipfian_batch
from repro.cells import tentpoles_for
from repro.cells.base import TechnologyClass
from repro.core.hierarchy import evaluate_hierarchy
from repro.core.writebuffer import coalescing_factor
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, ensure_runtime
from repro.studies.arrays import ENVM_NODE_NM
from repro.traffic.graph import facebook_bfs_traffic
from repro.units import kb, mb

BACKING_CAPACITY = mb(8)
FRONT_SIZES_KB = (16, 64, 256)


@lru_cache(maxsize=8)
def measured_coalescing(front_kb: int, skew: float = 1.3, seed: int = 5) -> float:
    """Coalescing factor of a ``front_kb`` buffer on a zipfian write stream."""
    addresses, _ = zipfian_batch(
        30_000, working_set_bytes=mb(2), write_fraction=1.0,
        skew=skew, seed=seed,
    )
    return coalescing_factor(addresses, buffer_lines=front_kb * 1024 // 64)


def hierarchy_study(
    backing_techs=(TechnologyClass.FEFET, TechnologyClass.PCM,
                   TechnologyClass.RRAM),
    front_sizes_kb=FRONT_SIZES_KB,
    read_hit_rate: float = 0.3,
    traffic_source: str = "bfs",
    runtime: Optional[RuntimeOptions] = None,
) -> ResultTable:
    """STT-front hierarchies over several backing eNVMs.

    ``traffic_source="bfs"`` uses the measured Facebook-BFS pattern;
    ``"synthetic-llc"`` regenerates traffic through the cache simulator,
    persisting the trace in the runtime's trace cache.
    """
    runtime = ensure_runtime(runtime)
    engine = runtime.engine()
    if traffic_source == "synthetic-llc":
        # Imported lazily: only this variant needs the simulator.
        from repro.cachesim.llc import SYNTHETIC_SUITE
        from repro.studies.llc_study import regenerated_traffic

        traffic = regenerated_traffic(SYNTHETIC_SUITE[1:2], runtime)[0]
    else:
        traffic = facebook_bfs_traffic()
    front_cell = tentpoles_for(TechnologyClass.STT).optimistic
    table = ResultTable()
    for tech in backing_techs:
        backing = engine.characterize(
            tentpoles_for(tech).optimistic, BACKING_CAPACITY,
            ENVM_NODE_NM, OptimizationTarget.READ_EDP, 64, 1,
        )
        for front_kb in front_sizes_kb:
            front = engine.characterize(
                front_cell, kb(front_kb), ENVM_NODE_NM,
                OptimizationTarget.READ_LATENCY, 64, 1,
            )
            coalescing = measured_coalescing(front_kb, seed=runtime.seed_or(5))
            combo = evaluate_hierarchy(
                front, backing, traffic,
                read_hit_rate=read_hit_rate,
                write_coalescing=coalescing,
            )
            table.append(
                {
                    "backing_tech": tech.value,
                    "front_kb": front_kb,
                    "coalescing": coalescing,
                    "total_power_mw": combo.total_power * 1e3,
                    "latency_s_per_s": combo.memory_latency_per_second,
                    "backing_lifetime_years": combo.lifetime_years,
                }
            )
    return table
