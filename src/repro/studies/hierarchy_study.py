"""Write-buffer sizing study over explicit two-level hierarchies.

Extends the Figure 14 what-if into a concrete design question: an STT
front buffer over an 8 MB eNVM store, with the write-coalescing factor
*measured* per buffer size on a locality-parameterized write stream.
Reports the power/latency/lifetime landscape versus buffer size for each
backing technology.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cachesim import zipfian_batch
from repro.cells import tentpoles_for
from repro.cells.base import TechnologyClass
from repro.core.hierarchy import evaluate_hierarchy
from repro.core.writebuffer import coalescing_factor
from repro.nvsim import characterize
from repro.nvsim.result import OptimizationTarget
from repro.results.table import ResultTable
from repro.studies.arrays import ENVM_NODE_NM
from repro.traffic.graph import facebook_bfs_traffic
from repro.units import kb, mb

BACKING_CAPACITY = mb(8)
FRONT_SIZES_KB = (16, 64, 256)


@lru_cache(maxsize=8)
def measured_coalescing(front_kb: int, skew: float = 1.3, seed: int = 5) -> float:
    """Coalescing factor of a ``front_kb`` buffer on a zipfian write stream."""
    addresses, _ = zipfian_batch(
        30_000, working_set_bytes=mb(2), write_fraction=1.0,
        skew=skew, seed=seed,
    )
    return coalescing_factor(addresses, buffer_lines=front_kb * 1024 // 64)


def hierarchy_study(
    backing_techs=(TechnologyClass.FEFET, TechnologyClass.PCM,
                   TechnologyClass.RRAM),
    front_sizes_kb=FRONT_SIZES_KB,
    read_hit_rate: float = 0.3,
) -> ResultTable:
    """STT-front hierarchies over several backing eNVMs."""
    traffic = facebook_bfs_traffic()
    front_cell = tentpoles_for(TechnologyClass.STT).optimistic
    table = ResultTable()
    for tech in backing_techs:
        backing = characterize(
            tentpoles_for(tech).optimistic, BACKING_CAPACITY,
            node_nm=ENVM_NODE_NM,
            optimization_target=OptimizationTarget.READ_EDP,
        )
        for front_kb in front_sizes_kb:
            front = characterize(
                front_cell, kb(front_kb), node_nm=ENVM_NODE_NM,
                optimization_target=OptimizationTarget.READ_LATENCY,
            )
            coalescing = measured_coalescing(front_kb)
            combo = evaluate_hierarchy(
                front, backing, traffic,
                read_hit_rate=read_hit_rate,
                write_coalescing=coalescing,
            )
            table.append(
                {
                    "backing_tech": tech.value,
                    "front_kb": front_kb,
                    "coalescing": coalescing,
                    "total_power_mw": combo.total_power * 1e3,
                    "latency_s_per_s": combo.memory_latency_per_second,
                    "backing_lifetime_years": combo.lifetime_years,
                }
            )
    return table
