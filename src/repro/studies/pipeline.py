"""The unified study pipeline: a registry of uniformly-runnable studies.

Every paper study is described by one :class:`StudySpec` — its builder,
default parameters, report options, and the figure it reproduces — and
**every** spec runs the same way: ``spec.run(RuntimeOptions(...))``.
The shared :class:`~repro.runtime.options.RuntimeOptions` (workers,
cache_dir, trace_cache_dir, on_error, progress, seed) is threaded down
through :class:`~repro.core.engine.DSEEngine` by every builder, so
parallelism and the persistent characterization / evaluation / trace
caches work identically across the whole suite — no signature probing,
no per-study shims.

The registry is the single source of truth for the study CLI
(``python -m repro.config.cli run-study <name>``), the summary driver
(``python -m repro.studies.summary``), and the shipped per-study config
stubs under ``config/studies/``.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional

from repro.errors import ReproError
from repro.results.table import ResultTable
from repro.runtime.options import RuntimeOptions, ensure_runtime
from repro.runtime.telemetry import SweepTelemetry
from repro.studies.arrays import dnn_buffer_arrays, llc_arrays, optimization_target_study
from repro.studies.codesign import area_efficiency_study, back_gated_fefet_study
from repro.studies.dnn_study import continuous_study, intermittent_study
from repro.studies.graph_study import graph_study
from repro.studies.hierarchy_study import hierarchy_study
from repro.studies.llc_study import llc_study
from repro.studies.mlc_study import mlc_study
from repro.studies.retention_study import retention_study
from repro.studies.writebuffer_study import writebuffer_study


@dataclass(frozen=True)
class StudyOutcome:
    """One study run: its table, aggregated telemetry, and timing.

    An *incremental* outcome (``cached=True``) records a study the
    summary skipped because its manifest entry was up to date: there is
    no table (the artifacts already exist on disk), the telemetry is
    empty, and ``rows`` reports the prior run's row count.
    """

    name: str
    table: Optional[ResultTable]
    telemetry: SweepTelemetry
    elapsed_s: float
    error: Optional[str] = None
    cached: bool = False
    cached_rows: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def rows(self) -> int:
        if self.table is None:
            return self.cached_rows if self.cached else 0
        return len(self.table)

    @property
    def poisoned(self) -> int:
        """Points quarantined after exhausting their transient-retry
        budget (characterize + evaluate phases); the sweep completed
        around them, so the table is missing their rows."""
        return self.telemetry.poisoned + self.telemetry.eval_poisoned

    @property
    def status(self) -> str:
        """Manifest-vocabulary status: ``ok`` / ``cached`` / ``failed``."""
        if not self.ok:
            return "failed"
        return "cached" if self.cached else "ok"


@dataclass(frozen=True)
class StudySpec:
    """One registered study: builder, defaults, and reporting metadata."""

    name: str
    builder: Callable[..., ResultTable]
    figure: str  # paper figure/table tag, e.g. "Fig. 9"
    description: str
    params: Mapping[str, Any] = field(default_factory=dict)
    report: Mapping[str, Any] = field(default_factory=dict)  # study_report kwargs

    def run(
        self,
        runtime: Optional[RuntimeOptions] = None,
        **overrides: Any,
    ) -> StudyOutcome:
        """Run the study under shared runtime options.

        ``overrides`` replace the spec's default parameters.  Telemetry
        from every engine the builder creates is aggregated into the
        outcome (and still forwarded to ``runtime.progress``).  Under
        ``on_error="skip"`` a framework error becomes a failed outcome
        instead of an exception.
        """
        runtime = ensure_runtime(runtime)
        telemetry = SweepTelemetry(runtime.progress)
        kwargs = {**self.params, **overrides}
        start = time.perf_counter()
        table = None
        error = None
        try:
            table = self.builder(**kwargs, runtime=runtime.with_progress(telemetry.emit))
        except ReproError as exc:
            if runtime.on_error != "skip":
                raise
            error = str(exc)
        return StudyOutcome(
            name=self.name,
            table=table,
            telemetry=telemetry,
            elapsed_s=time.perf_counter() - start,
            error=error,
        )


def _registry(*specs: StudySpec) -> dict[str, StudySpec]:
    out: dict[str, StudySpec] = {}
    for spec in specs:
        if spec.name in out:
            raise ValueError(f"duplicate study name {spec.name!r}")
        out[spec.name] = spec
    return out


#: Every paper study, keyed by registry name (the CLI/summary interface).
REGISTRY: dict[str, StudySpec] = _registry(
    StudySpec(
        name="fig03_array_targets",
        builder=optimization_target_study,
        figure="Fig. 3",
        description="Iso-capacity arrays across optimization targets vs. SRAM.",
        report={"winner_column": None},
    ),
    StudySpec(
        name="fig05_dnn_arrays",
        builder=dnn_buffer_arrays,
        figure="Fig. 5",
        description="2 MB NVDLA-buffer replacement arrays.",
        report={"winner_column": None},
    ),
    StudySpec(
        name="fig06_dnn_continuous",
        builder=continuous_study,
        figure="Fig. 6 (left)",
        description="Operating power under continuous 60 FPS DNN traffic.",
    ),
    StudySpec(
        name="fig06_dnn_intermittent",
        builder=intermittent_study,
        figure="Fig. 6 (right)",
        description="Energy per inference with weights resident in eNVM.",
        report={"winner_column": "energy_per_inference_uj"},
    ),
    StudySpec(
        name="fig08_graph",
        builder=graph_study,
        figure="Fig. 8",
        description="Graph-kernel traffic envelopes on 8 MB scratchpads.",
        params={"points_per_axis": 3},
    ),
    StudySpec(
        name="fig09_spec_llc",
        builder=llc_study,
        figure="Fig. 9",
        description="SPEC CPU2017 traffic against 16 MB LLC candidates.",
    ),
    StudySpec(
        name="fig10_llc_arrays",
        builder=llc_arrays,
        figure="Fig. 10",
        description="16 MB LLC-candidate arrays (64 B line access).",
        report={"winner_column": None},
    ),
    StudySpec(
        name="fig11_bg_fefet",
        builder=back_gated_fefet_study,
        figure="Fig. 11",
        description="Back-gated FeFET co-design vs. standard FeFETs.",
        params={"points_per_axis": 2},
    ),
    StudySpec(
        name="fig12_area_efficiency",
        builder=area_efficiency_study,
        figure="Fig. 12",
        description="Organization cloud annotated with area efficiency.",
        params={"traffic_points": 2},
        report={"winner_column": None},
    ),
    StudySpec(
        name="fig13_mlc",
        builder=mlc_study,
        figure="Fig. 13",
        description="SLC vs. MLC density and fault-injected accuracy.",
        params={"trials": 2},
        report={"winner_column": None},
    ),
    StudySpec(
        name="fig14_writebuffer",
        builder=writebuffer_study,
        figure="Fig. 14",
        description="Write-buffer masking/coalescing what-if scenarios.",
    ),
    StudySpec(
        name="ext_retention",
        builder=retention_study,
        figure="extension",
        description="Retention-enforced scrubbing costs for intermittent DNN.",
        report={"winner_column": None},
    ),
    StudySpec(
        name="ext_hierarchy",
        builder=hierarchy_study,
        figure="extension",
        description="STT-front two-level hierarchies over backing eNVMs.",
        report={"winner_column": None},
    ),
    StudySpec(
        name="ext_synthetic_llc",
        builder=llc_study,
        figure="Fig. 9 (regenerated)",
        description=(
            "LLC study on cache-simulator-regenerated traffic "
            "(exercises the persistent trace cache)."
        ),
        params={"source": "synthetic", "n_accesses": 60_000},
    ),
)


def study_names() -> list[str]:
    """Registered study names, in registry (paper figure) order."""
    return list(REGISTRY)


def describe_registry() -> str:
    """One aligned line per registered study (the ``--list`` output)."""
    return "\n".join(
        f"{name:26s} {spec.figure:20s} {spec.description}"
        for name, spec in REGISTRY.items()
    )


def get_study(name: str) -> StudySpec:
    """The spec for ``name``; raises :class:`ReproError` when unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise ReproError(f"unknown study {name!r} (known: {known})") from None


@dataclass(frozen=True)
class StudyRequest:
    """One resolved query against the registry: spec + effective inputs.

    The unit the serving layer works in: a request carries everything
    that determines a study's artifacts (spec, parameter overrides, seed
    override), so :meth:`fingerprint` is a stable content key — two
    clients asking for the same study with the same inputs hash
    identically and can share one computation and one cached answer.
    """

    spec: StudySpec
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def fingerprint(self) -> str:
        """Content key covering params, seed, cache schema tags, and the
        source revision (:func:`~repro.runtime.shard.study_fingerprint`)."""
        # Imported lazily: shard builds on the runtime package only, but
        # keeping pipeline import-light preserves the existing layering.
        from repro.runtime.shard import study_fingerprint

        return study_fingerprint(self.spec, overrides=self.params, seed=self.seed)

    def run(self, runtime: Optional[RuntimeOptions] = None) -> StudyOutcome:
        """Run the request under ``runtime`` (its seed beats the runtime's)."""
        runtime = ensure_runtime(runtime)
        if self.seed is not None:
            runtime = replace(runtime, seed=int(self.seed))
        return self.spec.run(runtime, **self.params)


#: Keys a study-request payload may carry.
_REQUEST_KEYS = frozenset({"study", "params", "seed"})


def resolve_study_request(payload: Mapping[str, Any]) -> StudyRequest:
    """Validate a client's study-request payload into a :class:`StudyRequest`.

    The payload is the service's submit body (already JSON-decoded)::

        {"study": "fig09_spec_llc", "params": {...}, "seed": 7}

    Raises :class:`~repro.errors.ReproError` on an unknown study, unknown
    payload keys, parameters the study's builder does not accept, or a
    ``runtime`` parameter (execution options belong to the server, not
    the request).
    """
    if not isinstance(payload, Mapping):
        raise ReproError("study request must be an object")
    unknown = sorted(set(payload) - _REQUEST_KEYS)
    if unknown:
        raise ReproError(
            f"unknown request keys: {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(_REQUEST_KEYS))})"
        )
    if "study" not in payload:
        raise ReproError("study request needs a 'study' key")
    spec = get_study(str(payload["study"]))
    params = payload.get("params") or {}
    if not isinstance(params, Mapping):
        raise ReproError(f"study {spec.name!r}: params must be an object")
    if "runtime" in params:
        raise ReproError(
            f"study {spec.name!r}: 'runtime' is not a study parameter "
            "(execution options are configured server-side)"
        )
    try:
        inspect.signature(spec.builder).bind_partial(**params)
    except TypeError as exc:
        raise ReproError(f"study {spec.name!r}: bad params ({exc})") from None
    seed = payload.get("seed")
    if seed is not None:
        try:
            seed = int(seed)
        except (TypeError, ValueError):
            raise ReproError(
                f"study {spec.name!r}: seed must be an integer, got {seed!r}"
            ) from None
    return StudyRequest(spec=spec, params=dict(params), seed=seed)


def run_study(
    name: str,
    runtime: Optional[RuntimeOptions] = None,
    **overrides: Any,
) -> ResultTable:
    """Run one registered study and return its table.

    The single-study convenience wrapper used by the CLI; failures raise
    regardless of ``on_error`` (a lone study has nothing to keep going
    for — pass ``on_error="skip"`` to :meth:`StudySpec.run` and inspect
    the outcome to tolerate them).
    """
    outcome = get_study(name).run(runtime, **overrides)
    if outcome.table is None:
        raise ReproError(f"study {name!r} failed: {outcome.error}")
    return outcome.table
