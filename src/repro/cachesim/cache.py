"""A set-associative write-back cache simulator.

A deliberately small but real cache model: LRU replacement, write-back with
write-allocate, per-access statistics.  The framework uses it to

* regenerate SPEC-like LLC traffic tables from synthetic address streams
  (:mod:`repro.cachesim.streams`), and
* measure write-coalescing factors for the write-buffer study
  (:func:`repro.core.writebuffer.coalescing_factor`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache."""

    capacity_bytes: int
    line_bytes: int = 64
    associativity: int = 16

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigError("cache dimensions must be positive")
        if self.capacity_bytes % self.line_bytes != 0:
            raise ConfigError("capacity must be a multiple of the line size")
        lines = self.capacity_bytes // self.line_bytes
        if lines % self.associativity != 0:
            raise ConfigError("line count must be a multiple of associativity")

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass
class CacheStats:
    """Counters accumulated by :class:`Cache.access`."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class _Line:
    tag: int
    dirty: bool = False


class Cache:
    """LRU set-associative write-back cache with write-allocate."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Per set: an ordered dict-like list, most-recently-used last.
        self._sets: list[dict[int, _Line]] = [dict() for _ in range(config.n_sets)]

    def _locate(self, address: int) -> tuple[int, int]:
        line_addr = address // self.config.line_bytes
        set_index = line_addr % self.config.n_sets
        tag = line_addr // self.config.n_sets
        return set_index, tag

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one address; returns True on hit.

        Misses allocate (write-allocate policy); LRU victims that are dirty
        count as ``dirty_evictions`` (write-backs to the next level).
        """
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        line = cache_set.pop(tag, None)
        if line is not None:
            cache_set[tag] = line  # refresh LRU position
            if is_write:
                line.dirty = True
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            return True

        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1

        if len(cache_set) >= self.config.associativity:
            victim_tag = next(iter(cache_set))
            victim = cache_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
        cache_set[tag] = _Line(tag=tag, dirty=is_write)
        return False

    def run(self, stream) -> CacheStats:
        """Replay an iterable of ``(address, is_write)`` pairs."""
        for address, is_write in stream:
            self.access(address, is_write)
        return self.stats

    def dirty_lines(self) -> int:
        """Dirty lines still resident (would drain on flush)."""
        return sum(
            1 for s in self._sets for line in s.values() if line.dirty
        )

    def reset_stats(self) -> None:
        self.stats = CacheStats()
