"""Vectorized batch cache simulation.

The reference :class:`~repro.cachesim.cache.Cache` replays one access at a
time through Python dicts — exact, but the dominant serial cost of the LLC
and write-buffer studies.  This module computes the same set-associative
LRU statistics over a whole ``(addresses, is_write)`` array pair at once:

* :func:`simulate_batch` partitions the accesses by set index and replays
  all sets simultaneously with numpy ("matrix LRU": one array row of tags
  and dirty bits per set, one vectorized step per *round* of per-set
  accesses).  Consecutive repeat accesses to the same line are collapsed
  first — they are guaranteed hits — so heavily skewed streams need few
  rounds.
* Fully-associative write-only streams (the write-buffer coalescing case,
  where there is a single set and the matrix walk would degenerate to a
  serial scan) dispatch to a closed-form LRU stack-distance path: an
  access hits iff the number of distinct lines touched since its previous
  access is below the associativity, and every eviction is dirty.

Both paths produce :class:`~repro.cachesim.cache.CacheStats` that match
the reference simulator field-for-field (see ``tests/test_cachesim_parity``
for the property-based parity suite), plus per-access hit/eviction flags
so hierarchies can be chained (L2 misses and write-backs feed the LLC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cachesim.cache import CacheConfig, CacheStats
from repro.errors import ConfigError


@dataclass
class BatchResult:
    """Outcome of one batch replay: aggregate counters + per-access flags."""

    config: CacheConfig
    stats: CacheStats
    hit: np.ndarray  # bool, per access: served without going to the next level
    eviction: np.ndarray  # bool, per access: this miss evicted a victim line
    dirty_eviction: np.ndarray  # bool, per access: the victim was dirty
    dirty_lines: int  # dirty lines still resident after the replay

    @property
    def n_accesses(self) -> int:
        return int(self.hit.size)


def simulate_batch(
    config: CacheConfig,
    addresses,
    is_write=None,
) -> BatchResult:
    """Replay a whole address array through a set-associative LRU cache.

    ``addresses`` and ``is_write`` are 1-D arrays (or sequences) of equal
    length; ``is_write=None`` means all reads.  Returns counters identical
    to ``Cache(config).run(zip(addresses, is_write))`` plus per-access
    outcome flags.
    """
    addresses = np.ascontiguousarray(addresses, dtype=np.int64)
    if addresses.ndim != 1:
        raise ConfigError("addresses must be one-dimensional")
    n = addresses.size
    if is_write is None:
        is_write = np.zeros(n, dtype=bool)
    else:
        is_write = np.ascontiguousarray(is_write, dtype=bool)
    if is_write.shape != addresses.shape:
        raise ConfigError("addresses and is_write must have the same length")
    if n and int(addresses.min()) < 0:
        raise ConfigError("addresses must be non-negative")

    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return BatchResult(config, CacheStats(), empty, empty.copy(),
                           empty.copy(), 0)

    line_addr = addresses // config.line_bytes
    set_idx = line_addr % config.n_sets
    tag = line_addr // config.n_sets

    if config.n_sets == 1 and bool(is_write.all()):
        return _write_only_fully_associative(config, tag, is_write)
    return _matrix_lru(config, set_idx, tag, is_write)


# --- general path: all sets stepped together ------------------------------

#: A vectorized round must cover at least this many sets to be worth the
#: numpy dispatch overhead; narrower rounds (a few hot sets with long
#: access sequences — or a small cache altogether) finish on a serial
#: dict replay instead, which matches reference-simulator speed.
_TAIL_MIN_WIDTH = 48


def _matrix_lru(
    config: CacheConfig,
    set_idx: np.ndarray,
    tag: np.ndarray,
    is_write: np.ndarray,
) -> BatchResult:
    n = set_idx.size
    assoc = config.associativity

    # Group accesses by set, keeping each set's accesses in time order.
    order = np.argsort(set_idx, kind="stable")
    s_o = set_idx[order]
    t_o = tag[order]
    w_o = is_write[order]

    # Collapse runs of consecutive same-line accesses within a set: only
    # the first access of a run can miss, the rest are guaranteed hits,
    # and the run leaves the line dirty iff any access in it wrote.
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    new_run[1:] = (s_o[1:] != s_o[:-1]) | (t_o[1:] != t_o[:-1])
    run_starts = np.flatnonzero(new_run)
    r_set = s_o[run_starts]
    r_tag = t_o[run_starts]
    r_dirty_w = np.logical_or.reduceat(w_o, run_starts)
    m = run_starts.size

    # Within-set rank of each run; round k replays every set's k-th run.
    set_start = np.empty(m, dtype=bool)
    set_start[0] = True
    set_start[1:] = r_set[1:] != r_set[:-1]
    set_firsts = np.flatnonzero(set_start)
    runs_per_set = np.diff(np.append(set_firsts, m))
    rank = np.arange(m) - np.repeat(set_firsts, runs_per_set)
    round_order = np.argsort(rank, kind="stable")
    widths = np.bincount(rank)
    round_offsets = np.concatenate(([0], np.cumsum(widths)))

    # Dense state only for the sets that actually appear.  Tags fit int32
    # for any realistic geometry; fall back to int64 rather than truncate.
    active_sets = r_set[set_firsts]
    n_active = active_sets.size
    dense = np.cumsum(set_start) - 1
    tag_dtype = np.int32 if int(r_tag.max()) < 2**31 else np.int64
    r_tag = r_tag.astype(tag_dtype, copy=False)
    tags_state = np.full((n_active, assoc), -1, dtype=tag_dtype)
    dirty_state = np.zeros((n_active, assoc), dtype=bool)
    # Recency stamps: larger = more recent; negative initials make empty
    # ways fill left-to-right before any eviction.
    stamp_state = np.tile(
        np.arange(-assoc, 0, dtype=np.int32), (n_active, 1))

    run_hit = np.empty(m, dtype=bool)
    run_evict = np.empty(m, dtype=bool)
    run_dirty_evict = np.empty(m, dtype=bool)

    # Rounds are non-increasing in width; hand the narrow tail to the
    # serial fallback.
    n_rounds = widths.size
    if widths[-1] < _TAIL_MIN_WIDTH:
        n_rounds = int(np.argmax(widths < _TAIL_MIN_WIDTH))
    bulk = round_offsets[n_rounds]

    # Pre-gather the bulk rounds into round order so the hot loop works on
    # contiguous slices instead of fancy-indexed copies.
    o_rows = dense[round_order[:bulk]]
    o_tag = r_tag[round_order[:bulk]]
    o_dw = r_dirty_w[round_order[:bulk]]
    o_hit = np.empty(bulk, dtype=bool)
    o_evict = np.empty(bulk, dtype=bool)
    o_dirty_evict = np.empty(bulk, dtype=bool)
    lanes = np.arange(int(widths[0]) if widths.size else 0)

    for k in range(n_rounds):
        a, b = round_offsets[k], round_offsets[k + 1]
        rows = o_rows[a:b]
        t = o_tag[a:b]
        rows_t = tags_state[rows]

        pos = (rows_t == t[:, None]).argmax(axis=1)
        h = rows_t[lanes[:b - a], pos] == t
        way = np.where(h, pos, stamp_state[rows].argmin(axis=1))
        old_d = dirty_state[rows, way]
        ev = ~h & (rows_t[lanes[:b - a], way] != -1)

        tags_state[rows, way] = t
        dirty_state[rows, way] = (h & old_d) | o_dw[a:b]
        stamp_state[rows, way] = k

        o_hit[a:b] = h
        o_evict[a:b] = ev
        o_dirty_evict[a:b] = ev & old_d

    run_hit[round_order[:bulk]] = o_hit
    run_evict[round_order[:bulk]] = o_evict
    run_dirty_evict[round_order[:bulk]] = o_dirty_evict

    dirty_extra = 0
    if n_rounds < widths.size:
        dirty_extra = _serial_tail(
            np.sort(round_order[bulk:]),
            dense, r_tag, r_dirty_w, assoc,
            tags_state, dirty_state, stamp_state,
            run_hit, run_evict, run_dirty_evict,
        )

    # Scatter run outcomes back to per-access flags (collapsed followers
    # are hits with no eviction).
    hit_sorted = np.ones(n, dtype=bool)
    evict_sorted = np.zeros(n, dtype=bool)
    dirty_evict_sorted = np.zeros(n, dtype=bool)
    hit_sorted[run_starts] = run_hit
    evict_sorted[run_starts] = run_evict
    dirty_evict_sorted[run_starts] = run_dirty_evict

    hit = np.empty(n, dtype=bool)
    eviction = np.empty(n, dtype=bool)
    dirty_eviction = np.empty(n, dtype=bool)
    hit[order] = hit_sorted
    eviction[order] = evict_sorted
    dirty_eviction[order] = dirty_evict_sorted

    stats = _stats_from_flags(is_write, hit, eviction, dirty_eviction)
    return BatchResult(config, stats, hit, eviction, dirty_eviction,
                       int(dirty_state.sum()) + dirty_extra)


def _serial_tail(
    tail: np.ndarray,
    dense: np.ndarray,
    r_tag: np.ndarray,
    r_dirty_w: np.ndarray,
    assoc: int,
    tags_state: np.ndarray,
    dirty_state: np.ndarray,
    stamp_state: np.ndarray,
    run_hit: np.ndarray,
    run_evict: np.ndarray,
    run_dirty_evict: np.ndarray,
) -> int:
    """Finish the few remaining hot-set runs with the reference dict walk.

    ``tail`` holds run indices sorted ascending, i.e. grouped by set in
    time order; sets are mutually independent, so replay order across sets
    does not matter.  Touched rows are lifted out of the matrix state into
    ``{tag: dirty}`` dicts ordered LRU-first (exactly the reference
    :class:`~repro.cachesim.cache.Cache` layout), and their matrix dirty
    bits are cleared so the caller can sum resident dirty lines from both
    representations.  Returns the dirty-line count held by the dicts.
    """
    lifted: dict[int, dict[int, bool]] = {}
    hits: list[bool] = []
    evictions: list[bool] = []
    dirty_evictions: list[bool] = []
    for row, t, dw in zip(dense[tail].tolist(), r_tag[tail].tolist(),
                          r_dirty_w[tail].tolist()):
        lines = lifted.get(row)
        if lines is None:
            lines = {}
            for way in np.argsort(stamp_state[row], kind="stable").tolist():
                if tags_state[row, way] != -1:
                    lines[int(tags_state[row, way])] = bool(
                        dirty_state[row, way])
            lifted[row] = lines
            dirty_state[row] = False
        dirty = lines.pop(t, None)
        if dirty is not None:
            lines[t] = dirty or dw
            hits.append(True)
            evictions.append(False)
            dirty_evictions.append(False)
            continue
        hits.append(False)
        evicted = len(lines) >= assoc
        victim_dirty = False
        if evicted:
            victim_dirty = lines.pop(next(iter(lines)))
        evictions.append(evicted)
        dirty_evictions.append(victim_dirty)
        lines[t] = dw
    run_hit[tail] = hits
    run_evict[tail] = evictions
    run_dirty_evict[tail] = dirty_evictions
    return sum(1 for lines in lifted.values()
               for dirty in lines.values() if dirty)


# --- fully-associative write-only path (write-buffer coalescing) ----------


def _write_only_fully_associative(
    config: CacheConfig,
    tag: np.ndarray,
    is_write: np.ndarray,
) -> BatchResult:
    n = tag.size
    assoc = config.associativity

    # Previous occurrence of each line (-1 for compulsory first touches).
    order = np.argsort(tag, kind="stable")
    t_sorted = tag[order]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    same = t_sorted[1:] == t_sorted[:-1]
    prev_sorted[1:][same] = order[:-1][same]
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted

    # LRU stack property: access i hits iff the number of distinct lines
    # touched strictly between its previous occurrence p and i is < assoc.
    # Every such distinct line contributes exactly one access j in (p, i)
    # whose own previous occurrence is <= p, so the distance is
    #   #{j < i : prev[j] <= prev[i]} - prev[i] - 1
    # (every j <= p trivially satisfies prev[j] < j <= p).
    leq_before = _count_prefix_leq(prev)
    distance = leq_before - prev - 1
    hit = (prev >= 0) & (distance < assoc)

    # Write-allocate + write-only stream: every resident line is dirty and
    # every eviction writes back.  Before the buffer first fills, misses
    # are exactly the compulsory first touches, so occupancy at access i
    # is min(#distinct lines before i, assoc).
    first = prev < 0
    distinct_before = np.cumsum(first) - first
    eviction = ~hit & (distinct_before >= assoc)
    dirty_lines = int(min(int(first.sum()), assoc))

    stats = _stats_from_flags(is_write, hit, eviction, eviction)
    return BatchResult(config, stats, hit, eviction, eviction.copy(),
                       dirty_lines)


def _count_prefix_leq(values: np.ndarray) -> np.ndarray:
    """``out[i] = #{j < i : values[j] <= values[i]}``, fully vectorized.

    Bottom-up mergesort with pair counting: blocks are kept sorted; at
    each level every left half is merged with its right half, and each
    right-half element picks up the number of left-half elements ``<=``
    it.  Each ordered index pair is counted at exactly the level where the
    two indices first share a block, so the counts sum to the answer.

    The whole level is processed with two ``searchsorted`` calls by
    offsetting every block's keys into a disjoint value range, making the
    concatenation of all sorted blocks globally sorted — no per-block
    Python loop, ~10 numpy passes per level.
    """
    n = values.size
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    n2 = 1 << max(6, (n - 1).bit_length())
    pad_value = np.iinfo(np.int32).max  # sorts after every real value

    values = np.asarray(values, dtype=np.int64)
    low = int(values.min())
    span = int(values.max()) - low + 2  # +1 for the pad slot
    padded = np.full(n2, pad_value, dtype=np.int64)
    padded[:n] = values - low  # non-negative, < span - 1

    # Base case: count within 64-wide blocks by brute broadcasting (one
    # batched pass replaces the six narrowest merge levels), and leave
    # each block sorted for the merge levels above.
    base = 64
    blocks = padded.reshape(-1, base)
    tri = np.tril(np.ones((base, base), dtype=bool), k=-1)
    pair_counts = ((blocks[:, :, None] >= blocks[:, None, :]) & tri).sum(axis=2)
    counts = np.zeros(n2, dtype=np.int64)
    counts[:] = pair_counts.reshape(-1)
    block_order = np.argsort(blocks, axis=1, kind="stable")
    sorted_vals = np.take_along_axis(blocks, block_order, axis=1).reshape(-1)
    owner = (block_order
             + np.arange(0, n2, base, dtype=np.int64)[:, None]).reshape(-1)

    half = base
    while half < n2:
        width = 2 * half
        pairs = n2 // width
        # Offset each block pair into its own value range so every block
        # stays sorted relative to its neighbours.
        base = np.repeat(np.arange(pairs, dtype=np.int64) * span, half)
        left = sorted_vals.reshape(pairs, width)[:, :half].reshape(-1)
        right = sorted_vals.reshape(pairs, width)[:, half:].reshape(-1)
        # Pads get each block's top key slot so they sort to the block
        # tail without straddling into the next block's range.
        left_keys = np.where(left == pad_value, base + span - 1, left + base)
        right_keys = np.where(right == pad_value, base + span - 1, right + base)

        in_block = np.arange(n2 // 2, dtype=np.int64) % half
        block_lo = np.repeat(np.arange(pairs, dtype=np.int64) * half, half)
        # #left <= right element (ties favour left: side="right").
        left_leq = np.searchsorted(left_keys, right_keys, side="right") - block_lo
        # #right strictly < left element (ties favour left: side="left").
        right_lt = np.searchsorted(right_keys, left_keys, side="left") - block_lo

        right_owner = owner.reshape(pairs, width)[:, half:].reshape(-1)
        real = right != pad_value
        # Each original index is a right-half element at most once per
        # level, so plain fancy indexing accumulates safely.
        counts[right_owner[real]] += left_leq[real]

        # Stable merge positions for the next level.
        merged_vals = np.empty(n2, dtype=np.int64)
        merged_owner = np.empty(n2, dtype=np.int64)
        left_pos = np.repeat(np.arange(pairs, dtype=np.int64) * width, half) \
            + in_block + right_lt
        right_pos = np.repeat(np.arange(pairs, dtype=np.int64) * width, half) \
            + in_block + left_leq
        left_owner = owner.reshape(pairs, width)[:, :half].reshape(-1)
        merged_vals[left_pos] = left
        merged_owner[left_pos] = left_owner
        merged_vals[right_pos] = right
        merged_owner[right_pos] = right_owner
        sorted_vals = merged_vals
        owner = merged_owner
        half = width
    return counts[:n]


def _stats_from_flags(
    is_write: np.ndarray,
    hit: np.ndarray,
    eviction: np.ndarray,
    dirty_eviction: np.ndarray,
) -> CacheStats:
    return CacheStats(
        read_hits=int(np.count_nonzero(~is_write & hit)),
        read_misses=int(np.count_nonzero(~is_write & ~hit)),
        write_hits=int(np.count_nonzero(is_write & hit)),
        write_misses=int(np.count_nonzero(is_write & ~hit)),
        evictions=int(np.count_nonzero(eviction)),
        dirty_evictions=int(np.count_nonzero(dirty_eviction)),
    )
