"""Regenerating LLC traffic tables with the cache simulator.

The SPEC characterization table (:mod:`repro.traffic.spec`) ships fixed
numbers; this module shows the same numbers can be *derived*: run a
parameterized synthetic workload through an L2+LLC hierarchy and read the
LLC's miss/writeback rates off the counters.  The studies accept traffic
from either source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.cache import Cache, CacheConfig, CacheStats
from repro.cachesim.streams import WorkloadModel
from repro.traffic.base import TrafficPattern
from repro.units import MB, mb


@dataclass(frozen=True)
class LLCTrace:
    """LLC-level access statistics extracted from a simulation."""

    name: str
    llc_reads: int  # LLC lookups from L2 misses
    llc_writes: int  # dirty writebacks arriving from L2
    instructions: float  # modeled instruction count
    duration: float  # modeled execution time, seconds

    @property
    def read_mpki(self) -> float:
        return 1000.0 * self.llc_reads / self.instructions

    @property
    def write_mpki(self) -> float:
        return 1000.0 * self.llc_writes / self.instructions

    def traffic(self, line_bytes: int = 64) -> TrafficPattern:
        return TrafficPattern.from_totals(
            name=self.name,
            total_reads=self.llc_reads,
            total_writes=self.llc_writes,
            duration=self.duration,
            access_bytes=line_bytes,
            metadata={"kind": "cachesim-llc"},
        )


def simulate_llc_traffic(
    workload: WorkloadModel,
    n_accesses: int = 200_000,
    l2_kb: int = 512,
    llc_mb: int = 16,
    instructions_per_access: float = 25.0,
    clock_hz: float = 4.0e9,
    ipc: float = 2.0,
    seed: int = 1,
) -> LLCTrace:
    """Drive a workload through L2 -> LLC and extract LLC traffic.

    The address stream models one core's L1-miss traffic; accesses that
    miss in the (private) L2 look up the LLC, and L2 dirty evictions write
    back into it — matching the paper's non-inclusive write-back L2 over an
    inclusive write-back LLC.
    """
    l2 = Cache(CacheConfig(capacity_bytes=l2_kb * 1024, associativity=8))
    llc = Cache(CacheConfig(capacity_bytes=mb(llc_mb), associativity=16))

    llc_reads = 0
    llc_writes = 0
    for address, is_write in workload.stream(n_accesses, seed=seed):
        dirty_before = l2.stats.dirty_evictions
        hit = l2.access(address, is_write)
        if not hit:
            llc.access(address, is_write=False)
            llc_reads += 1
        if l2.stats.dirty_evictions > dirty_before:
            llc.access(address, is_write=True)
            llc_writes += 1

    instructions = n_accesses * instructions_per_access
    duration = instructions / (clock_hz * ipc)
    return LLCTrace(
        name=workload.name,
        llc_reads=llc_reads,
        llc_writes=llc_writes,
        instructions=instructions,
        duration=duration,
    )


#: A small synthetic suite spanning memory-bound to compute-bound behaviour,
#: mirroring the spread of the SPEC2017 characterization table.
SYNTHETIC_SUITE: tuple[WorkloadModel, ...] = (
    WorkloadModel("synthetic-membound", working_set_bytes=mb(256), write_fraction=0.30,
                  locality_skew=1.05, streaming_fraction=0.5),
    WorkloadModel("synthetic-mixed", working_set_bytes=mb(64), write_fraction=0.25,
                  locality_skew=1.3, streaming_fraction=0.2),
    WorkloadModel("synthetic-cachey", working_set_bytes=mb(8), write_fraction=0.20,
                  locality_skew=1.8, streaming_fraction=0.05),
    WorkloadModel("synthetic-compute", working_set_bytes=mb(2), write_fraction=0.10,
                  locality_skew=2.2, streaming_fraction=0.02),
)


def synthetic_llc_suite(n_accesses: int = 100_000) -> list[TrafficPattern]:
    """LLC traffic regenerated from the synthetic suite."""
    return [
        simulate_llc_traffic(w, n_accesses=n_accesses).traffic()
        for w in SYNTHETIC_SUITE
    ]
