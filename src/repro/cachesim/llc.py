"""Regenerating LLC traffic tables with the cache simulator.

The SPEC characterization table (:mod:`repro.traffic.spec`) ships fixed
numbers; this module shows the same numbers can be *derived*: run a
parameterized synthetic workload through an L2+LLC hierarchy and read the
LLC's miss/writeback rates off the counters.  The studies accept traffic
from either source.

Simulation runs on the vectorized batch engine
(:mod:`repro.cachesim.batch`): the workload's whole address array goes
through the L2 at once, and the L2's per-access miss / dirty-writeback
flags are expanded into the LLC's access stream.  Pass ``cache_dir`` to
persist regenerated traces in the content-addressed runtime cache
(:class:`repro.runtime.cache.LLCTraceCache`), keyed by a fingerprint of
the workload and simulation parameters, so repeated study runs skip
simulation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

import numpy as np

from repro.cachesim.batch import simulate_batch
from repro.cachesim.cache import CacheConfig
from repro.cachesim.streams import WorkloadModel
from repro.traffic.base import TrafficPattern
from repro.units import mb


@dataclass(frozen=True)
class LLCTrace:
    """LLC-level access statistics extracted from a simulation."""

    name: str
    llc_reads: int  # LLC lookups from L2 misses
    llc_writes: int  # dirty writebacks arriving from L2
    instructions: float  # modeled instruction count
    duration: float  # modeled execution time, seconds
    llc_hits: int = 0  # LLC lookups served without going to memory

    @property
    def read_mpki(self) -> float:
        return 1000.0 * self.llc_reads / self.instructions

    @property
    def write_mpki(self) -> float:
        return 1000.0 * self.llc_writes / self.instructions

    @property
    def llc_hit_rate(self) -> float:
        accesses = self.llc_reads + self.llc_writes
        return self.llc_hits / accesses if accesses else 0.0

    def traffic(self, line_bytes: int = 64) -> TrafficPattern:
        return TrafficPattern.from_totals(
            name=self.name,
            total_reads=self.llc_reads,
            total_writes=self.llc_writes,
            duration=self.duration,
            access_bytes=line_bytes,
            metadata={"kind": "cachesim-llc"},
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able payload for the persistent trace cache."""
        return {
            "name": self.name,
            "llc_reads": self.llc_reads,
            "llc_writes": self.llc_writes,
            "instructions": self.instructions,
            "duration": self.duration,
            "llc_hits": self.llc_hits,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LLCTrace":
        return cls(
            name=str(payload["name"]),
            llc_reads=int(payload["llc_reads"]),
            llc_writes=int(payload["llc_writes"]),
            instructions=float(payload["instructions"]),
            duration=float(payload["duration"]),
            llc_hits=int(payload.get("llc_hits", 0)),
        )


def simulate_llc_traffic(
    workload: WorkloadModel,
    n_accesses: int = 200_000,
    l2_kb: int = 512,
    llc_mb: int = 16,
    instructions_per_access: float = 25.0,
    clock_hz: float = 4.0e9,
    ipc: float = 2.0,
    seed: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    cache=None,
) -> LLCTrace:
    """Drive a workload through L2 -> LLC and extract LLC traffic.

    The address stream models one core's L1-miss traffic; accesses that
    miss in the (private) L2 look up the LLC, and L2 dirty evictions write
    back into it — matching the paper's non-inclusive write-back L2 over an
    inclusive write-back LLC.

    With ``cache_dir`` set (or an :class:`~repro.runtime.cache.\
LLCTraceCache` passed as ``cache`` — handy when the caller wants to read
    hit/store counters afterwards), the resulting trace is persisted
    under a fingerprint of ``(workload, simulation parameters)`` and
    re-runs load it instead of re-simulating.
    """
    fingerprint = None
    if cache is None and cache_dir is not None:
        from repro.runtime.cache import LLCTraceCache

        cache = LLCTraceCache(cache_dir)
    if cache is not None:
        from repro.runtime.fingerprint import trace_fingerprint

        fingerprint = trace_fingerprint(
            workload,
            n_accesses=n_accesses,
            l2_kb=l2_kb,
            llc_mb=llc_mb,
            instructions_per_access=instructions_per_access,
            clock_hz=clock_hz,
            ipc=ipc,
            seed=seed,
        )
        cached = cache.load(fingerprint)
        if cached is not None:
            return cached

    addresses, is_write = workload.batch(n_accesses, seed=seed)
    l2 = simulate_batch(
        CacheConfig(capacity_bytes=l2_kb * 1024, associativity=8),
        addresses, is_write,
    )

    # Expand the L2 outcome flags into the LLC's access stream: each miss
    # becomes an LLC read of the missing line, immediately followed by a
    # writeback when that miss evicted a dirty L2 line (dirty evictions
    # only ever happen on misses).
    miss_positions = np.flatnonzero(~l2.hit)
    writeback = l2.dirty_eviction[miss_positions]
    events_per_miss = 1 + writeback.astype(np.int64)
    llc_addresses = np.repeat(addresses[miss_positions], events_per_miss)
    llc_is_write = np.zeros(llc_addresses.size, dtype=bool)
    llc_is_write[np.cumsum(events_per_miss)[writeback] - 1] = True
    llc = simulate_batch(
        CacheConfig(capacity_bytes=mb(llc_mb), associativity=16),
        llc_addresses, llc_is_write,
    )

    instructions = n_accesses * instructions_per_access
    duration = instructions / (clock_hz * ipc)
    trace = LLCTrace(
        name=workload.name,
        llc_reads=int(miss_positions.size),
        llc_writes=int(np.count_nonzero(writeback)),
        instructions=instructions,
        duration=duration,
        llc_hits=llc.stats.hits,
    )
    if cache is not None:
        cache.store(fingerprint, trace)
    return trace


#: A small synthetic suite spanning memory-bound to compute-bound behaviour,
#: mirroring the spread of the SPEC2017 characterization table.
SYNTHETIC_SUITE: tuple[WorkloadModel, ...] = (
    WorkloadModel("synthetic-membound", working_set_bytes=mb(256), write_fraction=0.30,
                  locality_skew=1.05, streaming_fraction=0.5),
    WorkloadModel("synthetic-mixed", working_set_bytes=mb(64), write_fraction=0.25,
                  locality_skew=1.3, streaming_fraction=0.2),
    WorkloadModel("synthetic-cachey", working_set_bytes=mb(8), write_fraction=0.20,
                  locality_skew=1.8, streaming_fraction=0.05),
    WorkloadModel("synthetic-compute", working_set_bytes=mb(2), write_fraction=0.10,
                  locality_skew=2.2, streaming_fraction=0.02),
)


def synthetic_llc_suite(
    n_accesses: int = 100_000,
    seed: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    cache=None,
) -> list[TrafficPattern]:
    """LLC traffic regenerated from the synthetic suite.

    ``cache_dir`` (or a shared ``cache`` instance) persists each
    workload's trace (see :func:`simulate_llc_traffic`), making repeated
    suite regenerations near-instant.
    """
    return [
        simulate_llc_traffic(
            w, n_accesses=n_accesses, seed=seed,
            cache_dir=cache_dir, cache=cache,
        ).traffic()
        for w in SYNTHETIC_SUITE
    ]
