"""Synthetic memory-address streams.

Generators for the access patterns that drive the cache simulator: streaming
(sequential), strided, zipfian-random (pointer chasing over a skewed working
set), and a mixed model parameterized like a real workload (working-set
size, write fraction, locality skew).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigError


def sequential_stream(
    n_accesses: int,
    stride_bytes: int = 64,
    write_fraction: float = 0.0,
    seed: int = 1,
) -> Iterator[tuple[int, bool]]:
    """A streaming scan: address increases by ``stride_bytes`` each access."""
    _check(n_accesses, write_fraction)
    rng = random.Random(seed)
    addr = 0
    for _ in range(n_accesses):
        yield addr, rng.random() < write_fraction
        addr += stride_bytes


def strided_stream(
    n_accesses: int,
    stride_bytes: int,
    working_set_bytes: int,
    write_fraction: float = 0.0,
    seed: int = 1,
) -> Iterator[tuple[int, bool]]:
    """A strided sweep that wraps around a fixed working set."""
    _check(n_accesses, write_fraction)
    if working_set_bytes <= 0 or stride_bytes <= 0:
        raise ConfigError("stride and working set must be positive")
    rng = random.Random(seed)
    addr = 0
    for _ in range(n_accesses):
        yield addr % working_set_bytes, rng.random() < write_fraction
        addr += stride_bytes


def zipfian_stream(
    n_accesses: int,
    working_set_bytes: int,
    line_bytes: int = 64,
    skew: float = 1.1,
    write_fraction: float = 0.2,
    seed: int = 1,
) -> Iterator[tuple[int, bool]]:
    """Zipf-distributed accesses over a working set (hot/cold lines)."""
    _check(n_accesses, write_fraction)
    if skew <= 1.0:
        raise ConfigError("zipf skew must be > 1")
    n_lines = max(1, working_set_bytes // line_bytes)
    rng = np.random.default_rng(seed)
    lines = rng.zipf(skew, size=n_accesses) % n_lines
    writes = rng.random(n_accesses) < write_fraction
    for line, is_write in zip(lines, writes):
        yield int(line) * line_bytes, bool(is_write)


@dataclass(frozen=True)
class WorkloadModel:
    """A parameterized synthetic workload for LLC-trace regeneration."""

    name: str
    working_set_bytes: int
    write_fraction: float
    locality_skew: float = 1.2  # >1; higher = more cache-friendly
    streaming_fraction: float = 0.2  # fraction of sequential scan traffic

    def stream(self, n_accesses: int, seed: int = 1) -> Iterator[tuple[int, bool]]:
        """Interleave zipfian pointer traffic with streaming scans."""
        n_stream = int(n_accesses * self.streaming_fraction)
        n_zipf = n_accesses - n_stream
        zipf = zipfian_stream(
            n_zipf,
            self.working_set_bytes,
            skew=self.locality_skew,
            write_fraction=self.write_fraction,
            seed=seed,
        )
        seq = sequential_stream(
            n_stream, write_fraction=self.write_fraction, seed=seed + 1
        )
        rng = random.Random(seed + 2)
        iters = [iter(zipf), iter(seq)]
        weights = [n_zipf, n_stream]
        while any(w > 0 for w in weights):
            choice = rng.choices([0, 1], weights=[max(w, 0) for w in weights])[0]
            if weights[choice] <= 0:
                continue
            weights[choice] -= 1
            try:
                yield next(iters[choice])
            except StopIteration:
                weights[choice] = 0


def _check(n_accesses: int, write_fraction: float) -> None:
    if n_accesses < 0:
        raise ConfigError("n_accesses must be non-negative")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigError("write_fraction must be in [0, 1]")
