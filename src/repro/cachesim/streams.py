"""Synthetic memory-address streams.

Generators for the access patterns that drive the cache simulator:
streaming (sequential), strided, zipfian-random (pointer chasing over a
skewed working set), and a mixed model parameterized like a real workload
(working-set size, write fraction, locality skew).

Every pattern has two forms: a ``*_batch`` function that materializes the
whole ``(addresses, is_write)`` pair as numpy arrays in one shot (the fast
path consumed by :mod:`repro.cachesim.batch`), and the original iterator
API, kept as a thin wrapper over the batch form for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

import numpy as np

from repro.errors import ConfigError

#: Working sets up to this many lines sample the truncated zipf by inverse
#: CDF (the table is cached per (n_lines, skew): ~8 B/line); larger ones
#: fall back to rejection resampling of ``rng.zipf`` draws.
_ZIPF_CDF_MAX_LINES = 1 << 22
#: Safety cap on zipf rejection-resampling rounds; any draw still outside
#: the working set afterwards is clipped to the coldest line.
_ZIPF_RESAMPLE_ROUNDS = 64


@lru_cache(maxsize=8)
def _zipf_cdf(n_lines: int, skew: float) -> np.ndarray:
    """CDF of the zipf distribution truncated to ranks ``1..n_lines``."""
    cdf = np.cumsum(np.arange(1, n_lines + 1, dtype=np.float64) ** -skew)
    cdf /= cdf[-1]
    return cdf


def sequential_batch(
    n_accesses: int,
    stride_bytes: int = 64,
    write_fraction: float = 0.0,
    seed: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """A streaming scan as arrays: address grows by ``stride_bytes``."""
    _check(n_accesses, write_fraction)
    addresses = np.arange(n_accesses, dtype=np.int64) * stride_bytes
    rng = np.random.default_rng(seed)
    return addresses, rng.random(n_accesses) < write_fraction


def strided_batch(
    n_accesses: int,
    stride_bytes: int,
    working_set_bytes: int,
    write_fraction: float = 0.0,
    seed: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """A strided sweep wrapping a fixed working set, as arrays."""
    _check(n_accesses, write_fraction)
    if working_set_bytes <= 0 or stride_bytes <= 0:
        raise ConfigError("stride and working set must be positive")
    addresses = (np.arange(n_accesses, dtype=np.int64) * stride_bytes
                 % working_set_bytes)
    rng = np.random.default_rng(seed)
    return addresses, rng.random(n_accesses) < write_fraction


def zipfian_batch(
    n_accesses: int,
    working_set_bytes: int,
    line_bytes: int = 64,
    skew: float = 1.1,
    write_fraction: float = 0.2,
    seed: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Zipf-distributed accesses over a working set, as arrays.

    Rank ``r`` maps monotonically to line ``r - 1``, so the hottest lines
    are the lowest-numbered ones.  The distribution is the zipf truncated
    to the working set (draws beyond it are redistributed over all lines
    in proportion), not the old modulo wrap, which aliased the heavy tail
    onto arbitrary mid-working-set lines.
    """
    _check(n_accesses, write_fraction)
    if skew <= 1.0:
        raise ConfigError("zipf skew must be > 1")
    n_lines = max(1, working_set_bytes // line_bytes)
    rng = np.random.default_rng(seed)
    if n_lines <= _ZIPF_CDF_MAX_LINES:
        lines = np.searchsorted(
            _zipf_cdf(n_lines, skew), rng.random(n_accesses), side="right"
        ).astype(np.int64)
    else:
        ranks = rng.zipf(skew, size=n_accesses)
        for _ in range(_ZIPF_RESAMPLE_ROUNDS):
            outside = ranks > n_lines
            n_outside = int(np.count_nonzero(outside))
            if not n_outside:
                break
            ranks[outside] = rng.zipf(skew, size=n_outside)
        lines = np.minimum(ranks, n_lines).astype(np.int64) - 1
    writes = rng.random(n_accesses) < write_fraction
    return lines * line_bytes, writes


def sequential_stream(
    n_accesses: int,
    stride_bytes: int = 64,
    write_fraction: float = 0.0,
    seed: int = 1,
) -> Iterator[tuple[int, bool]]:
    """Iterator form of :func:`sequential_batch`."""
    yield from _iterate(sequential_batch(
        n_accesses, stride_bytes, write_fraction, seed))


def strided_stream(
    n_accesses: int,
    stride_bytes: int,
    working_set_bytes: int,
    write_fraction: float = 0.0,
    seed: int = 1,
) -> Iterator[tuple[int, bool]]:
    """Iterator form of :func:`strided_batch`."""
    yield from _iterate(strided_batch(
        n_accesses, stride_bytes, working_set_bytes, write_fraction, seed))


def zipfian_stream(
    n_accesses: int,
    working_set_bytes: int,
    line_bytes: int = 64,
    skew: float = 1.1,
    write_fraction: float = 0.2,
    seed: int = 1,
) -> Iterator[tuple[int, bool]]:
    """Iterator form of :func:`zipfian_batch`."""
    yield from _iterate(zipfian_batch(
        n_accesses, working_set_bytes, line_bytes, skew, write_fraction, seed))


@dataclass(frozen=True)
class WorkloadModel:
    """A parameterized synthetic workload for LLC-trace regeneration."""

    name: str
    working_set_bytes: int
    write_fraction: float
    locality_skew: float = 1.2  # >1; higher = more cache-friendly
    streaming_fraction: float = 0.2  # fraction of sequential scan traffic

    def batch(
        self, n_accesses: int, seed: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """The whole mixed stream as ``(addresses, is_write)`` arrays.

        Zipfian pointer traffic and streaming scans are interleaved at a
        uniformly random set of positions (each stream keeps its internal
        order) — the same distribution as drawing the next access from
        either stream with probability proportional to its remaining
        length, without the per-access RNG call.
        """
        n_stream = int(n_accesses * self.streaming_fraction)
        n_zipf = n_accesses - n_stream
        zipf_addr, zipf_w = zipfian_batch(
            n_zipf,
            self.working_set_bytes,
            skew=self.locality_skew,
            write_fraction=self.write_fraction,
            seed=seed,
        )
        seq_addr, seq_w = sequential_batch(
            n_stream, write_fraction=self.write_fraction, seed=seed + 1
        )
        rng = np.random.default_rng(seed + 2)
        zipf_slots = np.zeros(n_accesses, dtype=bool)
        zipf_slots[rng.permutation(n_accesses)[:n_zipf]] = True
        addresses = np.empty(n_accesses, dtype=np.int64)
        is_write = np.empty(n_accesses, dtype=bool)
        addresses[zipf_slots] = zipf_addr
        is_write[zipf_slots] = zipf_w
        addresses[~zipf_slots] = seq_addr
        is_write[~zipf_slots] = seq_w
        return addresses, is_write

    def stream(self, n_accesses: int, seed: int = 1) -> Iterator[tuple[int, bool]]:
        """Iterator form of :meth:`batch`."""
        yield from _iterate(self.batch(n_accesses, seed=seed))


def _iterate(
    batch: tuple[np.ndarray, np.ndarray]
) -> Iterator[tuple[int, bool]]:
    addresses, is_write = batch
    yield from zip(addresses.tolist(), is_write.tolist())


def _check(n_accesses: int, write_fraction: float) -> None:
    if n_accesses < 0:
        raise ConfigError("n_accesses must be non-negative")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigError("write_fraction must be in [0, 1]")
