"""Cache-simulation substrate: caches, address streams, LLC trace derivation.

Two simulation APIs coexist:

* the reference one-access-at-a-time :class:`Cache` (exact LRU semantics,
  used as ground truth), and
* the vectorized batch engine, :func:`repro.cachesim.batch.simulate_batch`,
  which replays a whole ``(addresses, is_write)`` array pair at once with
  identical :class:`CacheStats` — the fast path behind
  :func:`simulate_llc_traffic` and the write-buffer coalescing study.

Streams likewise come in batch form (``sequential_batch`` /
``strided_batch`` / ``zipfian_batch`` / :meth:`WorkloadModel.batch`,
returning numpy arrays in one shot) and as the original per-access
iterators, which are thin wrappers over the batch form.
"""

from repro.cachesim.batch import BatchResult, simulate_batch
from repro.cachesim.cache import Cache, CacheConfig, CacheStats
from repro.cachesim.llc import (
    SYNTHETIC_SUITE,
    LLCTrace,
    simulate_llc_traffic,
    synthetic_llc_suite,
)
from repro.cachesim.streams import (
    WorkloadModel,
    sequential_batch,
    sequential_stream,
    strided_batch,
    strided_stream,
    zipfian_batch,
    zipfian_stream,
)

__all__ = [
    "BatchResult",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "WorkloadModel",
    "simulate_batch",
    "sequential_batch",
    "sequential_stream",
    "strided_batch",
    "strided_stream",
    "zipfian_batch",
    "zipfian_stream",
    "LLCTrace",
    "simulate_llc_traffic",
    "synthetic_llc_suite",
    "SYNTHETIC_SUITE",
]
