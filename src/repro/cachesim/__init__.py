"""Cache-simulation substrate: caches, address streams, LLC trace derivation."""

from repro.cachesim.cache import Cache, CacheConfig, CacheStats
from repro.cachesim.llc import (
    SYNTHETIC_SUITE,
    LLCTrace,
    simulate_llc_traffic,
    synthetic_llc_suite,
)
from repro.cachesim.streams import (
    WorkloadModel,
    sequential_stream,
    strided_stream,
    zipfian_stream,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "WorkloadModel",
    "sequential_stream",
    "strided_stream",
    "zipfian_stream",
    "LLCTrace",
    "simulate_llc_traffic",
    "synthetic_llc_suite",
    "SYNTHETIC_SUITE",
]
