"""Sweep execution runtime: parallelism, persistent caching, telemetry.

The paper's value proposition is *fast* cross-stack design-space
exploration; this package is the execution layer that delivers it:

* :mod:`repro.runtime.fingerprint` — stable, content-addressed identities
  for sweep points (cell parameters + array provisioning), shared by the
  in-memory and on-disk caches.
* :mod:`repro.runtime.cache` — persistent content-addressed caches (array
  characterizations and regenerated LLC traffic traces) so repeated and
  incremental sweeps are near-instant and interrupted sweeps are
  resumable.
* :mod:`repro.runtime.executor` — chunked fan-out of characterization and
  (array, traffic) evaluation over a :class:`~concurrent.futures.\
ProcessPoolExecutor`, with deterministic result ordering and a serial
  fallback for ``workers=1``.
* :mod:`repro.runtime.telemetry` — progress events (completed / cached /
  failed points) via callback and logging instead of dying on the first
  :class:`~repro.errors.CharacterizationError`.
"""

from repro.runtime.cache import (
    CharacterizationCache,
    JsonObjectCache,
    LLCTraceCache,
)
from repro.runtime.executor import (
    SweepPoint,
    characterize_points,
    parallel_map,
    sweep_points,
)
from repro.runtime.fingerprint import (
    SCHEMA_TAG,
    TRACE_SCHEMA_TAG,
    canonical_json,
    fingerprint_payload,
    point_fingerprint,
    point_payload,
    trace_fingerprint,
    trace_payload,
)
from repro.runtime.telemetry import ProgressEvent, SweepTelemetry

__all__ = [
    "SCHEMA_TAG",
    "TRACE_SCHEMA_TAG",
    "CharacterizationCache",
    "JsonObjectCache",
    "LLCTraceCache",
    "ProgressEvent",
    "SweepPoint",
    "SweepTelemetry",
    "canonical_json",
    "characterize_points",
    "fingerprint_payload",
    "parallel_map",
    "point_fingerprint",
    "point_payload",
    "sweep_points",
    "trace_fingerprint",
    "trace_payload",
]
