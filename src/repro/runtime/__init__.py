"""Sweep execution runtime: parallelism, persistent caching, telemetry.

The paper's value proposition is *fast* cross-stack design-space
exploration; this package is the execution layer that delivers it:

* :mod:`repro.runtime.fingerprint` — stable, content-addressed identities
  for sweep points (cell parameters + array provisioning), shared by the
  in-memory and on-disk caches.
* :mod:`repro.runtime.cache` — persistent content-addressed caches (array
  characterizations, (array x traffic) evaluation row blocks, and
  regenerated LLC traffic traces) so repeated and incremental sweeps are
  near-instant and interrupted sweeps are resumable.
* :mod:`repro.runtime.executor` — chunked fan-out of characterization and
  (array, traffic) evaluation over a :class:`~concurrent.futures.\
ProcessPoolExecutor`, with deterministic result ordering and a serial
  fallback for ``workers=1``.
* :mod:`repro.runtime.shard` — deterministic shard planning (split the
  study suite, or one study's fingerprinted point space, across hosts
  with no coordinator), per-shard run manifests, manifest merging with
  dropped/duplicate detection, and the content fingerprints behind the
  incremental summary.
* :mod:`repro.runtime.options` — :class:`RuntimeOptions`, the shared
  execution options (workers, cache_dir, trace_cache_dir, on_error,
  progress, seed) every study and config-driven sweep accepts.
* :mod:`repro.runtime.telemetry` — progress events (completed / cached /
  failed points) via callback and logging instead of dying on the first
  :class:`~repro.errors.CharacterizationError`.
* :mod:`repro.runtime.aio` — async-safe adapters (a thread-safe telemetry
  bridge onto an event loop, a bounded thread pool for blocking studies)
  that let asyncio services drive the engine without stalling the loop.
* :mod:`repro.runtime.interrupt` — SIGTERM delivered as
  ``KeyboardInterrupt`` so drivers and services share one drain path.
* :mod:`repro.runtime.resilience` — fault-tolerant execution: transient
  vs deterministic failure classification, bounded retries with
  deterministic backoff, broken-pool recovery, a per-point deadline
  watchdog, and ``POISONED`` quarantine for points that exhaust retries.
* :mod:`repro.runtime.chaos` — deterministic fault injection (worker
  crashes/kills/stalls, cache corruption) keyed by fingerprint + seed,
  so every resilience guarantee is testable end-to-end.
* :mod:`repro.runtime.fsck` — cache/manifest integrity audit and repair
  (the ``nvmexplorer fsck`` command).
* :mod:`repro.runtime.schedule` — cost-model-driven elastic scheduling:
  a persistent ledger of observed per-point wall-clock, a deterministic
  regression cost model, cost-balanced (LPT) point-shard planning, and
  a pull-based work queue where workers lease point batches with
  heartbeat + expiry reclaim instead of taking a static partition.
"""

from repro.runtime.aio import AsyncStudyRunner, TelemetryBridge
from repro.runtime.cache import (
    QUARANTINE_SUBDIR,
    CharacterizationCache,
    EvaluationCache,
    JsonObjectCache,
    LLCTraceCache,
)
from repro.runtime.chaos import ChaosInjectedError, ChaosOptions, parse_chaos_spec
from repro.runtime.executor import (
    SweepPoint,
    characterize_points,
    evaluate_blocks,
    parallel_map,
    sweep_points,
)
from repro.runtime.fingerprint import (
    EVAL_SCHEMA_TAG,
    SCHEMA_TAG,
    TRACE_SCHEMA_TAG,
    canonical_json,
    evaluation_context,
    evaluation_fingerprint,
    fingerprint_payload,
    point_fingerprint,
    point_payload,
    trace_fingerprint,
    trace_payload,
)
from repro.runtime.fsck import FsckReport, fsck_cache_dir, fsck_manifest, fsck_store
from repro.runtime.interrupt import sigterm_as_keyboard_interrupt
from repro.runtime.options import RuntimeOptions, engine_for, ensure_runtime
from repro.runtime.resilience import (
    RetryPolicy,
    TaskOutcome,
    classify_error,
    run_resilient,
)
from repro.runtime.schedule import (
    BalancedPointShard,
    CostLedger,
    CostModel,
    QueueLeaseLost,
    WorkQueue,
    cost_ledger_for,
    evaluation_features,
    plan_balanced,
    point_features,
)
from repro.runtime.shard import (
    ManifestEntry,
    PointShard,
    RunManifest,
    ShardError,
    ShardPlan,
    assign_fingerprint,
    merge_manifests,
    partition_fingerprints,
    plan_shard,
    point_set_digest,
    point_shard_section,
    schema_tags,
    shard_assignments,
    study_fingerprint,
)
from repro.runtime.telemetry import ProgressEvent, SweepTelemetry

__all__ = [
    "EVAL_SCHEMA_TAG",
    "QUARANTINE_SUBDIR",
    "SCHEMA_TAG",
    "TRACE_SCHEMA_TAG",
    "AsyncStudyRunner",
    "BalancedPointShard",
    "ChaosInjectedError",
    "ChaosOptions",
    "CharacterizationCache",
    "CostLedger",
    "CostModel",
    "EvaluationCache",
    "FsckReport",
    "JsonObjectCache",
    "LLCTraceCache",
    "ManifestEntry",
    "PointShard",
    "ProgressEvent",
    "QueueLeaseLost",
    "RetryPolicy",
    "RunManifest",
    "RuntimeOptions",
    "ShardError",
    "ShardPlan",
    "SweepPoint",
    "SweepTelemetry",
    "TaskOutcome",
    "TelemetryBridge",
    "WorkQueue",
    "assign_fingerprint",
    "canonical_json",
    "characterize_points",
    "classify_error",
    "cost_ledger_for",
    "engine_for",
    "ensure_runtime",
    "evaluate_blocks",
    "evaluation_features",
    "fsck_cache_dir",
    "fsck_manifest",
    "fsck_store",
    "evaluation_context",
    "evaluation_fingerprint",
    "fingerprint_payload",
    "merge_manifests",
    "parallel_map",
    "parse_chaos_spec",
    "partition_fingerprints",
    "plan_balanced",
    "plan_shard",
    "point_features",
    "point_fingerprint",
    "point_payload",
    "point_set_digest",
    "point_shard_section",
    "run_resilient",
    "schema_tags",
    "shard_assignments",
    "sigterm_as_keyboard_interrupt",
    "study_fingerprint",
    "sweep_points",
    "trace_fingerprint",
    "trace_payload",
]
