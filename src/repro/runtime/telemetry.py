"""Sweep progress telemetry.

Long sweeps should report what happened to every point — characterized,
served from cache, or failed — instead of dying on the first
:class:`~repro.errors.CharacterizationError`.  The executor emits one
:class:`ProgressEvent` per point; :class:`SweepTelemetry` counts them,
logs them on the ``repro.runtime`` logger, and forwards them to an
optional user callback (a progress bar, a dashboard, a CI annotator).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, List, Optional

logger = logging.getLogger("repro.runtime")

#: Event kinds, in the order a point can experience them.
COMPLETED = "completed"
CACHED = "cached"
FAILED = "failed"
#: A point excluded by this host's point-shard selector: another shard
#: owns it, so it is accounted (for merge verification) but never run.
SKIPPED = "skipped"


@dataclass(frozen=True)
class ProgressEvent:
    """One sweep point's outcome."""

    kind: str  # COMPLETED | CACHED | FAILED | SKIPPED
    label: str  # human-readable point label
    index: int  # position in the sweep's deterministic order
    total: int  # points in this phase
    phase: str = "characterize"  # "characterize" | "evaluate" | "trace"
    source: str = ""  # for CACHED: "memory" | "disk"
    error: str = ""  # for FAILED: the error message
    fingerprint: str = ""  # content fingerprint, set under point sharding

    def describe(self) -> str:
        extra = ""
        if self.kind == CACHED and self.source:
            extra = f" [{self.source}]"
        elif self.kind == FAILED:
            extra = f": {self.error}"
        elif self.kind == SKIPPED:
            extra = " [other shard]"
        return (
            f"{self.phase} {self.index + 1}/{self.total} "
            f"{self.kind} {self.label}{extra}"
        )


ProgressCallback = Callable[[ProgressEvent], None]


@dataclass
class SweepTelemetry:
    """Aggregates progress events for one sweep run."""

    callback: Optional[ProgressCallback] = None
    completed: int = 0  # characterize-phase points computed fresh
    cached: int = 0  # characterize-phase points served from a cache
    failed: int = 0
    skipped: int = 0  # characterize-phase points owned by another point shard
    evaluated: int = 0  # evaluate-phase (array x traffic) blocks computed fresh
    eval_cached: int = 0  # evaluate-phase blocks served from a cache
    eval_skipped: int = 0  # evaluate-phase blocks owned by another point shard
    trace_simulated: int = 0  # trace-phase LLC regenerations run fresh
    trace_cached: int = 0  # trace-phase regenerations served from a cache
    failures: List[ProgressEvent] = field(default_factory=list)
    #: Point-shard accounting, keyed by content fingerprint.  Populated
    #: only when a sweep runs under a point-shard selector: every sweep
    #: point lands in ``planned_points``, this shard's slice additionally
    #: in ``selected_points``, and successfully characterized points in
    #: ``completed_points`` — the data behind the manifest's point-shard
    #: section and the merge step's exactly-once verification.
    planned_points: set = field(default_factory=set)
    selected_points: set = field(default_factory=set)
    completed_points: set = field(default_factory=set)

    def emit(self, event: ProgressEvent) -> None:
        if event.kind == SKIPPED:
            if event.phase == "evaluate":
                self.eval_skipped += 1
            else:
                self.skipped += 1
            logger.debug("%s", event.describe())
        elif event.kind == COMPLETED and event.phase == "evaluate":
            self.evaluated += 1
            logger.debug("%s", event.describe())
        elif event.kind == CACHED and event.phase == "evaluate":
            self.eval_cached += 1
            logger.debug("%s", event.describe())
        elif event.kind == COMPLETED and event.phase == "trace":
            self.trace_simulated += 1
            logger.debug("%s", event.describe())
        elif event.kind == CACHED and event.phase == "trace":
            self.trace_cached += 1
            logger.debug("%s", event.describe())
        elif event.kind == COMPLETED:
            self.completed += 1
            logger.debug("%s", event.describe())
        elif event.kind == CACHED:
            self.cached += 1
            logger.debug("%s", event.describe())
        elif event.kind == FAILED:
            self.failed += 1
            self.failures.append(event)
            logger.warning("%s", event.describe())
        if event.fingerprint and event.phase == "characterize":
            self.planned_points.add(event.fingerprint)
            if event.kind != SKIPPED:
                self.selected_points.add(event.fingerprint)
            if event.kind in (COMPLETED, CACHED):
                self.completed_points.add(event.fingerprint)
        if self.callback is not None:
            self.callback(event)

    @property
    def total(self) -> int:
        return self.completed + self.cached + self.failed

    @property
    def fresh_work(self) -> int:
        """Characterizations, evaluation blocks, and trace simulations
        actually computed (as opposed to served from a cache)."""
        return self.completed + self.evaluated + self.trace_simulated

    def counters(self) -> dict:
        """The counter fields as a JSON-able dict (manifest payload)."""
        return {
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "skipped": self.skipped,
            "evaluated": self.evaluated,
            "eval_cached": self.eval_cached,
            "eval_skipped": self.eval_skipped,
            "trace_simulated": self.trace_simulated,
            "trace_cached": self.trace_cached,
        }

    @classmethod
    def from_counters(cls, counters) -> "SweepTelemetry":
        """Rebuild aggregate counts from a manifest's counter dict.

        Unknown keys are ignored and missing keys default to zero, so
        manifests from slightly older/newer versions still aggregate.
        """
        telemetry = cls()
        for name in (
            "completed", "cached", "failed", "skipped", "evaluated",
            "eval_cached", "eval_skipped", "trace_simulated", "trace_cached",
        ):
            setattr(telemetry, name, int(counters.get(name, 0)))
        return telemetry

    def absorb(self, other: "SweepTelemetry") -> None:
        """Fold another run's counters into this aggregate."""
        self.completed += other.completed
        self.cached += other.cached
        self.failed += other.failed
        self.skipped += other.skipped
        self.evaluated += other.evaluated
        self.eval_cached += other.eval_cached
        self.eval_skipped += other.eval_skipped
        self.trace_simulated += other.trace_simulated
        self.trace_cached += other.trace_cached
        self.failures.extend(other.failures)
        self.planned_points |= other.planned_points
        self.selected_points |= other.selected_points
        self.completed_points |= other.completed_points

    def summary(self) -> str:
        text = (
            f"{self.total} points: {self.completed} characterized, "
            f"{self.cached} cached, {self.failed} failed"
        )
        if self.skipped:
            text += f", {self.skipped} on other point shards"
        if self.evaluated or self.eval_cached:
            text += (
                f"; {self.evaluated} blocks evaluated, "
                f"{self.eval_cached} served from cache"
            )
        if self.trace_simulated or self.trace_cached:
            text += (
                f"; {self.trace_simulated} traces simulated, "
                f"{self.trace_cached} served from cache"
            )
        return text
