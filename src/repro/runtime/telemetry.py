"""Sweep progress telemetry.

Long sweeps should report what happened to every point — characterized,
served from cache, or failed — instead of dying on the first
:class:`~repro.errors.CharacterizationError`.  The executor emits one
:class:`ProgressEvent` per point; :class:`SweepTelemetry` counts them,
logs them on the ``repro.runtime`` logger, and forwards them to an
optional user callback (a progress bar, a dashboard, a CI annotator)
plus any number of attached observers (:meth:`SweepTelemetry.add_observer`
— e.g. the serving layer's SSE bridge).

Counter mutation is guarded by a single lock, so one telemetry value may
be shared by concurrent observers (several threads absorbing worker
results, or a service thread reading counters while a study runs).
Callbacks and observers are invoked *outside* the lock — they may take
their time (or re-enter the telemetry) without stalling emitters.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

logger = logging.getLogger("repro.runtime")

#: Event kinds, in the order a point can experience them.
COMPLETED = "completed"
CACHED = "cached"
FAILED = "failed"
#: A point excluded by this host's point-shard selector: another shard
#: owns it, so it is accounted (for merge verification) but never run.
SKIPPED = "skipped"
#: A point that exhausted its retry budget on transient infrastructure
#: faults (worker crashes, deadline timeouts, injected chaos).  The
#: sweep completed around it; the manifest quarantines it with its
#: captured exception so a later run can re-attempt it.
POISONED = "poisoned"
#: A cache entry that failed integrity verification on load (bad JSON,
#: checksum/fingerprint mismatch) and was moved to quarantine.  The
#: point itself is then recomputed; this event only tracks the damage.
CORRUPT = "corrupt"
#: A transient point failure that is about to be retried with backoff.
RETRIED = "retried"


@dataclass(frozen=True)
class ProgressEvent:
    """One sweep point's outcome."""

    kind: str  # COMPLETED | CACHED | FAILED | SKIPPED | POISONED | CORRUPT | RETRIED
    label: str  # human-readable point label
    index: int  # position in the sweep's deterministic order
    total: int  # points in this phase
    phase: str = "characterize"  # "characterize" | "evaluate" | "trace"
    source: str = ""  # for CACHED: "memory" | "disk"
    error: str = ""  # for FAILED: the error message
    fingerprint: str = ""  # content fingerprint, set under point sharding
    duration_s: float = 0.0  # wall-clock spent computing this point fresh

    def describe(self) -> str:
        extra = ""
        if self.kind == CACHED and self.source:
            extra = f" [{self.source}]"
        elif self.kind in (FAILED, POISONED, RETRIED):
            extra = f": {self.error}"
        elif self.kind == SKIPPED:
            extra = " [other shard]"
        elif self.kind == CORRUPT:
            extra = " [cache entry quarantined]"
        if self.duration_s > 0:
            extra += f" ({self.duration_s:.3f}s)"
        return (
            f"{self.phase} {self.index + 1}/{self.total} "
            f"{self.kind} {self.label}{extra}"
        )

    def to_dict(self) -> dict:
        """JSON-able rendering (the service's SSE payload)."""
        return {
            "kind": self.kind,
            "label": self.label,
            "index": self.index,
            "total": self.total,
            "phase": self.phase,
            "source": self.source,
            "error": self.error,
            "fingerprint": self.fingerprint,
            "duration_s": self.duration_s,
        }


ProgressCallback = Callable[[ProgressEvent], None]

#: Wall-clock accumulator field per event phase (manifest counter names).
_WALL_FIELDS = {
    "characterize": "characterize_wall_s",
    "evaluate": "evaluate_wall_s",
    "trace": "trace_wall_s",
}

#: Integer counter fields, in counters() order.
_COUNTER_FIELDS = (
    "completed", "cached", "failed", "skipped", "evaluated",
    "eval_cached", "eval_skipped", "trace_simulated", "trace_cached",
    "poisoned", "eval_poisoned", "corrupt", "eval_corrupt",
    "trace_corrupt", "retried", "batched",
)


@dataclass
class SweepTelemetry:
    """Aggregates progress events for one sweep run."""

    callback: Optional[ProgressCallback] = None
    completed: int = 0  # characterize-phase points computed fresh
    cached: int = 0  # characterize-phase points served from a cache
    failed: int = 0
    skipped: int = 0  # characterize-phase points owned by another point shard
    evaluated: int = 0  # evaluate-phase (array x traffic) blocks computed fresh
    eval_cached: int = 0  # evaluate-phase blocks served from a cache
    eval_skipped: int = 0  # evaluate-phase blocks owned by another point shard
    trace_simulated: int = 0  # trace-phase LLC regenerations run fresh
    trace_cached: int = 0  # trace-phase regenerations served from a cache
    poisoned: int = 0  # characterize-phase points that exhausted retries
    eval_poisoned: int = 0  # evaluate-phase blocks that exhausted retries
    corrupt: int = 0  # characterize-phase cache entries quarantined on load
    eval_corrupt: int = 0  # evaluate-phase cache entries quarantined on load
    trace_corrupt: int = 0  # trace-phase cache entries quarantined on load
    retried: int = 0  # transient point failures retried (all phases)
    batched: int = 0  # characterize-phase points computed via the batch engine
    #: Wall-clock spent computing fresh (or failing) points, per phase —
    #: the raw data behind cost-balanced shard planning and the service's
    #: per-request latency accounting.
    characterize_wall_s: float = 0.0
    evaluate_wall_s: float = 0.0
    trace_wall_s: float = 0.0
    failures: List[ProgressEvent] = field(default_factory=list)
    #: Point-shard accounting, keyed by content fingerprint.  Populated
    #: only when a sweep runs under a point-shard selector: every sweep
    #: point lands in ``planned_points``, this shard's slice additionally
    #: in ``selected_points``, and successfully characterized points in
    #: ``completed_points`` — the data behind the manifest's point-shard
    #: section and the merge step's exactly-once verification.
    planned_points: set = field(default_factory=set)
    selected_points: set = field(default_factory=set)
    completed_points: set = field(default_factory=set)
    #: Fingerprints quarantined as POISONED (selected but not completed;
    #: the merge step verifies exactly-once-*or-poisoned* coverage).
    poisoned_points: set = field(default_factory=set)
    #: POISONED events with their captured exceptions, for the manifest.
    poisoned_failures: List[ProgressEvent] = field(default_factory=list)
    #: Extra event sinks beyond ``callback`` (see :meth:`add_observer`).
    observers: List[ProgressCallback] = field(
        default_factory=list, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add_observer(self, observer: ProgressCallback) -> None:
        """Attach an additional per-event sink (e.g. an SSE bridge).

        Observers receive every event after the counters update, outside
        the telemetry lock, in attachment order after ``callback``.
        """
        with self._lock:
            self.observers.append(observer)

    def remove_observer(self, observer: ProgressCallback) -> None:
        """Detach an observer added by :meth:`add_observer` (idempotent)."""
        with self._lock:
            if observer in self.observers:
                self.observers.remove(observer)

    def emit(self, event: ProgressEvent) -> None:
        with self._lock:
            self._count(event)
            sinks = list(self.observers)
        if event.kind == FAILED:
            logger.warning("%s", event.describe())
        else:
            logger.debug("%s", event.describe())
        if self.callback is not None:
            self.callback(event)
        for sink in sinks:
            sink(event)

    def _count(self, event: ProgressEvent) -> None:
        """Update counters for one event.  Caller holds the lock."""
        if event.kind == SKIPPED:
            if event.phase == "evaluate":
                self.eval_skipped += 1
            else:
                self.skipped += 1
        elif event.kind == COMPLETED and event.phase == "evaluate":
            self.evaluated += 1
        elif event.kind == CACHED and event.phase == "evaluate":
            self.eval_cached += 1
        elif event.kind == COMPLETED and event.phase == "trace":
            self.trace_simulated += 1
        elif event.kind == CACHED and event.phase == "trace":
            self.trace_cached += 1
        elif event.kind == COMPLETED:
            self.completed += 1
            if event.source == "batch":
                self.batched += 1
        elif event.kind == CACHED:
            self.cached += 1
        elif event.kind == FAILED:
            self.failed += 1
            self.failures.append(event)
        elif event.kind == POISONED:
            if event.phase == "evaluate":
                self.eval_poisoned += 1
            else:
                self.poisoned += 1
            self.poisoned_failures.append(event)
        elif event.kind == CORRUPT:
            if event.phase == "evaluate":
                self.eval_corrupt += 1
            elif event.phase == "trace":
                self.trace_corrupt += 1
            else:
                self.corrupt += 1
        elif event.kind == RETRIED:
            self.retried += 1
        if event.duration_s:
            wall_field = _WALL_FIELDS.get(event.phase)
            if wall_field is not None:
                setattr(
                    self, wall_field,
                    getattr(self, wall_field) + float(event.duration_s),
                )
        if event.fingerprint and event.phase == "characterize":
            self.planned_points.add(event.fingerprint)
            if event.kind != SKIPPED:
                self.selected_points.add(event.fingerprint)
            if event.kind in (COMPLETED, CACHED):
                self.completed_points.add(event.fingerprint)
            if event.kind == POISONED:
                self.poisoned_points.add(event.fingerprint)

    @property
    def total(self) -> int:
        return self.completed + self.cached + self.failed + self.poisoned

    @property
    def fresh_work(self) -> int:
        """Characterizations, evaluation blocks, and trace simulations
        actually computed (as opposed to served from a cache)."""
        return self.completed + self.evaluated + self.trace_simulated

    @property
    def wall_s(self) -> float:
        """Total wall-clock spent on fresh model work, across phases."""
        return self.characterize_wall_s + self.evaluate_wall_s + self.trace_wall_s

    def counters(self) -> dict:
        """The counter fields as a JSON-able dict (manifest payload).

        Integer event counts plus the per-phase wall-clock accumulators
        (floats, ``*_wall_s``).
        """
        with self._lock:
            out: dict = {name: getattr(self, name) for name in _COUNTER_FIELDS}
            for wall_field in _WALL_FIELDS.values():
                out[wall_field] = round(getattr(self, wall_field), 6)
            return out

    @classmethod
    def from_counters(cls, counters) -> "SweepTelemetry":
        """Rebuild aggregate counts from a manifest's counter dict.

        Unknown keys are ignored and missing keys default to zero, so
        manifests from slightly older/newer versions still aggregate.
        """
        telemetry = cls()
        for name in _COUNTER_FIELDS:
            setattr(telemetry, name, int(counters.get(name, 0)))
        for wall_field in _WALL_FIELDS.values():
            setattr(telemetry, wall_field, float(counters.get(wall_field, 0.0)))
        return telemetry

    def absorb(self, other: "SweepTelemetry") -> None:
        """Fold another run's counters into this aggregate.

        ``other`` should be quiescent (its run finished); this aggregate
        may be shared — its own mutation is locked.
        """
        with self._lock:
            for name in _COUNTER_FIELDS:
                setattr(self, name, getattr(self, name) + getattr(other, name))
            for wall_field in _WALL_FIELDS.values():
                setattr(
                    self, wall_field,
                    getattr(self, wall_field) + getattr(other, wall_field),
                )
            self.failures.extend(other.failures)
            self.poisoned_failures.extend(other.poisoned_failures)
            self.planned_points |= other.planned_points
            self.selected_points |= other.selected_points
            self.completed_points |= other.completed_points
            self.poisoned_points |= other.poisoned_points

    def summary(self) -> str:
        text = (
            f"{self.total} points: {self.completed} characterized, "
            f"{self.cached} cached, {self.failed} failed"
        )
        if self.skipped:
            text += f", {self.skipped} on other point shards"
        if self.evaluated or self.eval_cached:
            text += (
                f"; {self.evaluated} blocks evaluated, "
                f"{self.eval_cached} served from cache"
            )
        if self.trace_simulated or self.trace_cached:
            text += (
                f"; {self.trace_simulated} traces simulated, "
                f"{self.trace_cached} served from cache"
            )
        if self.poisoned or self.eval_poisoned:
            text += (
                f"; {self.poisoned + self.eval_poisoned} poisoned "
                f"(retries exhausted)"
            )
        if self.retried:
            text += f"; {self.retried} transient retries"
        if self.corrupt or self.eval_corrupt or self.trace_corrupt:
            text += (
                f"; {self.corrupt + self.eval_corrupt + self.trace_corrupt} "
                f"corrupt cache entries quarantined"
            )
        if self.wall_s > 0:
            text += f"; {self.wall_s:.2f}s model wall-clock"
        return text
