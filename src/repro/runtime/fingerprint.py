"""Stable fingerprints for characterization work.

A sweep point is fully determined by the cell definition plus the array
provisioning knobs (capacity, node, optimization target, access width,
bits per cell).  :func:`point_fingerprint` hashes a canonical JSON
rendering of exactly those inputs, so the same design point gets the same
key across processes, runs, and machines — unlike the identity-based
tuple key the engine used before, which changed whenever the same cell
was reconstructed.

The fingerprint embeds :data:`SCHEMA_TAG`.  Bumping the tag (whenever the
characterization model or the serialized result format changes
incompatibly) reidentifies every point, so stale on-disk entries are
silently invalidated rather than deserialized into wrong results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

from repro.cells.base import CellTechnology
from repro.cells.export import cell_to_dict
from repro.nvsim.result import OptimizationTarget

#: Version tag of the characterization model + cache payload format.
#: Bump whenever either changes in a way that invalidates stored results.
SCHEMA_TAG = "array-cache-v1"

#: Version tag of the cache-simulation model + LLC trace payload format.
#: Bump whenever stream generation or the batch engine changes results.
TRACE_SCHEMA_TAG = "llc-trace-v1"

#: Version tag of the analytical evaluation model + row payload format.
#: Bump whenever :func:`repro.core.metrics.evaluate` or the flattened
#: evaluation-row schema changes in a way that invalidates stored rows.
#: (v2: rows persist with their original key order — cached rows now
#: reproduce fresh runs' CSV column order byte-for-byte; v1 entries
#: stored alphabetized keys and must not be served.)
EVAL_SCHEMA_TAG = "eval-rows-v2"

#: Which source feeds each schema tag — the drift ratchet's ground truth.
#:
#: Maps the tag's constant name to ``(defining_module, source_modules)``.
#: ``source_modules`` are the modules whose code produces the payloads
#: the tag versions: changing any of them without bumping the tag is
#: exactly the silent-cache-corruption bug the tag exists to prevent, so
#: ``repro.analysis.drift`` pins a content digest of each set (committed
#: in ``repro/analysis/drift_pins.json``) and ``nvmexplorer lint`` /
#: ``tests/test_analysis_drift.py`` fail when a set's digest moves while
#: its tag stands still.  A package entry covers every module under it.
#:
#: This module appears in its dependents' sets because the canonical
#: payload builders (:func:`point_payload`, :func:`traffic_entry`, ...)
#: live here: editing them re-pins (or re-tags) everything downstream.
SCHEMA_TAG_SOURCES: Mapping[str, tuple[str, tuple[str, ...]]] = {
    # arrays/ and clouds/ stores: the characterization model.
    "SCHEMA_TAG": (
        "repro.runtime.fingerprint",
        (
            "repro.nvsim",
            "repro.cells.base",
            "repro.cells.export",
            "repro.tech",
            "repro.runtime.fingerprint",
        ),
    ),
    # traces/ store: stream generation + the batch cache simulator.
    "TRACE_SCHEMA_TAG": (
        "repro.runtime.fingerprint",
        ("repro.cachesim", "repro.runtime.fingerprint"),
    ),
    # evaluations/ store: the analytical evaluation + row flattening.
    "EVAL_SCHEMA_TAG": (
        "repro.runtime.fingerprint",
        ("repro.core.metrics", "repro.runtime.fingerprint"),
    ),
    # costs/ store and queue batch/claims payloads.
    "COST_SCHEMA_TAG": (
        "repro.runtime.schedule",
        ("repro.runtime.schedule",),
    ),
    "QUEUE_SCHEMA": (
        "repro.runtime.schedule",
        ("repro.runtime.schedule",),
    ),
    # Shard manifests (resume/merge/fsck all parse them).
    "MANIFEST_SCHEMA": (
        "repro.runtime.shard",
        ("repro.runtime.shard",),
    ),
}


def tag_source_files(
    source_modules: tuple[str, ...],
    package_root: Path = None,
) -> list[Path]:
    """The source files one tag's module set covers, sorted.

    A dotted name resolving to a package directory covers every ``*.py``
    under it recursively; a plain module covers its single file.
    ``package_root`` is the directory containing the ``repro`` package
    (defaults to this installation's).
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parents[2]
    files: set = set()
    for dotted in source_modules:
        relative = Path(*dotted.split("."))
        package_dir = package_root / relative
        module_file = package_root / relative.with_suffix(".py")
        if package_dir.is_dir():
            files.update(sorted(package_dir.rglob("*.py")))
        elif module_file.is_file():
            files.add(module_file)
        else:
            raise FileNotFoundError(
                f"schema-tag source module {dotted!r} not found under "
                f"{package_root}"
            )
    return sorted(files)


def tag_source_digest(
    source_modules: tuple[str, ...],
    package_root: Path = None,
) -> str:
    """Content digest of one tag's module set (mtime-independent).

    Raw bytes participate, like :func:`repro.runtime.shard.source_digest`
    — deliberately stricter than semantic hashing, so even a comment-only
    edit to cache-feeding code forces an explicit re-pin (attesting the
    change is semantics-preserving) or a tag bump.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parents[2]
    digest = hashlib.sha256()
    for path in tag_source_files(source_modules, package_root):
        digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def canonical_json(payload: Any) -> str:
    """Render a JSON-able payload deterministically (sorted keys, no spaces).

    Floats serialize via ``repr``, which is exact and stable across
    platforms for IEEE-754 doubles, so equal inputs always produce equal
    text.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint_payload(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a canonical payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def point_payload(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int,
    target: OptimizationTarget,
    access_bits: int,
    bits_per_cell: int,
    schema_tag: str = SCHEMA_TAG,
) -> dict[str, Any]:
    """The canonical description of one characterization request."""
    return {
        "schema": schema_tag,
        "cell": cell_to_dict(cell),
        "capacity_bytes": int(capacity_bytes),
        "node_nm": int(node_nm),
        "target": target.value,
        "access_bits": int(access_bits),
        "bits_per_cell": int(bits_per_cell),
    }


def point_fingerprint(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int,
    target: OptimizationTarget,
    access_bits: int,
    bits_per_cell: int,
    schema_tag: str = SCHEMA_TAG,
) -> str:
    """Stable content key for one (cell, provisioning) design point."""
    return fingerprint_payload(
        point_payload(
            cell, capacity_bytes, node_nm, target, access_bits, bits_per_cell,
            schema_tag=schema_tag,
        )
    )


def trace_payload(
    workload,
    *,
    n_accesses: int,
    l2_kb: int,
    llc_mb: int,
    instructions_per_access: float,
    clock_hz: float,
    ipc: float,
    seed: int,
    schema_tag: str = TRACE_SCHEMA_TAG,
) -> dict[str, Any]:
    """Canonical description of one LLC-trace regeneration request.

    ``workload`` is a :class:`repro.cachesim.streams.WorkloadModel`; all
    of its parameters plus every simulation knob participate, so any
    change to either reidentifies the trace.
    """
    return {
        "schema": schema_tag,
        "workload": {
            "name": workload.name,
            "working_set_bytes": int(workload.working_set_bytes),
            "write_fraction": float(workload.write_fraction),
            "locality_skew": float(workload.locality_skew),
            "streaming_fraction": float(workload.streaming_fraction),
        },
        "n_accesses": int(n_accesses),
        "l2_kb": int(l2_kb),
        "llc_mb": int(llc_mb),
        "instructions_per_access": float(instructions_per_access),
        "clock_hz": float(clock_hz),
        "ipc": float(ipc),
        "seed": int(seed),
    }


def trace_fingerprint(workload, **kwargs: Any) -> str:
    """Stable content key for one LLC-trace regeneration request."""
    return fingerprint_payload(trace_payload(workload, **kwargs))


def traffic_entry(traffic) -> dict[str, Any]:
    """Canonical description of one :class:`~repro.traffic.TrafficPattern`.

    Every field that influences :func:`repro.core.metrics.evaluate`
    participates (rates, access width, per-task totals), plus the name and
    metadata because they flow into the flattened evaluation rows.
    """
    return {
        "name": traffic.name,
        "reads_per_second": float(traffic.reads_per_second),
        "writes_per_second": float(traffic.writes_per_second),
        "access_bytes": int(traffic.access_bytes),
        "reads_per_task": (
            None if traffic.reads_per_task is None else float(traffic.reads_per_task)
        ),
        "writes_per_task": (
            None if traffic.writes_per_task is None else float(traffic.writes_per_task)
        ),
        "metadata": dict(traffic.metadata),
    }


def evaluation_context(
    traffic,
    *,
    rows_fn_id: str,
    extra: Any = None,
    schema_tag: str = EVAL_SCHEMA_TAG,
) -> str:
    """Digest of the array-independent half of an evaluation key.

    The traffic block, the row builder's identity, its JSON-able
    parameters (``extra``, e.g. write-buffer scenarios), and the metrics
    schema tag are shared by every array of one ``evaluate_blocks`` call
    — hash them once and combine with each array's digest.
    """
    return fingerprint_payload({
        "schema": schema_tag,
        "traffic": [traffic_entry(t) for t in traffic],
        "rows_fn": rows_fn_id,
        "extra": extra,
    })


def evaluation_fingerprint(
    array,
    traffic=None,
    *,
    context: str = None,
    **kwargs: Any,
) -> str:
    """Stable content key for one (array x traffic-block) evaluation.

    ``array`` is keyed by its full characterized content
    (:meth:`~repro.nvsim.result.ArrayCharacterization.to_dict`), not by the
    sweep point that produced it, so any change to the characterization
    model automatically reidentifies every dependent evaluation.  Pass
    either ``traffic`` plus :func:`evaluation_context` keywords, or a
    precomputed ``context`` digest when fingerprinting many arrays
    against the same block.
    """
    if context is None:
        context = evaluation_context(traffic, **kwargs)
    return fingerprint_payload({"context": context, "array": array.to_dict()})
