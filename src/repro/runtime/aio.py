"""Async-safe bridges between asyncio services and the blocking DSE stack.

The engine, the study registry, and the persistent caches are all
synchronous (and fan work out over *process* pools).  A long-lived
asyncio service cannot call them directly without stalling its event
loop, and their telemetry callbacks fire on worker threads, where
touching asyncio state is undefined behavior.  Two small adapters close
the gap:

* :class:`TelemetryBridge` — a thread-safe progress callback that
  forwards every :class:`~repro.runtime.telemetry.ProgressEvent` onto an
  event loop via ``loop.call_soon_threadsafe``, so an async consumer
  (an SSE stream, a live dashboard) observes sweep progress without any
  locking of its own.
* :class:`AsyncStudyRunner` — a bounded thread pool that runs blocking
  study/sweep callables off the loop (``await runner.call(fn, ...)``).
  Each thread may itself fan out over a process pool (the engine's
  ``workers=``); the runner's width bounds how many *studies* are in
  flight concurrently, which is exactly the service's worker-pool knob.

Both are dependency-free (stdlib ``asyncio`` + ``concurrent.futures``)
and usable from any asyncio application, not just :mod:`repro.service`.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.runtime.telemetry import ProgressCallback, ProgressEvent


class TelemetryBridge:
    """Forward telemetry events from worker threads into an event loop.

    ``consumer`` runs on the loop (one call per event, in emission
    order); the returned :attr:`callback` may be handed to any
    ``RuntimeOptions.progress`` / ``SweepTelemetry`` observer and called
    from any thread.  After :meth:`close`, further events are dropped —
    a sweep outliving its subscriber must not crash the loop.
    """

    def __init__(
        self,
        consumer: Callable[[ProgressEvent], None],
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self._consumer = consumer
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._closed = False

    @property
    def callback(self) -> ProgressCallback:
        return self._forward

    def _forward(self, event: ProgressEvent) -> None:
        if self._closed or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._deliver, event)
        except RuntimeError:
            # The loop shut down between the check and the call; the
            # sweep finishing later must not take the worker down.
            self._closed = True

    def _deliver(self, event: ProgressEvent) -> None:
        if not self._closed:
            self._consumer(event)

    def close(self) -> None:
        self._closed = True


class AsyncStudyRunner:
    """Run blocking DSE work on a bounded thread pool, awaitably.

    ``workers`` bounds concurrent blocking calls (one study or sweep
    each); excess calls queue inside the executor.  The runner is the
    async-safe engine wrapper: services submit work with
    ``await runner.call(spec.run, runtime)`` and the loop stays live
    while the study characterizes/evaluates (possibly over its own
    process pool).
    """

    def __init__(self, workers: int = 2) -> None:
        if int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = int(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._closed = False

    async def call(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Any:
        """Await ``fn(*args, **kwargs)`` run on the pool."""
        if self._closed:
            raise RuntimeError("AsyncStudyRunner is closed")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, functools.partial(fn, *args, **kwargs)
        )

    def shutdown(self, wait: bool = True, cancel_pending: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight calls.

        ``cancel_pending`` drops queued-but-unstarted calls (their
        futures raise ``CancelledError``); calls already running always
        finish — the engine's process pools are not interruptible
        mid-characterization.
        """
        self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=cancel_pending)

    @property
    def closed(self) -> bool:
        return self._closed
