"""Chunked parallel execution of sweep work.

Characterizing one design point is independent of every other point, so a
sweep fans out naturally: points are split into chunks (amortizing
pickling and task dispatch over the pool), each chunk runs in a worker
process, and results are reassembled into the sweep's deterministic
order regardless of completion order.  ``workers=1`` bypasses the pool
entirely and runs the identical code path serially, so parallel and
serial sweeps produce identical results by construction.

Worker failures are data, not crashes: a point whose characterization
raises a framework error comes back as a failure record, and the caller
decides (via ``on_error``) whether to abort the sweep or skip the point
and keep going.  Infrastructure faults — a crashed worker process, a
stuck point, a transiently failing dependency — are absorbed by the
resilience layer (:mod:`repro.runtime.resilience`): pools are rebuilt,
transient failures retried with backoff, and points that exhaust their
retry budget are quarantined as ``POISONED`` while the sweep completes
around them.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import math
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.cells.base import CellTechnology
from repro.errors import (
    CharacterizationError,
    EvaluationError,
    ExecutionError,
    PoisonedPointError,
    ReproError,
    TransientError,
)
from repro.nvsim import characterize
from repro.nvsim.characterize import warm_lanes
from repro.nvsim.result import ArrayCharacterization, OptimizationTarget
from repro.runtime.cache import CharacterizationCache, EvaluationCache
from repro.runtime.chaos import ChaosOptions
from repro.runtime.fingerprint import (
    SCHEMA_TAG,
    evaluation_context,
    evaluation_fingerprint,
    point_fingerprint,
)
from repro.runtime.resilience import RetryPolicy, run_resilient
from repro.runtime.schedule import (
    CostLedger,
    WorkQueue,
    evaluation_features,
    plan_balanced,
    point_features,
)
from repro.runtime.shard import PointShard
from repro.runtime.telemetry import (
    CACHED,
    COMPLETED,
    CORRUPT,
    FAILED,
    POISONED,
    RETRIED,
    SKIPPED,
    ProgressEvent,
    SweepTelemetry,
)

#: Target number of chunks per worker; >1 so a slow chunk doesn't leave
#: the rest of the pool idle at the tail of the sweep.
_CHUNKS_PER_WORKER = 4

#: How many times :func:`parallel_map` rebuilds a crashed pool before
#: concluding the failure is not transient.
_MAX_POOL_REBUILDS = 3


@dataclass(frozen=True)
class SweepPoint:
    """One characterization request: a cell plus its array provisioning."""

    cell: CellTechnology
    capacity_bytes: int
    node_nm: int
    target: OptimizationTarget
    access_bits: int = 64
    bits_per_cell: int = 1

    @property
    def label(self) -> str:
        mb = self.capacity_bytes / (1024 * 1024)
        return f"{self.cell.name}@{mb:g}MB/{self.target.value}"

    def fingerprint(self, schema_tag: str = SCHEMA_TAG) -> str:
        return point_fingerprint(
            self.cell,
            self.capacity_bytes,
            self.node_nm,
            self.target,
            self.access_bits,
            self.bits_per_cell,
            schema_tag=schema_tag,
        )

    def characterize(self) -> ArrayCharacterization:
        return characterize(
            self.cell,
            self.capacity_bytes,
            node_nm=self.node_nm,
            optimization_target=self.target,
            access_bits=self.access_bits,
            bits_per_cell=self.bits_per_cell,
        )


def sweep_points(spec) -> List[SweepPoint]:
    """Expand a :class:`~repro.core.engine.SweepSpec` into ordered points.

    The order matches the engine's historical serial iteration (cell,
    capacity, target), which fixes the row order of every result table.
    """
    points: List[SweepPoint] = []
    for cell in spec.cells:
        node = spec.node_nm
        if not cell.tech_class.is_nonvolatile:
            node = spec.sram_node_nm
        for capacity in spec.capacities_bytes:
            for target in spec.optimization_targets:
                points.append(
                    SweepPoint(
                        cell=cell,
                        capacity_bytes=capacity,
                        node_nm=node,
                        target=target,
                        access_bits=spec.access_bits,
                        bits_per_cell=spec.bits_per_cell,
                    )
                )
    return points


# --- generic chunked map ---------------------------------------------------


def _chunked(
    indexed: Sequence[Tuple[int, Any]], chunksize: int
) -> List[List[Tuple[int, Any]]]:
    return [
        list(indexed[start : start + chunksize])
        for start in range(0, len(indexed), chunksize)
    ]


def _default_chunksize(n_items: int, workers: int) -> int:
    return max(1, math.ceil(n_items / (workers * _CHUNKS_PER_WORKER)))


def _apply_chunk(payload):
    """Pool worker: apply ``fn`` to every indexed item of one chunk."""
    fn, chunk = payload
    return [(index, fn(item)) for index, item in chunk]


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: int = 1,
    chunksize: Optional[int] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Order-preserving map over a process pool.

    ``fn`` must be a picklable module-level callable.  With ``workers=1``
    (or a single item) this is a plain in-process loop.  ``on_result`` is
    called in the parent process as each item finishes — in completion
    order, not item order — for live progress reporting.

    A crashed worker (``BrokenProcessPool``) does not kill the map: the
    pool is rebuilt and only the chunks whose results were lost are
    re-dispatched (``fn`` must therefore be effectively idempotent — true
    for the pure model functions this runs).  Rebuilds are bounded; a
    pool that keeps dying raises :class:`~repro.errors.ExecutionError`.
    """
    materialized = list(items)
    if workers <= 1 or len(materialized) <= 1:
        results = []
        for index, item in enumerate(materialized):
            value = fn(item)
            results.append(value)
            if on_result is not None:
                on_result(index, value)
        return results
    chunksize = chunksize or _default_chunksize(len(materialized), workers)
    pending_chunks = _chunked(list(enumerate(materialized)), chunksize)
    results: List[Any] = [None] * len(materialized)
    rebuilds = 0
    while pending_chunks:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(pending_chunks)))
        futures = {
            pool.submit(_apply_chunk, (fn, chunk)): chunk for chunk in pending_chunks
        }
        done_ids: set = set()
        broken = False
        try:
            for future in as_completed(futures):
                try:
                    records = future.result()
                except BrokenProcessPool:
                    # The pool is dead but keep draining: chunks that
                    # finished before the crash still have results to
                    # salvage, and the rest fail fast with this error.
                    broken = True
                    continue
                done_ids.add(id(futures[future]))
                for index, value in records:
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
        except BaseException:
            # Cancel-on-error, matching characterize_points/evaluate_blocks:
            # a failing chunk must not leave the rest of the pool grinding
            # through work whose results will never be consumed.
            for future in futures:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        if not broken:
            pool.shutdown(wait=True)
            break
        pool.shutdown(wait=False, cancel_futures=True)
        rebuilds += 1
        if rebuilds > _MAX_POOL_REBUILDS:
            raise ExecutionError(
                f"process pool died {rebuilds} times running {fn!r}; giving up"
            )
        pending_chunks = [c for c in pending_chunks if id(c) not in done_ids]
    return results


# --- characterization fan-out ---------------------------------------------


def _characterize_point(point: SweepPoint) -> ArrayCharacterization:
    """Picklable task body for the resilient characterization fan-out."""
    return point.characterize()


@dataclass(frozen=True)
class _CharacterizationBatch:
    """Pending points sharing (cell, node, access width, bits/cell).

    Executed as ONE resilient task: the members' candidate-organization
    spaces are evaluated as a single array program on the batch engine
    (:func:`repro.nvsim.characterize.warm_lanes`), then each member picks
    its winner from the shared lanes.  Member outcomes are data — model
    errors and chaos poison are captured per member, so the distributed
    result (telemetry events, cache writes, poison quarantine) is
    indistinguishable from running the points individually.
    """

    points: Tuple[SweepPoint, ...]
    fingerprints: Tuple[str, ...]
    chaos: Optional[ChaosOptions]

    #: The resilience layer gates its group-key poison roll on this flag:
    #: batch members roll poison per point fingerprint inside the task
    #: body instead, keeping the poisoned set identical to unbatched runs.
    chaos_poison_inline = True


_POISON_MESSAGE = "chaos: injected persistent infrastructure fault"


def _characterize_batch(batch: _CharacterizationBatch) -> List[Tuple[str, Any]]:
    """Task body for one batch: per-member (status, payload) records.

    Transient faults (including chaos worker errors rolled on the group
    key) propagate and retry the whole group — the task is idempotent, so
    that only costs wall-clock.
    """
    requests = []
    seen = set()
    for point in batch.points:
        key = (
            point.cell, point.capacity_bytes, point.node_nm,
            point.access_bits, point.bits_per_cell,
        )
        if key not in seen:
            seen.add(key)
            requests.append(key)
    try:
        warm_lanes(requests)
    except ReproError:
        # A member's request is broken (bad node, infeasible space...).
        # Fall through: each member re-raises its own error below with
        # per-point context, exactly as the unbatched path reports it.
        pass
    outcomes: List[Tuple[str, Any]] = []
    for point, fingerprint in zip(batch.points, batch.fingerprints):
        if batch.chaos is not None and batch.chaos.rolls_poison(fingerprint):
            outcomes.append(("poisoned", _POISON_MESSAGE))
            continue
        try:
            value = point.characterize()
        except TransientError:
            raise
        except ReproError as exc:
            outcomes.append(("failed", str(exc)))
        else:
            outcomes.append(("ok", value))
    return outcomes


def _characterize_task(item) -> Any:
    """Picklable dispatcher: single point or batched group."""
    if isinstance(item, _CharacterizationBatch):
        return _characterize_batch(item)
    return item.characterize()


def characterize_points(
    points: Sequence[SweepPoint],
    *,
    workers: int = 1,
    cache: Optional[CharacterizationCache] = None,
    memory: Optional[dict] = None,
    on_error: str = "raise",
    telemetry: Optional[SweepTelemetry] = None,
    chunksize: Optional[int] = None,
    point_shard: Optional[PointShard] = None,
    retry: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosOptions] = None,
    ledger: Optional[CostLedger] = None,
    schedule: str = "fingerprint",
    queue: Optional[WorkQueue] = None,
    track_fingerprints: bool = False,
) -> List[Optional[ArrayCharacterization]]:
    """Characterize every point, in order, using every cache available.

    Returns one entry per point: the characterization, or ``None`` for a
    point that failed under ``on_error="skip"``.  Lookup order is the
    in-process ``memory`` dict, then the on-disk ``cache``; fresh results
    are written back to both.  Duplicate points are characterized once.

    An active ``point_shard`` restricts the work to this host's
    deterministic slice of the point space: a point whose content
    fingerprint lands on another shard is returned as ``None`` without
    touching any cache, and is reported through telemetry as a
    ``skipped`` event carrying the fingerprint — the accounting behind
    the run manifest's point-shard section and the merge step's
    exactly-once verification.

    ``retry`` (default :class:`~repro.runtime.resilience.RetryPolicy`)
    governs transient-failure handling: worker crashes, deadline
    timeouts, and :class:`~repro.errors.TransientError` are retried with
    backoff, and a point that exhausts its budget is reported as a
    ``poisoned`` event (raising :class:`~repro.errors.PoisonedPointError`
    under ``on_error="raise"``).  ``chaos`` deterministically injects
    faults for resilience testing.

    Elastic scheduling (:mod:`repro.runtime.schedule`): with a
    ``ledger``, every fresh characterization's wall-clock is recorded as
    a cost observation (cache hits are never recorded — their zero
    durations would poison the model).  ``schedule="balanced"`` replaces
    the round-robin ``point_shard`` with a cost-balanced LPT plan over
    the ledger's predictions; with an empty ledger the plan degrades to
    exactly the round-robin partition.  A ``queue`` switches to the
    pull-based lease mode: the static selector is ignored and this
    worker leases point batches from the shared queue until the topic
    drains.  ``track_fingerprints`` forces fingerprints onto telemetry
    events even without a selector (queue mode's accounting).
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    telemetry = telemetry if telemetry is not None else SweepTelemetry()
    memory = memory if memory is not None else {}
    total = len(points)
    results: List[Optional[ArrayCharacterization]] = [None] * total
    fingerprints: List[str] = [point.fingerprint() for point in points]
    if queue is not None:
        return _characterize_queue(
            points,
            fingerprints,
            queue=queue,
            workers=workers,
            cache=cache,
            memory=memory,
            on_error=on_error,
            telemetry=telemetry,
            chunksize=chunksize,
            retry=retry,
            chaos=chaos,
            ledger=ledger,
        )
    selector = (
        point_shard
        if point_shard is not None and not point_shard.is_whole_space
        else None
    )
    if selector is not None and schedule == "balanced":
        requests: dict[str, dict] = {}
        for index, fp in enumerate(fingerprints):
            if fp not in requests:
                requests[fp] = point_features(points[index])
        costs = (
            ledger.costs_for("characterize", requests)
            if ledger is not None
            else None
        )
        selector = plan_balanced(
            selector.index, selector.count, fingerprints, costs=costs
        )

    def _event_fp(fp: str) -> str:
        # Fingerprints ride on events only under point sharding (or when
        # queue mode forces tracking), where downstream consumers need
        # them for partition accounting.
        return fp if selector is not None or track_fingerprints else ""

    pending_by_fp: dict[str, List[int]] = {}
    for index, point in enumerate(points):
        fp = fingerprints[index]
        if selector is not None and not selector.selects(fp):
            telemetry.emit(ProgressEvent(
                SKIPPED, point.label, index, total, fingerprint=fp))
            continue
        if fp in memory:
            results[index] = memory[fp]
            telemetry.emit(ProgressEvent(
                CACHED, point.label, index, total, source="memory",
                fingerprint=_event_fp(fp)))
            continue
        if fp in pending_by_fp:
            pending_by_fp[fp].append(index)
            continue
        corrupt_before = cache.corrupt if cache is not None else 0
        array = cache.load(fp) if cache is not None else None
        if cache is not None and cache.corrupt > corrupt_before:
            # The loader quarantined a damaged entry; the point is
            # recomputed below, this event only makes the damage visible.
            telemetry.emit(ProgressEvent(
                CORRUPT, point.label, index, total, source="disk",
                fingerprint=_event_fp(fp)))
        if array is not None:
            memory[fp] = array
            results[index] = array
            telemetry.emit(ProgressEvent(
                CACHED, point.label, index, total, source="disk",
                fingerprint=_event_fp(fp)))
            continue
        pending_by_fp[fp] = [index]

    def _record_success(
        first_index: int, array: ArrayCharacterization,
        duration_s: float = 0.0, source: str = "",
    ) -> None:
        fp = fingerprints[first_index]
        memory[fp] = array
        if cache is not None:
            cache.store(fp, array)
        if ledger is not None:
            # Only fresh work reaches this path, and observe() itself
            # drops non-positive durations — cache hits can never fold
            # zeros into the cost model.
            ledger.observe(fp, point_features(points[first_index]), duration_s)
        for nth, index in enumerate(pending_by_fp[fp]):
            results[index] = array
            kind = COMPLETED if nth == 0 else CACHED
            telemetry.emit(ProgressEvent(
                kind, points[index].label, index, total,
                source=source if nth == 0 else "memory",
                fingerprint=_event_fp(fp),
                duration_s=duration_s if nth == 0 else 0.0))

    def _record_failure(
        first_index: int, message: str, duration_s: float = 0.0
    ) -> None:
        fp = fingerprints[first_index]
        for nth, index in enumerate(pending_by_fp[fp]):
            telemetry.emit(ProgressEvent(
                FAILED, points[index].label, index, total, error=message,
                fingerprint=_event_fp(fp),
                duration_s=duration_s if nth == 0 else 0.0))
        if on_error == "raise":
            raise CharacterizationError(
                f"{points[first_index].label}: {message}")

    def _record_poisoned(
        first_index: int, message: str, duration_s: float, attempts: int
    ) -> None:
        fp = fingerprints[first_index]
        for nth, index in enumerate(pending_by_fp[fp]):
            telemetry.emit(ProgressEvent(
                POISONED, points[index].label, index, total, error=message,
                fingerprint=_event_fp(fp),
                duration_s=duration_s if nth == 0 else 0.0))
        if on_error == "raise":
            raise PoisonedPointError(
                f"{points[first_index].label}: poisoned after "
                f"{attempts} attempts: {message}")

    # A point that exhausts retries reports the policy's full budget;
    # inline-poisoned batch members report the same number so poisoned
    # messages are identical whether the point ran batched or alone.
    max_attempts = (retry if retry is not None else RetryPolicy()).max_attempts

    def _on_outcome(outcome) -> None:
        members = batch_members.get(outcome.key)
        if members is not None:
            share = outcome.duration_s / len(members)
            if outcome.status == "ok":
                for fp, (status, payload) in zip(members, outcome.value):
                    first_index = pending_by_fp[fp][0]
                    if status == "ok":
                        _record_success(first_index, payload, share, source="batch")
                    elif status == "failed":
                        _record_failure(first_index, payload, share)
                    else:
                        # The poison fault is deterministic and
                        # attempt-independent: run singly, this point
                        # would have burned its whole retry budget on the
                        # same error.  Emit the equivalent RETRIED events
                        # so batched and unbatched telemetry agree.
                        for _ in range(max_attempts - 1):
                            _on_retry(fp, 0, payload)
                        _record_poisoned(first_index, payload, share, max_attempts)
            elif outcome.status == "failed":
                for fp in members:
                    _record_failure(
                        pending_by_fp[fp][0], outcome.error, share)
            else:
                for fp in members:
                    _record_poisoned(
                        pending_by_fp[fp][0], outcome.error, share,
                        outcome.attempts)
            return
        first_index = pending_by_fp[outcome.key][0]
        if outcome.status == "ok":
            _record_success(first_index, outcome.value, outcome.duration_s)
        elif outcome.status == "failed":
            _record_failure(first_index, outcome.error, outcome.duration_s)
        else:
            _record_poisoned(
                first_index, outcome.error, outcome.duration_s, outcome.attempts)

    def _on_retry(key: str, attempt: int, error: str) -> None:
        members = batch_members.get(key)
        fp = members[0] if members is not None else key
        first_index = pending_by_fp[fp][0]
        telemetry.emit(ProgressEvent(
            RETRIED, points[first_index].label, first_index, total,
            error=error, fingerprint=_event_fp(fp)))

    # Batch fast path: pending points sharing (cell, node, access width,
    # bits/cell) characterize as ONE array program instead of N scalar
    # sweeps.  Singleton groups keep the legacy per-point task shape.
    groups: dict[Tuple, List[str]] = {}
    for fp, indices in pending_by_fp.items():
        point = points[indices[0]]
        groups.setdefault(
            (point.cell, point.node_nm, point.access_bits, point.bits_per_cell),
            [],
        ).append(fp)
    tasks: List[Tuple[str, Any]] = []
    batch_members: dict[str, Tuple[str, ...]] = {}
    for member_fps in groups.values():
        if len(member_fps) < 2:
            fp = member_fps[0]
            tasks.append((fp, points[pending_by_fp[fp][0]]))
            continue
        key = "batch:" + hashlib.sha256(
            "\n".join(member_fps).encode("utf-8")
        ).hexdigest()
        batch_members[key] = tuple(member_fps)
        tasks.append((key, _CharacterizationBatch(
            points=tuple(points[pending_by_fp[fp][0]] for fp in member_fps),
            fingerprints=tuple(member_fps),
            chaos=chaos,
        )))
    if tasks:
        run_resilient(
            tasks,
            _characterize_task,
            workers=workers,
            policy=retry,
            chaos=chaos,
            chunksize=chunksize or _default_chunksize(len(tasks), workers),
            on_outcome=_on_outcome,
            on_retry=_on_retry,
        )
    return results


def _characterize_queue(
    points: Sequence[SweepPoint],
    fingerprints: Sequence[str],
    *,
    queue: WorkQueue,
    workers: int,
    cache: Optional[CharacterizationCache],
    memory: dict,
    on_error: str,
    telemetry: SweepTelemetry,
    chunksize: Optional[int],
    retry: Optional[RetryPolicy],
    chaos: Optional[ChaosOptions],
    ledger: Optional[CostLedger],
) -> List[Optional[ArrayCharacterization]]:
    """Pull-based characterization: lease point batches until drained.

    The planned point set is published (idempotently) as one queue
    topic, so every consumer of the same sweep meets on the same batch
    files with no coordination.  This worker first *replays* the batches
    its durable claims file says it completed in a prior (crashed or
    interrupted) run — cache hits that re-emit the telemetry accounting
    its manifest needs — then leases fresh batches, heartbeating each
    lease while the points characterize through the normal cached path.
    A batch that errors out is released back to pending; a lease that
    expired mid-work raises :class:`~repro.runtime.schedule.\
    QueueLeaseLost` rather than risk double-counted points.

    Points this worker never processed are reported as ``skipped``
    events carrying their fingerprints — exactly like points owned by
    another static shard — so the manifest's exactly-once merge
    verification works unchanged across all consumers.
    """
    total = len(points)
    results: List[Optional[ArrayCharacterization]] = [None] * total
    indices_by_fp: dict[str, List[int]] = {}
    for index, fp in enumerate(fingerprints):
        indices_by_fp.setdefault(fp, []).append(index)
    ordered = list(dict.fromkeys(fingerprints))
    topic = queue.publish(ordered)

    def _run_subset(subset: Sequence[str]) -> None:
        sub_points = [points[indices_by_fp[fp][0]] for fp in subset]
        sub_results = characterize_points(
            sub_points,
            workers=workers,
            cache=cache,
            memory=memory,
            on_error=on_error,
            telemetry=telemetry,
            chunksize=chunksize,
            retry=retry,
            chaos=chaos,
            ledger=ledger,
            track_fingerprints=True,
        )
        for fp, array in zip(subset, sub_results):
            for index in indices_by_fp[fp]:
                results[index] = array

    processed: set = set()
    replay = [fp for fp in queue.claimed_points(topic) if fp in indices_by_fp]
    if replay:
        _run_subset(replay)
        processed.update(replay)
    while True:
        batch = queue.lease(topic)
        if batch is None:
            if queue.drained(topic):
                break
            # Everything leasable is held by a live worker; wait for it
            # to finish or for its lease to expire (bounded by expiry).
            time.sleep(queue.poll_s)
            continue
        todo = [
            fp
            for fp in batch.fingerprints
            if fp in indices_by_fp and fp not in processed
        ]
        try:
            with queue.heartbeating(batch):
                if todo:
                    _run_subset(todo)
        except BaseException:
            queue.release(batch)
            raise
        queue.complete(batch)
        processed.update(batch.fingerprints)
    for fp in ordered:
        if fp in processed:
            continue
        for index in indices_by_fp[fp]:
            telemetry.emit(ProgressEvent(
                SKIPPED, points[index].label, index, total, fingerprint=fp))
    return results


# --- (array x traffic) evaluation fan-out -----------------------------------


def rows_fn_id(rows_fn) -> str:
    """Stable identity of a block evaluator, for cache fingerprints."""
    return f"{rows_fn.__module__}:{rows_fn.__qualname__}"


def _apply_rows_fn(rows_fn, traffic, extra, array):
    """Picklable task body for the resilient evaluation fan-out."""
    return rows_fn(array, traffic, extra)


def evaluate_blocks(
    arrays: Sequence[ArrayCharacterization],
    traffic: Sequence,
    *,
    rows_fn: Optional[Callable] = None,
    extra: Any = None,
    workers: int = 1,
    cache: Optional[EvaluationCache] = None,
    memory: Optional[dict] = None,
    telemetry: Optional[SweepTelemetry] = None,
    chunksize: Optional[int] = None,
    point_shard: Optional[PointShard] = None,
    retry: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosOptions] = None,
    ledger: Optional[CostLedger] = None,
) -> List[Optional[List[dict]]]:
    """Evaluate every array under the whole traffic block, in order.

    Returns one list of flattened result rows per array.  ``rows_fn``
    (default :func:`repro.core.metrics.evaluation_rows`) must be a
    picklable module-level callable ``(array, traffic, extra) -> rows``;
    ``extra`` carries its JSON-able parameters and participates in the
    cache key.  Lookup order mirrors :func:`characterize_points`: the
    in-process ``memory`` dict, then the on-disk ``cache``; fresh blocks
    are written back to both.  Returned rows are deep copies, so callers
    may annotate them — including nested values — without corrupting the
    in-memory memo or the persisted cache entries.

    An active ``point_shard`` restricts the work to this host's slice of
    the (array x traffic-block) space by evaluation fingerprint: blocks
    owned by another shard come back as ``None`` (reported as
    ``skipped`` evaluate-phase telemetry).  Sweeps sharded at the
    characterization level should *not* shard evaluation again — the
    surviving arrays already are this shard's slice.
    """
    if rows_fn is None:
        # Imported lazily: repro.core builds on this module, so a
        # module-level import of the default evaluator would be circular.
        from repro.core.metrics import evaluation_rows

        rows_fn = evaluation_rows
    traffic = tuple(traffic)
    telemetry = telemetry if telemetry is not None else SweepTelemetry()
    memory = memory if memory is not None else {}
    selector = (
        point_shard
        if point_shard is not None and not point_shard.is_whole_space
        else None
    )
    fn_id = rows_fn_id(rows_fn)
    total = len(arrays)
    results: List[Optional[List[dict]]] = [None] * total

    def _emit(
        kind: str, index: int, source: str = "", fp: str = "",
        duration_s: float = 0.0,
    ) -> None:
        telemetry.emit(ProgressEvent(
            kind, arrays[index].label, index, total,
            phase="evaluate", source=source,
            fingerprint=fp if selector is not None else "",
            duration_s=duration_s,
        ))

    context = evaluation_context(traffic, rows_fn_id=fn_id, extra=extra)
    pending_by_fp: dict[str, List[int]] = {}
    fingerprints: List[str] = []
    for index, array in enumerate(arrays):
        fp = evaluation_fingerprint(array, context=context)
        fingerprints.append(fp)
        if selector is not None and not selector.selects(fp):
            _emit(SKIPPED, index, fp=fp)
            continue
        if fp in memory:
            results[index] = memory[fp]
            _emit(CACHED, index, source="memory", fp=fp)
            continue
        if fp in pending_by_fp:
            pending_by_fp[fp].append(index)
            continue
        corrupt_before = cache.corrupt if cache is not None else 0
        rows = cache.load(fp) if cache is not None else None
        if cache is not None and cache.corrupt > corrupt_before:
            _emit(CORRUPT, index, source="disk", fp=fp)
        if rows is not None:
            memory[fp] = rows
            results[index] = rows
            _emit(CACHED, index, source="disk", fp=fp)
            continue
        pending_by_fp[fp] = [index]

    def _record(first_index: int, rows: List[dict], duration_s: float = 0.0) -> None:
        fp = fingerprints[first_index]
        memory[fp] = rows
        if cache is not None:
            cache.store(fp, rows)
        if ledger is not None:
            ledger.observe(
                fp,
                evaluation_features(arrays[first_index], len(traffic)),
                duration_s,
                phase="evaluate",
            )
        for nth, index in enumerate(pending_by_fp[fp]):
            results[index] = rows
            _emit(COMPLETED if nth == 0 else CACHED, index,
                  source="" if nth == 0 else "memory", fp=fp,
                  duration_s=duration_s if nth == 0 else 0.0)

    def _on_outcome(outcome) -> None:
        first_index = pending_by_fp[outcome.key][0]
        if outcome.status == "ok":
            _record(first_index, outcome.value, outcome.duration_s)
        elif outcome.status == "failed":
            # Deterministic evaluation failures keep their historical
            # semantics: they propagate (there is no on_error knob here).
            raise EvaluationError(
                f"{arrays[first_index].label}: {outcome.error}")
        else:
            # Transient infrastructure faults exhausted the retry budget:
            # quarantine the block and complete the sweep around it.
            for nth, index in enumerate(pending_by_fp[outcome.key]):
                _emit(POISONED, index, fp=outcome.key,
                      duration_s=outcome.duration_s if nth == 0 else 0.0)

    def _on_retry(key: str, attempt: int, error: str) -> None:
        first_index = pending_by_fp[key][0]
        telemetry.emit(ProgressEvent(
            RETRIED, arrays[first_index].label, first_index, total,
            phase="evaluate", error=error,
            fingerprint=key if selector is not None else ""))

    tasks = [(fp, arrays[indices[0]]) for fp, indices in pending_by_fp.items()]
    if tasks:
        run_resilient(
            tasks,
            functools.partial(_apply_rows_fn, rows_fn, traffic, extra),
            workers=workers,
            policy=retry,
            chaos=chaos,
            chunksize=chunksize or _default_chunksize(len(tasks), workers),
            on_outcome=_on_outcome,
            on_retry=_on_retry,
        )
    # Deep-copy at the memo boundary: a shallow per-row dict() copy would
    # still alias nested mutable values (lists, dicts) with the in-memory
    # memo and the block handed to the persistent cache, so annotating a
    # returned row could silently corrupt every later cache hit.
    return [copy.deepcopy(rows) for rows in results]
