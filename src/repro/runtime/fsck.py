"""Cache and manifest integrity audit — the ``nvmexplorer fsck`` command.

A cache directory accumulates damage the sweeps themselves only detect
lazily: entries truncated by a crashed writer, bit-flips from a bad
disk, stale ``*.tmp.*`` files leaked by a run that died between write
and rename, and a ``quarantine/`` backlog of entries the loaders moved
aside.  ``fsck`` makes that state explicit and repairs what it can:

- verifies every entry's JSON shape, recorded fingerprint (must match
  its filename), and content checksum (entries predating checksums are
  reported as *legacy* but kept);
- moves entries that fail verification to ``<store>/quarantine/``,
  exactly like the runtime loaders do — never deleted, never silently
  overwritten;
- sweeps stale ``*.tmp.*`` files;
- optionally re-materializes missing entries from a sibling cache dir
  (``--repair-from``): any fingerprint present and valid in the sibling
  but absent here is copied in — including fingerprints stranded in
  quarantine;
- audits run manifests (``--manifest``): the manifest must parse and
  every recorded artifact must exist on disk.

Exit status: 0 when every store verified clean (a non-empty quarantine
backlog alone is *not* dirty — it is an archive), 1 when this pass
found corruption or unrepaired damage.  Running fsck twice therefore
converges: the second pass exits 0.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runtime.cache import QUARANTINE_SUBDIR, _tmp_path_for
from repro.runtime.fingerprint import canonical_json
from repro.runtime.shard import RunManifest

__all__ = ["FsckReport", "fsck_store", "fsck_cache_dir", "fsck_manifest", "main"]

#: Store subdirectories fsck knows about inside a unified cache root.
_KNOWN_STORES = ("arrays", "evaluations", "traces", "clouds", "costs")


@dataclass
class FsckReport:
    """What one pass over one store found (and fixed)."""

    root: Path
    scanned: int = 0
    ok: int = 0
    legacy: int = 0  # valid entries written before checksums existed
    corrupt: int = 0  # entries quarantined by this pass
    repaired: int = 0  # entries re-materialized from the sibling cache
    swept_tmp: int = 0  # stale *.tmp.* files removed
    quarantine_backlog: int = 0  # files sitting in quarantine/ after the pass
    problems: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when this pass found no damage (backlog is an archive)."""
        return self.corrupt == 0 and not self.problems

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "scanned": self.scanned,
            "ok": self.ok,
            "legacy": self.legacy,
            "corrupt": self.corrupt,
            "repaired": self.repaired,
            "swept_tmp": self.swept_tmp,
            "quarantine_backlog": self.quarantine_backlog,
            "problems": list(self.problems),
        }

    def summary(self) -> str:
        text = (
            f"{self.root}: {self.scanned} entries scanned, {self.ok} ok, "
            f"{self.corrupt} corrupt"
        )
        if self.legacy:
            text += f", {self.legacy} legacy (no checksum)"
        if self.repaired:
            text += f", {self.repaired} repaired"
        if self.swept_tmp:
            text += f", {self.swept_tmp} stale tmp files swept"
        if self.quarantine_backlog:
            text += f", {self.quarantine_backlog} in quarantine"
        return text


def _entry_fingerprint(path: Path) -> str:
    """The fingerprint a store file claims via its name.

    Quarantined copies may carry a uniquifying suffix
    (``<fp>.json.<n>``), so take everything before the first ``.json``.
    """
    return path.name.split(".json", 1)[0]


def _verify_entry(path: Path) -> tuple[str, str]:
    """Verify one entry file.

    Returns ``(status, reason)`` with status ``"ok"``, ``"legacy"`` (valid
    but checksum-less), or ``"corrupt"``.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, UnicodeDecodeError):
        return "corrupt", "unreadable or undecodable bytes"
    except json.JSONDecodeError:
        return "corrupt", "invalid JSON"
    if not isinstance(payload, dict):
        return "corrupt", "payload is not an object"
    if "schema" not in payload or "result" not in payload:
        return "corrupt", "missing schema/result fields"
    stored_fp = payload.get("fingerprint")
    if stored_fp is not None and stored_fp != _entry_fingerprint(path):
        return "corrupt", "recorded fingerprint does not match filename"
    checksum = payload.get("checksum")
    if checksum is None:
        return "legacy", "entry predates content checksums"
    actual = hashlib.sha256(
        canonical_json(payload["result"]).encode("utf-8")
    ).hexdigest()
    if checksum != actual:
        return "corrupt", "checksum mismatch"
    return "ok", ""


def _quarantine_entry(root: Path, path: Path) -> None:
    qdir = root / QUARANTINE_SUBDIR
    qdir.mkdir(parents=True, exist_ok=True)
    dest = qdir / path.name
    suffix = 0
    while dest.exists():
        suffix += 1
        dest = qdir / f"{path.name}.{suffix}"
    os.replace(path, dest)


def fsck_store(
    root: Union[str, Path],
    *,
    repair_from: Optional[Union[str, Path]] = None,
) -> FsckReport:
    """Audit (and repair) one content-addressed store directory."""
    root = Path(root)
    report = FsckReport(root=root)
    if not root.is_dir():
        report.problems.append(f"{root} is not a directory")
        return report

    for stale in sorted(root.glob("??/*.tmp.*")):
        stale.unlink(missing_ok=True)
        report.swept_tmp += 1

    for entry in sorted(root.glob("??/*.json")):
        report.scanned += 1
        status, reason = _verify_entry(entry)
        if status == "corrupt":
            report.corrupt += 1
            report.problems.append(f"{entry.relative_to(root)}: {reason}")
            _quarantine_entry(root, entry)
        elif status == "legacy":
            report.legacy += 1
            report.ok += 1
        else:
            report.ok += 1

    if repair_from is not None:
        sibling = Path(repair_from)
        # Re-materialize every fingerprint we lack (including those this
        # or earlier passes quarantined) from a valid sibling entry.
        missing: Dict[str, Path] = {}
        qdir = root / QUARANTINE_SUBDIR
        if qdir.is_dir():
            # Sorted so the fingerprint -> exemplar-file choice (and with
            # it the report) is stable across filesystems.
            for damaged in sorted(qdir.iterdir()):
                fp = _entry_fingerprint(damaged)
                if fp:
                    missing.setdefault(fp, damaged)
        for fp in sorted(missing):
            target = root / fp[:2] / f"{fp}.json"
            if target.exists():
                continue
            source = sibling / fp[:2] / f"{fp}.json"
            if not source.exists():
                continue
            if _verify_entry(source)[0] == "corrupt":
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = _tmp_path_for(target)
            try:
                tmp.write_bytes(source.read_bytes())
                os.replace(tmp, target)
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
            report.repaired += 1

    qdir = root / QUARANTINE_SUBDIR
    if qdir.is_dir():
        report.quarantine_backlog = len(list(qdir.iterdir()))
    return report


def fsck_cache_dir(
    cache_dir: Union[str, Path],
    *,
    repair_from: Optional[Union[str, Path]] = None,
) -> List[FsckReport]:
    """Audit every store under a unified cache root.

    Recognizes the standard layout (``arrays/``, ``evaluations/``,
    ``traces/``, ``clouds/``, ``costs/``); a directory that itself fans
    out into two-hex-digit
    subdirs is treated as a single bare store.  ``repair_from`` names a
    sibling cache root with the same layout.
    """
    cache_dir = Path(cache_dir)
    sibling = Path(repair_from) if repair_from is not None else None
    reports: List[FsckReport] = []
    stores = [sub for sub in _KNOWN_STORES if (cache_dir / sub).is_dir()]
    if stores:
        for sub in stores:
            reports.append(
                fsck_store(
                    cache_dir / sub,
                    repair_from=(sibling / sub) if sibling is not None else None,
                )
            )
    else:
        reports.append(fsck_store(cache_dir, repair_from=sibling))
    return reports


def fsck_manifest(output_dir: Union[str, Path]) -> FsckReport:
    """Audit one run-output directory: manifest parses, artifacts exist."""
    output_dir = Path(output_dir)
    report = FsckReport(root=output_dir)
    manifest_path = RunManifest.path_in(output_dir)
    if not manifest_path.exists():
        report.problems.append(f"no manifest at {manifest_path}")
        return report
    report.scanned += 1
    manifest = RunManifest.try_load(output_dir)
    if manifest is None:
        report.corrupt += 1
        report.problems.append(f"{manifest_path} is unreadable or malformed")
        return report
    report.ok += 1
    for entry in manifest.entries + manifest.retained:
        for kind, relpath in entry.artifacts.items():
            if not (output_dir / relpath).exists():
                report.problems.append(
                    f"study {entry.name!r}: missing {kind} artifact {relpath}"
                )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="nvmexplorer fsck",
        description=(
            "Audit and repair cache directories and run manifests: verify "
            "entry checksums, quarantine corrupt files, sweep stale tmp "
            "files, and re-materialize missing entries from a sibling cache."
        ),
    )
    parser.add_argument(
        "cache_dir", nargs="?", default=None,
        help="unified cache root to audit (arrays/, evaluations/, traces/)",
    )
    parser.add_argument(
        "--repair-from", metavar="DIR", default=None,
        help="sibling cache root to re-materialize missing entries from",
    )
    parser.add_argument(
        "--manifest", metavar="DIR", action="append", default=[],
        help="run-output directory whose manifest and artifacts to audit "
             "(repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON report object instead of text",
    )
    args = parser.parse_args(argv)
    if args.cache_dir is None and not args.manifest:
        parser.error("nothing to audit: give a cache_dir and/or --manifest")

    reports: List[FsckReport] = []
    if args.cache_dir is not None:
        reports.extend(fsck_cache_dir(args.cache_dir, repair_from=args.repair_from))
    for output_dir in args.manifest:
        reports.append(fsck_manifest(output_dir))

    if args.json:
        print(json.dumps({"reports": [r.to_dict() for r in reports]}, indent=2))
    else:
        for report in reports:
            print(report.summary())
            for problem in report.problems:
                print(f"  ! {problem}")
    return 0 if all(report.clean for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
