"""Cost-model-driven elastic scheduling of sweep points.

PR 5's :class:`~repro.runtime.shard.PointShard` partitions a sweep's
point space by *count*: fingerprints hash round-robin onto shards, so
one expensive organization can pin a shard while its siblings idle.
This module closes that gap with three cooperating pieces:

* :class:`CostLedger` — a persistent store (``<cache_dir>/costs/``) of
  observed per-point wall-clock.  The executor records an observation
  for every point computed *fresh* (cache hits carry ``duration_s = 0``
  and are never recorded, so warm runs cannot poison the ledger with
  zeros); repeated observations fold into a running mean.
* :class:`CostModel` — a cheap, deterministic regression over array
  geometry (log2 capacity, node, access width, bits/cell, volatility)
  fitted from the ledger in log-duration space.  With too few
  observations it degrades to a static geometry heuristic; with none at
  all it is *empty* and balanced planning degrades exactly to the
  round-robin fingerprint partition.
* :func:`plan_balanced` — LPT (longest-processing-time-first) greedy
  bin-packing of the point space over predicted costs, yielding a
  :class:`BalancedPointShard` whose membership depends only on the
  *set* of fingerprints and their costs — deterministic under point
  reordering, an exact cover of the space across shards.

Orthogonally, :class:`WorkQueue` implements the late-binding "pilot
job" pattern: instead of a static partition, workers *lease* point
batches from a shared queue directory.  Leases are atomic renames
(``pending/`` -> ``leased/``), kept alive by an mtime heartbeat, and
reclaimed by any worker once expired — so a killed consumer's batch is
re-run by a survivor, and a restarted consumer resumes the batches it
already completed from its durable per-worker claims file.  Whatever
the cost model mispredicts, the queue absorbs.

Merge verification is unchanged either way: manifests still record the
planned/selected point sets, and :func:`~repro.runtime.shard.\
merge_manifests` still proves every planned point landed on exactly one
run (or was quarantined as poisoned).  The exactly-once check is the
correctness backstop for both the planner and the queue — a lease
expiry shorter than a worker's worst heartbeat gap shows up as a
duplicated point at merge time, never as silent corruption.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ReproError
from repro.runtime.cache import JsonObjectCache, _tmp_path_for
from repro.runtime.shard import PointShard, assign_fingerprint, point_set_digest

if TYPE_CHECKING:
    from repro.runtime.chaos import ChaosOptions

__all__ = [
    "COST_SCHEMA_TAG",
    "QUEUE_SCHEMA",
    "BalancedPointShard",
    "CostLedger",
    "CostModel",
    "LeaseBatch",
    "QueueLeaseLost",
    "WorkQueue",
    "cost_ledger_for",
    "evaluation_features",
    "plan_balanced",
    "point_features",
]

#: Schema tag of the persisted cost-ledger entries.  Bumping it orphans
#: old observations (they become ordinary misses) without invalidating
#: any result cache — costs are advisory, never part of result identity.
COST_SCHEMA_TAG = "cost-ledger-v1"

#: Schema tag of work-queue batch/claims payloads.
QUEUE_SCHEMA = "work-queue-v1"

#: Predictions are clamped into this range: a cost of exactly zero would
#: make LPT placement degenerate, and a wild extrapolation must not let
#: one mispredicted point dominate the plan.
_MIN_COST_S = 1e-6
_MAX_COST_S = 1e6


# --- feature extraction -----------------------------------------------------


def point_features(point) -> Dict[str, float]:
    """Geometry features of one characterization request.

    Duck-typed over :class:`~repro.runtime.executor.SweepPoint` (this
    module must not import the executor, which imports it back).
    """
    return {
        "log2_capacity": math.log2(max(1, int(point.capacity_bytes))),
        "node_nm": float(point.node_nm),
        "access_bits": float(point.access_bits),
        "bits_per_cell": float(point.bits_per_cell),
        "nonvolatile": 1.0 if point.cell.tech_class.is_nonvolatile else 0.0,
    }


def evaluation_features(array, traffic_length: int) -> Dict[str, float]:
    """Features of one (array x traffic-block) evaluation request."""
    return {
        "log2_capacity": math.log2(max(1, int(array.capacity_bytes))),
        "node_nm": float(array.node_nm),
        "bits_per_cell": float(array.bits_per_cell),
        "nonvolatile": 1.0 if array.cell.tech_class.is_nonvolatile else 0.0,
        "traffic_length": float(traffic_length),
    }


def _heuristic_cost(features: Mapping[str, float]) -> float:
    """Static fallback when the ledger holds too few observations.

    Any positive function monotone in the work drivers suffices for LPT
    — bigger arrays and denser cells dominate characterization time, and
    longer traffic blocks dominate evaluation time.
    """
    cost = 1.0 + features.get("log2_capacity", 0.0)
    cost *= 1.0 + 0.5 * max(0.0, features.get("bits_per_cell", 1.0) - 1.0)
    cost *= 1.0 + 0.01 * features.get("traffic_length", 0.0)
    return cost


# --- the cost model ---------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """A fitted per-point cost predictor.

    ``source`` records how the model was obtained: ``"regression"`` (a
    ridge least-squares fit in log-duration space), ``"heuristic"``
    (too few observations — predictions fall back to the static
    geometry heuristic), or ``"empty"`` (no observations at all; the
    planner degrades to the round-robin fingerprint partition).  The
    fit is a closed-form solve over deterministically ordered
    observations — no RNG anywhere — so every host plans the same
    shards from the same ledger; ``seed`` is recorded for provenance.
    """

    feature_names: Tuple[str, ...] = ()
    weights: Tuple[float, ...] = ()  # intercept first, log-duration space
    source: str = "empty"
    samples: int = 0
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        return self.source == "empty"

    @classmethod
    def fit(
        cls,
        observations: Sequence[Tuple[Mapping[str, float], float]],
        seed: int = 0,
    ) -> "CostModel":
        """Fit from ``(features, duration_s)`` pairs, deterministically.

        Observations are sorted into a canonical order before the solve,
        so the model depends only on the ledger *contents*.
        """
        rows = [
            (tuple(sorted(features.items())), float(duration))
            for features, duration in observations
            if duration > 0.0
        ]
        rows.sort()
        if not rows:
            return cls(source="empty", seed=seed)
        names = tuple(sorted({name for features, _ in rows for name, _ in features}))
        if len(rows) < len(names) + 2:
            return cls(feature_names=names, source="heuristic", samples=len(rows), seed=seed)
        import numpy as np

        x = np.ones((len(rows), len(names) + 1), dtype=np.float64)
        y = np.empty(len(rows), dtype=np.float64)
        for i, (features, duration) in enumerate(rows):
            lookup = dict(features)
            for j, name in enumerate(names):
                x[i, j + 1] = lookup.get(name, 0.0)
            y[i] = math.log(max(duration, _MIN_COST_S))
        # Ridge-regularized normal equations: closed-form, deterministic,
        # and well-posed even when a feature is constant across the ledger.
        gram = x.T @ x + 1e-6 * np.eye(x.shape[1])
        weights = np.linalg.solve(gram, x.T @ y)
        return cls(
            feature_names=names,
            weights=tuple(float(w) for w in weights),
            source="regression",
            samples=len(rows),
            seed=seed,
        )

    def predict(self, features: Mapping[str, float]) -> float:
        """Predicted cost (seconds) of one request; always positive."""
        if self.source != "regression" or not self.weights:
            return max(_MIN_COST_S, _heuristic_cost(features))
        log_cost = self.weights[0]
        for name, weight in zip(self.feature_names, self.weights[1:]):
            log_cost += weight * features.get(name, 0.0)
        # Clamp in log space: math.exp overflows long before the cost
        # ceiling would get a chance to.
        log_cost = min(math.log(_MAX_COST_S), max(math.log(_MIN_COST_S), log_cost))
        return math.exp(log_cost)


# --- the cost ledger --------------------------------------------------------


class CostLedger(JsonObjectCache):
    """Persistent per-point cost observations under ``<cache_dir>/costs/``.

    Entries are keyed by the same content fingerprints as the result
    caches (point fingerprints for the characterize phase, evaluation
    fingerprints for the evaluate phase), so an observation survives
    exactly as long as the result it describes stays addressable.
    Repeated observations of one fingerprint fold into a running mean.

    Only *fresh* work is recorded: :meth:`observe` ignores non-positive
    durations, which is precisely what cache hits report — a warm run
    leaves the ledger untouched, keeping hit/miss accounting and cost
    accounting distinct.  Entries ride the shared
    :class:`~repro.runtime.cache.JsonObjectCache` machinery (atomic
    writes, checksums, quarantine), so ``nvmexplorer fsck`` audits the
    costs store exactly like the result stores.
    """

    def __init__(
        self,
        root: Union[str, Path],
        schema_tag: str = COST_SCHEMA_TAG,
        chaos: Optional["ChaosOptions"] = None,
    ) -> None:
        super().__init__(root, schema_tag, chaos=chaos)
        self._models: Dict[str, CostModel] = {}
        #: Observations recorded by this process (fresh work this run).
        self.observed = 0

    def _encode(self, result) -> Any:
        return dict(result)

    def _decode(self, payload):
        if not isinstance(payload, dict):
            raise ValueError("cost payload must be an object")
        features = payload.get("features")
        if not isinstance(features, dict):
            raise ValueError("cost payload must carry a features object")
        return {
            "phase": str(payload.get("phase", "characterize")),
            "features": {str(k): float(v) for k, v in features.items()},
            "mean_s": float(payload["mean_s"]),
            "samples": int(payload.get("samples", 1)),
        }

    def observe(
        self,
        fingerprint: str,
        features: Mapping[str, float],
        duration_s: float,
        phase: str = "characterize",
    ) -> bool:
        """Fold one fresh-work duration into the ledger.

        Returns ``False`` (recording nothing) for non-positive durations:
        a ``duration_s`` of zero means the point was served from cache,
        and zeros averaged into the ledger would teach the planner that
        warm points are free — exactly the bias this guard exists for.
        """
        if duration_s <= 0.0:
            return False
        prior = self.load(fingerprint)
        samples, mean_s = 1, float(duration_s)
        if prior is not None and prior.get("phase") == phase:
            samples = int(prior["samples"]) + 1
            mean_s = prior["mean_s"] + (duration_s - prior["mean_s"]) / samples
        self.store(
            fingerprint,
            {
                "phase": phase,
                "features": {str(k): float(v) for k, v in features.items()},
                "mean_s": mean_s,
                "samples": samples,
            },
        )
        self.observed += 1
        self._models.pop(phase, None)
        return True

    def observations(
        self, phase: str = "characterize", limit: int = 4096
    ) -> List[Tuple[Dict[str, float], float]]:
        """Up to ``limit`` ``(features, mean duration)`` pairs, in
        deterministic (fingerprint-sorted) order."""
        out: List[Tuple[Dict[str, float], float]] = []
        for fingerprint in self.fingerprints():
            if len(out) >= limit:
                break
            entry = self.load(fingerprint)
            if entry is not None and entry.get("phase") == phase:
                out.append((dict(entry["features"]), float(entry["mean_s"])))
        return out

    def costs_for(
        self, phase: str, requests: Mapping[str, Mapping[str, float]]
    ) -> Optional[Dict[str, float]]:
        """Predicted cost per fingerprint, or ``None`` with an empty model.

        Known fingerprints are priced at their *observed* mean (the best
        possible estimate); unknown ones at the model's prediction.
        """
        model = self.model(phase)
        if model.is_empty:
            return None
        costs: Dict[str, float] = {}
        for fingerprint, features in requests.items():
            entry = self.load(fingerprint)
            if entry is not None and entry.get("phase") == phase:
                costs[fingerprint] = max(_MIN_COST_S, float(entry["mean_s"]))
            else:
                costs[fingerprint] = model.predict(features)
        return costs

    def model(self, phase: str = "characterize") -> CostModel:
        """The fitted (and memoized) cost model for one phase."""
        if phase not in self._models:
            self._models[phase] = CostModel.fit(self.observations(phase=phase))
        return self._models[phase]


def cost_ledger_for(runtime) -> Optional[CostLedger]:
    """The cost ledger for one ``RuntimeOptions``, or ``None``.

    Lives under ``<cache_dir>/costs`` next to the result stores; absent
    runtimes and cache-less runs keep no ledger.
    """
    if runtime is None or runtime.cache_dir is None:
        return None
    from repro.runtime.options import COST_CACHE_SUBDIR

    return CostLedger(Path(runtime.cache_dir) / COST_CACHE_SUBDIR)


# --- cost-balanced planning -------------------------------------------------


@dataclass(frozen=True)
class BalancedPointShard(PointShard):
    """A point shard selecting an explicit member set.

    Produced by :func:`plan_balanced`: ``index``/``count`` keep their
    identity meaning (which slot of the partition this is), while
    selection is by membership instead of fingerprint hashing.  To the
    rest of the system this is an opaque point-set selector — the
    manifest section, :func:`~repro.runtime.shard.study_fingerprint`,
    and merge verification all treat it through ``selects`` and
    ``to_dict`` exactly like the round-robin shard.
    """

    members: frozenset = frozenset()

    def selects(self, fingerprint: str) -> bool:
        return fingerprint in self.members

    def partition(self, items: Iterable[Any], key=lambda item: item) -> list:
        return [item for item in items if key(item) in self.members]

    def to_dict(self) -> Dict[str, Any]:
        # The membership digest (not the member list) keys the study
        # fingerprint: two runs with the same planned slice share
        # incremental identity regardless of how the plan was derived.
        return {
            "index": self.index,
            "count": self.count,
            "scheme": "balanced",
            "members_digest": point_set_digest(self.members),
        }

    @classmethod
    def from_selected(cls, index: int, count: int, selected: Iterable[str]) -> "BalancedPointShard":
        """Rebuild the selector a run used from its manifest section."""
        return cls(index, count, members=frozenset(str(fp) for fp in selected))


def plan_balanced(
    index: int,
    count: int,
    fingerprints: Iterable[str],
    costs: Optional[Mapping[str, float]] = None,
) -> BalancedPointShard:
    """Plan shard ``index`` of a cost-balanced ``count``-way partition.

    LPT greedy bin-packing: points are placed heaviest-first onto the
    currently lightest shard (ties broken by fingerprint, then shard
    index), a classic 4/3-approximation of the optimal makespan.  The
    plan depends only on the fingerprint *set* and the cost mapping —
    deterministic under reordering, and every fingerprint lands on
    exactly one shard (exact cover).  With ``costs=None`` (an empty
    ledger) the membership degrades to exactly the round-robin
    :func:`~repro.runtime.shard.assign_fingerprint` partition, so a
    cold fleet plans identically to PR 5.
    """
    unique = sorted(set(fingerprints))
    if costs is None:
        members = frozenset(fp for fp in unique if assign_fingerprint(fp, count) == index)
        return BalancedPointShard(index, count, members=members)
    ordered = sorted(unique, key=lambda fp: (-max(0.0, float(costs.get(fp, 0.0))), fp))
    loads = [0.0] * count
    bins: List[List[str]] = [[] for _ in range(count)]
    for fp in ordered:
        lightest = min(range(count), key=lambda i: (loads[i], i))
        bins[lightest].append(fp)
        loads[lightest] += max(_MIN_COST_S, float(costs.get(fp, 0.0)))
    return BalancedPointShard(index, count, members=frozenset(bins[index]))


# --- the pull-based work queue ----------------------------------------------


class QueueLeaseLost(ReproError):
    """A worker's lease expired (and was reclaimed) while it was working.

    The worker's results are cached and correct, but its point-level
    accounting can no longer be trusted as exclusive — another worker
    may have re-run the batch.  Raise loudly instead of risking a
    duplicated point at merge time; the fix is a longer
    ``lease_expiry_s`` (it must exceed the worst heartbeat gap).
    """


@dataclass(frozen=True)
class LeaseBatch:
    """One leased batch of point fingerprints (held via ``path``)."""

    topic: str
    index: int
    fingerprints: Tuple[str, ...]
    path: Path


class WorkQueue:
    """A shared filesystem work queue of point batches.

    Layout, per *topic* (one topic = one sweep's planned point set,
    keyed by its content digest so concurrent consumers meet on the
    same queue with no coordination)::

        <queue_dir>/<topic>/
            topic.json            metadata (planned count, batch size)
            pending/batch-*.json  batches nobody holds
            leased/batch-*.json   held batches; mtime is the heartbeat
            claims/worker-*.json  batches each worker has completed

    Every transition is a single atomic rename: publish stages batches
    into a temp directory and renames it to ``pending/`` (losers of the
    race see the directory exists and publish nothing); a lease renames
    ``pending/x`` to ``leased/x`` (exactly one winner); reclaim renames
    an expired ``leased/x`` back.  Completion *claims* the batch in the
    worker's own claims file before unlinking the lease, so a batch
    absent from ``pending/`` and ``leased/`` is always claimed by
    someone, and a consumer restarted after a crash resumes (and
    re-accounts) the batches it already completed.

    A lease whose file vanished (expired and reclaimed mid-flight)
    surfaces as :class:`QueueLeaseLost` on completion; the manifest
    merge's exactly-once verification backstops any race this check is
    too late for.
    """

    def __init__(
        self,
        queue_dir: Union[str, Path],
        worker_id: str = "0",
        batch_size: int = 4,
        lease_expiry_s: float = 30.0,
        heartbeat_s: Optional[float] = None,
        poll_s: Optional[float] = None,
    ) -> None:
        if int(batch_size) < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        if float(lease_expiry_s) <= 0:
            raise ValueError(f"lease_expiry_s must be > 0, got {lease_expiry_s!r}")
        self.root = Path(queue_dir)
        self.worker_id = str(worker_id)
        self.batch_size = int(batch_size)
        self.lease_expiry_s = float(lease_expiry_s)
        # Several beats fit in one expiry window, so a single delayed
        # touch cannot get a live worker's lease reclaimed.
        self.heartbeat_s = (
            float(heartbeat_s) if heartbeat_s is not None else max(0.05, self.lease_expiry_s / 5.0)
        )
        self.poll_s = float(poll_s) if poll_s is not None else max(0.05, self.lease_expiry_s / 10.0)
        self.root.mkdir(parents=True, exist_ok=True)

    # --- layout helpers ---------------------------------------------------

    @staticmethod
    def topic_for(fingerprints: Iterable[str]) -> str:
        """The topic key of one planned point set (content-derived)."""
        return point_set_digest(fingerprints)[:32]

    def _topic_dir(self, topic: str) -> Path:
        return self.root / topic

    def _pending_dir(self, topic: str) -> Path:
        return self._topic_dir(topic) / "pending"

    def _leased_dir(self, topic: str) -> Path:
        return self._topic_dir(topic) / "leased"

    def _claims_dir(self, topic: str) -> Path:
        return self._topic_dir(topic) / "claims"

    def _claims_path(self, topic: str) -> Path:
        return self._claims_dir(topic) / f"worker-{self.worker_id}.json"

    @staticmethod
    def _batch_name(index: int) -> str:
        return f"batch-{index:06d}.json"

    def _write_json(self, path: Path, payload: Mapping[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = _tmp_path_for(path)
        try:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    @staticmethod
    def _read_json(path: Path) -> Optional[Mapping[str, Any]]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, Mapping) else None

    # --- publish ----------------------------------------------------------

    def publish(self, fingerprints: Sequence[str]) -> str:
        """Idempotently publish one planned point set; returns its topic.

        Batches are cut from the caller's (deterministic sweep) order,
        so every concurrent publisher stages identical batch files; the
        single ``rename(stage, pending)`` decides who actually installs
        them, making publication atomic — a consumer can never observe a
        half-published pending directory.
        """
        ordered = list(dict.fromkeys(fingerprints))
        topic = self.topic_for(ordered)
        tdir = self._topic_dir(topic)
        pending = self._pending_dir(topic)
        tdir.mkdir(parents=True, exist_ok=True)
        if not pending.exists() and not (tdir / "topic.json").exists():
            stage = tdir / f"stage.{os.getpid()}.{threading.get_ident()}.{time.monotonic_ns()}"
            stage.mkdir()
            batches = [
                ordered[start : start + self.batch_size]
                for start in range(0, len(ordered), self.batch_size)
            ]
            for index, fps in enumerate(batches):
                (stage / self._batch_name(index)).write_text(
                    json.dumps(
                        {
                            "schema": QUEUE_SCHEMA,
                            "topic": topic,
                            "index": index,
                            "fingerprints": list(fps),
                        },
                        indent=2,
                        sort_keys=True,
                    )
                )
            try:
                os.rename(stage, pending)
            except OSError:
                # Lost the publish race; the winner's batches are
                # identical by construction.
                for leftover in sorted(stage.iterdir()):
                    leftover.unlink(missing_ok=True)
                stage.rmdir()
            self._write_json(
                tdir / "topic.json",
                {
                    "schema": QUEUE_SCHEMA,
                    "topic": topic,
                    "planned": len(ordered),
                    "planned_digest": point_set_digest(ordered),
                    "batch_size": self.batch_size,
                    "batches": len(batches) if ordered else 0,
                },
            )
        self._leased_dir(topic).mkdir(exist_ok=True)
        self._claims_dir(topic).mkdir(exist_ok=True)
        return topic

    # --- claims -----------------------------------------------------------

    def _claimed_batches(self, topic: str) -> Dict[int, str]:
        """Batch index -> claiming worker, across every claims file."""
        claimed: Dict[int, str] = {}
        cdir = self._claims_dir(topic)
        if not cdir.is_dir():
            return claimed
        for path in sorted(cdir.glob("worker-*.json")):
            payload = self._read_json(path)
            if payload is None:
                continue
            worker = str(payload.get("worker", path.stem))
            for key in payload.get("batches", {}):
                try:
                    claimed[int(key)] = worker
                except (TypeError, ValueError):
                    continue
        return claimed

    def claimed_points(self, topic: str) -> List[str]:
        """Fingerprints this worker completed in prior runs (for resume)."""
        payload = self._read_json(self._claims_path(topic))
        if payload is None:
            return []
        out: List[str] = []
        for _, fps in sorted(payload.get("batches", {}).items(), key=lambda item: int(item[0])):
            out.extend(str(fp) for fp in fps)
        return out

    # --- lease / heartbeat / complete -------------------------------------

    def lease(self, topic: str) -> Optional[LeaseBatch]:
        """Acquire one batch, reclaiming expired leases along the way.

        Returns ``None`` when nothing is leasable right now — either the
        topic is drained, or every remaining batch is held by a live
        (heartbeating) worker; poll :meth:`outstanding` to tell apart.
        """
        pending = self._pending_dir(topic)
        leased = self._leased_dir(topic)
        claimed = self._claimed_batches(topic)
        for attempt in range(2):
            if pending.is_dir():
                for path in sorted(pending.glob("batch-*.json")):
                    payload = self._read_json(path)
                    if payload is None:
                        continue
                    if int(payload.get("index", -1)) in claimed:
                        # Completed by someone whose lease was reclaimed
                        # after the claim landed: already done, drop it.
                        path.unlink(missing_ok=True)
                        continue
                    dest = leased / path.name
                    try:
                        os.rename(path, dest)
                    except OSError:
                        continue  # another worker won this batch
                    os.utime(dest)
                    return LeaseBatch(
                        topic=topic,
                        index=int(payload["index"]),
                        fingerprints=tuple(str(fp) for fp in payload.get("fingerprints", ())),
                        path=dest,
                    )
            if attempt == 1 or not self._reclaim(topic, claimed):
                return None
        return None

    def _reclaim(self, topic: str, claimed: Mapping[int, str]) -> int:
        """Move expired leases back to pending; returns how many moved."""
        leased = self._leased_dir(topic)
        pending = self._pending_dir(topic)
        if not leased.is_dir():
            return 0
        moved = 0
        now = time.time()
        for path in sorted(leased.glob("batch-*.json")):
            payload = self._read_json(path)
            if payload is not None and int(payload.get("index", -1)) in claimed:
                # Crash window between claim write and lease unlink: the
                # work is durably claimed, so the stale lease is garbage.
                path.unlink(missing_ok=True)
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age < self.lease_expiry_s:
                continue
            pending.mkdir(exist_ok=True)
            try:
                os.rename(path, pending / path.name)
            except OSError:
                continue
            moved += 1
        return moved

    @contextmanager
    def heartbeating(self, batch: LeaseBatch):
        """Keep ``batch``'s lease alive while the body runs."""
        stop = threading.Event()

        def _beat() -> None:
            while not stop.wait(self.heartbeat_s):
                try:
                    os.utime(batch.path)
                except OSError:
                    return  # lease vanished; complete() reports it

        thread = threading.Thread(target=_beat, daemon=True)
        thread.start()
        try:
            yield batch
        finally:
            stop.set()
            thread.join()

    def complete(self, batch: LeaseBatch) -> None:
        """Durably claim a finished batch, then release its lease file.

        The claim is written *first*: once it lands, every worker treats
        the batch as done even if this process dies before the unlink.
        Raises :class:`QueueLeaseLost` when the lease file is already
        gone — the batch expired and was reclaimed while we worked.
        """
        if not batch.path.exists():
            raise QueueLeaseLost(
                f"lease on batch {batch.index} of topic {batch.topic} expired "
                f"after {self.lease_expiry_s}s and was reclaimed; raise "
                "lease_expiry_s above the slowest batch's wall-clock"
            )
        path = self._claims_path(batch.topic)
        payload = self._read_json(path) or {}
        batches = dict(payload.get("batches", {}))
        batches[str(batch.index)] = list(batch.fingerprints)
        self._write_json(
            path,
            {
                "schema": QUEUE_SCHEMA,
                "topic": batch.topic,
                "worker": self.worker_id,
                "batches": batches,
            },
        )
        batch.path.unlink(missing_ok=True)

    def release(self, batch: LeaseBatch) -> None:
        """Return an unfinished batch to ``pending/`` (error paths)."""
        try:
            os.rename(batch.path, self._pending_dir(batch.topic) / batch.path.name)
        except OSError:
            pass  # already reclaimed or completed elsewhere

    def outstanding(self, topic: str) -> int:
        """Batches not yet claimed: pending plus currently leased."""
        count = 0
        for directory in (self._pending_dir(topic), self._leased_dir(topic)):
            if directory.is_dir():
                count += len(list(directory.glob("batch-*.json")))
        return count

    def drained(self, topic: str) -> bool:
        return self.outstanding(topic) == 0

    def stats(self, topic: str) -> Dict[str, int]:
        pending = self._pending_dir(topic)
        leased = self._leased_dir(topic)
        return {
            "pending": len(list(pending.glob("batch-*.json"))) if pending.is_dir() else 0,
            "leased": len(list(leased.glob("batch-*.json"))) if leased.is_dir() else 0,
            "claimed": len(self._claimed_batches(topic)),
        }
