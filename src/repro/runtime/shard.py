"""Deterministic work sharding and per-shard run manifests.

The study suite is embarrassingly parallel across *studies* (and, inside
one study, across sweep points), so the cheapest way to scale it beyond
one host is a deterministic partitioning plan: every host computes the
same plan from the same inputs and picks its ``--shard-index`` slice —
no coordinator, no queue.  Two primitives implement that:

* :func:`plan_shard` splits an ordered suite of study names into
  ``shard_count`` near-equal slices.  Assignment is computed on the
  *sorted* names, so it is stable under registry reordering; the
  returned selection preserves the caller's (registry) order so
  per-shard output matches the single-host run's ordering.
* :func:`assign_fingerprint` / :func:`partition_fingerprints` map any
  content fingerprint (:mod:`repro.runtime.fingerprint`) onto a shard,
  for splitting one study's sweep-point space across hosts.

Each shard records what it did in a :class:`RunManifest` written next to
its outputs (``manifest.json``): one :class:`ManifestEntry` per study
with status, row count, telemetry counters, artifact paths, and the
study's content fingerprint (:func:`study_fingerprint` — parameters ×
cache schema tags × an mtime-independent source digest).  Manifests
serve two consumers:

* :func:`merge_manifests` combines per-shard manifests into the
  single-suite view, verifying that no study was dropped, duplicated,
  or planned against a different suite/schema — the CI merge job.
* The incremental summary compares a previous manifest entry's
  fingerprint against the current one and skips studies whose artifacts
  are already up to date.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.errors import ReproError
from repro.runtime.fingerprint import (
    EVAL_SCHEMA_TAG,
    SCHEMA_TAG,
    TRACE_SCHEMA_TAG,
    canonical_json,
    fingerprint_payload,
)

#: Version tag of the manifest payload format.  Bump on incompatible
#: changes so stale manifests are ignored instead of misread.
MANIFEST_SCHEMA = "shard-manifest-v1"

#: File name a shard's manifest is written under, next to its outputs.
MANIFEST_FILENAME = "manifest.json"

#: Statuses a manifest entry can record.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


class ShardError(ReproError):
    """A shard plan or manifest merge is inconsistent."""


def schema_tags() -> dict[str, str]:
    """The active schema tag of every persistent cache layer.

    Recorded in manifests (and usable as a CI cache key): any bump
    invalidates both the on-disk caches and incremental skips.
    """
    return {
        "arrays": SCHEMA_TAG,
        "evaluations": EVAL_SCHEMA_TAG,
        "traces": TRACE_SCHEMA_TAG,
    }


# --- shard planning -------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """One host's slice of a deterministic suite partition."""

    shard_index: int
    shard_count: int
    suite: tuple[str, ...]  # the full suite, in caller (registry) order
    selected: tuple[str, ...]  # this shard's slice, in suite order

    @property
    def is_whole_suite(self) -> bool:
        return self.shard_count == 1


def _validate_shard(shard_index: int, shard_count: int) -> None:
    if shard_count < 1:
        raise ShardError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ShardError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )


def shard_assignments(names: Iterable[str], shard_count: int) -> dict[str, int]:
    """Deterministic study -> shard assignment.

    Names are assigned round-robin over their *sorted* order, so the
    assignment depends only on the set of names and ``shard_count`` —
    never on registry iteration order — and shard sizes differ by at
    most one.
    """
    _validate_shard(0, shard_count)
    ordered = sorted(set(names))
    return {name: i % shard_count for i, name in enumerate(ordered)}


def plan_shard(
    suite: Sequence[str], shard_index: int = 0, shard_count: int = 1
) -> ShardPlan:
    """This shard's slice of ``suite`` (study names, registry order)."""
    _validate_shard(shard_index, shard_count)
    names = list(suite)
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ShardError(f"suite contains duplicate studies: {', '.join(dupes)}")
    assignment = shard_assignments(names, shard_count)
    selected = tuple(n for n in names if assignment[n] == shard_index)
    return ShardPlan(
        shard_index=shard_index,
        shard_count=shard_count,
        suite=tuple(names),
        selected=selected,
    )


def assign_fingerprint(fingerprint: str, shard_count: int) -> int:
    """The shard a content fingerprint belongs to.

    Uses the fingerprint's leading 64 bits, so the assignment is stable
    across runs, hosts, and orderings — the point-space analogue of
    :func:`shard_assignments` for splitting one study's sweep across
    hosts via the existing point/trace/evaluation fingerprints.
    """
    _validate_shard(0, shard_count)
    return int(fingerprint[:16], 16) % shard_count


def partition_fingerprints(
    items: Iterable[Any],
    shard_index: int,
    shard_count: int,
    key=lambda item: item,
) -> list[Any]:
    """The items whose fingerprint (via ``key``) lands on this shard."""
    _validate_shard(shard_index, shard_count)
    return [
        item
        for item in items
        if assign_fingerprint(key(item), shard_count) == shard_index
    ]


# --- study fingerprints (incremental skip keys) ---------------------------


@lru_cache(maxsize=1)
def source_digest() -> str:
    """Content hash of every ``repro`` source file.

    mtime-independent: only file *contents* (and relative paths)
    participate, so a fresh checkout of the same revision digests
    identically on every host.  Any source change invalidates every
    incremental skip — conservative, but never wrong.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def study_fingerprint(
    spec, overrides: Optional[Mapping[str, Any]] = None, seed: Optional[int] = None
) -> str:
    """Stable content key for one configured study run.

    Everything that can change the study's artifacts participates: the
    spec's identity and effective parameters, the report options, the
    runtime seed override, every cache schema tag, and the source
    digest.  Matching fingerprints mean a re-run would reproduce the
    existing artifacts, so the incremental summary may skip it.
    """
    params = {**dict(spec.params), **dict(overrides or {})}
    try:
        payload = {
            "study": spec.name,
            "figure": spec.figure,
            "description": spec.description,
            "params": json.loads(canonical_json(params)),
            "report": dict(spec.report),
            "seed": seed,
            "schema_tags": schema_tags(),
            "source": source_digest(),
        }
    except TypeError as exc:
        raise ShardError(
            f"study {spec.name!r} has non-JSON-able parameters: {exc}"
        ) from exc
    return fingerprint_payload(payload)


# --- run manifests --------------------------------------------------------


@dataclass(frozen=True)
class ManifestEntry:
    """One study's outcome as recorded in a shard manifest."""

    name: str
    status: str  # STATUS_OK | STATUS_CACHED | STATUS_FAILED
    fingerprint: str = ""
    rows: int = 0
    elapsed_s: float = 0.0
    error: str = ""
    artifacts: Mapping[str, str] = field(default_factory=dict)  # kind -> relpath
    telemetry: Mapping[str, int] = field(default_factory=dict)  # counter -> value

    def __post_init__(self) -> None:
        if self.status not in (STATUS_OK, STATUS_CACHED, STATUS_FAILED):
            raise ShardError(
                f"entry {self.name!r}: unknown status {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "rows": int(self.rows),
            "elapsed_s": float(self.elapsed_s),
            "error": self.error,
            "artifacts": dict(self.artifacts),
            "telemetry": {k: int(v) for k, v in self.telemetry.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ManifestEntry":
        try:
            return cls(
                name=str(payload["name"]),
                status=str(payload["status"]),
                fingerprint=str(payload.get("fingerprint", "")),
                rows=int(payload.get("rows", 0)),
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
                error=str(payload.get("error", "")),
                artifacts=dict(payload.get("artifacts", {})),
                telemetry=dict(payload.get("telemetry", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(f"malformed manifest entry: {exc}") from exc


@dataclass(frozen=True)
class RunManifest:
    """What one shard (or a merged suite) ran, and where the outputs are.

    ``entries`` describe exactly the studies this run targeted — the
    merge step's unit of accounting.  ``retained`` carries forward
    entries from earlier runs into the same output directory whose
    studies this run did *not* target (e.g. a later ``--only`` subset),
    so their incremental state survives; merging ignores them.
    """

    shard_index: int
    shard_count: int
    suite: tuple[str, ...]  # every study the partitioned run targeted
    entries: tuple[ManifestEntry, ...]  # this shard's studies, suite order
    tags: Mapping[str, str] = field(default_factory=schema_tags)
    merged_from: tuple[int, ...] = ()  # shard indices a merge combined
    retained: tuple[ManifestEntry, ...] = ()  # prior runs' other studies

    def __post_init__(self) -> None:
        _validate_shard(self.shard_index, self.shard_count)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(entry.name for entry in self.entries)

    def entry_for(self, name: str) -> Optional[ManifestEntry]:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def lookup(self, name: str) -> Optional[ManifestEntry]:
        """This run's entry for ``name``, or a retained prior one."""
        entry = self.entry_for(name)
        if entry is not None:
            return entry
        for entry in self.retained:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "suite": list(self.suite),
            "schema_tags": dict(self.tags),
            "merged_from": list(self.merged_from),
            "entries": [entry.to_dict() for entry in self.entries],
            "retained": [entry.to_dict() for entry in self.retained],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        if not isinstance(payload, Mapping):
            raise ShardError("manifest root must be an object")
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise ShardError(
                f"manifest schema {payload.get('schema')!r} is not "
                f"{MANIFEST_SCHEMA!r} (regenerate the shard outputs)"
            )
        try:
            return cls(
                shard_index=int(payload["shard_index"]),
                shard_count=int(payload["shard_count"]),
                suite=tuple(str(n) for n in payload["suite"]),
                entries=tuple(
                    ManifestEntry.from_dict(e) for e in payload["entries"]
                ),
                tags=dict(payload.get("schema_tags", {})),
                merged_from=tuple(int(i) for i in payload.get("merged_from", ())),
                retained=tuple(
                    ManifestEntry.from_dict(e) for e in payload.get("retained", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(f"malformed manifest: {exc}") from exc

    # --- persistence ------------------------------------------------------

    @staticmethod
    def path_in(directory: Union[str, Path]) -> Path:
        return Path(directory) / MANIFEST_FILENAME

    def write(self, directory: Union[str, Path]) -> Path:
        """Persist atomically (temp + rename): an interrupted run never
        leaves a truncated manifest that would discard incremental state."""
        path = self.path_in(directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, source: Union[str, Path]) -> "RunManifest":
        """Read a manifest from a file, or from a shard output directory."""
        path = Path(source)
        if path.is_dir():
            path = cls.path_in(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ShardError(f"cannot read manifest {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ShardError(f"{path}: invalid manifest JSON ({exc})") from exc
        return cls.from_dict(payload)

    @classmethod
    def try_load(cls, directory: Union[str, Path]) -> Optional["RunManifest"]:
        """The directory's manifest, or ``None`` when absent or unusable.

        The incremental summary uses this: a missing or stale manifest
        simply means nothing can be skipped.
        """
        if not cls.path_in(directory).exists():
            return None
        try:
            return cls.load(directory)
        except ShardError:
            return None


def merge_manifests(manifests: Sequence[RunManifest]) -> RunManifest:
    """Combine per-shard manifests into the single-suite manifest.

    Verifies the shards describe one coherent partitioned run: identical
    suite and schema tags, one manifest per shard index with none
    missing, and every suite study appearing exactly once across all
    shards.  Entries are returned in suite order, so the merged table
    matches a single-host run's ordering.
    """
    if not manifests:
        raise ShardError("no manifests to merge")
    first = manifests[0]
    suite = first.suite
    for manifest in manifests[1:]:
        if manifest.suite != suite:
            raise ShardError(
                "manifests disagree on the suite: "
                f"{list(suite)} vs {list(manifest.suite)}"
            )
        if dict(manifest.tags) != dict(first.tags):
            raise ShardError(
                "manifests disagree on cache schema tags: "
                f"{dict(first.tags)} vs {dict(manifest.tags)}"
            )
        if manifest.shard_count != first.shard_count:
            raise ShardError(
                f"manifests disagree on shard_count: "
                f"{first.shard_count} vs {manifest.shard_count}"
            )
    indices = [m.shard_index for m in manifests]
    if len(set(indices)) != len(indices):
        dupes = sorted({i for i in indices if indices.count(i) > 1})
        raise ShardError(f"duplicate shard manifests for indices {dupes}")
    missing_shards = sorted(set(range(first.shard_count)) - set(indices))
    if missing_shards:
        raise ShardError(f"missing shard manifests for indices {missing_shards}")

    by_name: dict[str, ManifestEntry] = {}
    for manifest in manifests:
        for entry in manifest.entries:
            if entry.name in by_name:
                raise ShardError(
                    f"study {entry.name!r} was run by more than one shard"
                )
            if entry.name not in suite:
                raise ShardError(
                    f"study {entry.name!r} is not part of the planned suite"
                )
            by_name[entry.name] = entry
    dropped = [name for name in suite if name not in by_name]
    if dropped:
        raise ShardError(f"studies dropped by every shard: {', '.join(dropped)}")

    return RunManifest(
        shard_index=0,
        shard_count=1,
        suite=suite,
        entries=tuple(by_name[name] for name in suite),
        tags=dict(first.tags),
        merged_from=tuple(sorted(indices)),
    )


def collect_artifacts(
    manifest: RunManifest, source_dir: Union[str, Path], target_dir: Union[str, Path]
) -> None:
    """Copy one shard's artifacts under ``target_dir``.

    Artifact paths are recorded relative to a shard's output directory,
    so they keep meaning the same thing under the merge target.  A
    recorded artifact missing on disk is an error (the shard upload was
    incomplete).
    """
    source = Path(source_dir)
    target = Path(target_dir)
    for entry in manifest.entries:
        for relpath in entry.artifacts.values():
            src = source / relpath
            if not src.exists():
                raise ShardError(
                    f"study {entry.name!r}: artifact {relpath} missing from {source}"
                )
            dst = target / relpath
            dst.parent.mkdir(parents=True, exist_ok=True)
            dst.write_bytes(src.read_bytes())
