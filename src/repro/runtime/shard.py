"""Deterministic work sharding and per-shard run manifests.

The study suite is embarrassingly parallel across *studies* (and, inside
one study, across sweep points), so the cheapest way to scale it beyond
one host is a deterministic partitioning plan: every host computes the
same plan from the same inputs and picks its ``--shard-index`` slice —
no coordinator, no queue.  Two primitives implement that:

* :func:`plan_shard` splits an ordered suite of study names into
  ``shard_count`` near-equal slices.  Assignment is computed on the
  *sorted* names, so it is stable under registry reordering; the
  returned selection preserves the caller's (registry) order so
  per-shard output matches the single-host run's ordering.
* :func:`assign_fingerprint` / :func:`partition_fingerprints` map any
  content fingerprint (:mod:`repro.runtime.fingerprint`) onto a shard,
  for splitting one study's sweep-point space across hosts.

Each shard records what it did in a :class:`RunManifest` written next to
its outputs (``manifest.json``): one :class:`ManifestEntry` per study
with status, row count, telemetry counters, artifact paths, and the
study's content fingerprint (:func:`study_fingerprint` — parameters ×
cache schema tags × an mtime-independent source digest).  Manifests
serve two consumers:

* :func:`merge_manifests` combines per-shard manifests into the
  single-suite view, verifying that no study was dropped, duplicated,
  or planned against a different suite/schema — the CI merge job.
* The incremental summary compares a previous manifest entry's
  fingerprint against the current one and skips studies whose artifacts
  are already up to date.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.errors import ReproError
from repro.runtime.cache import atomic_write_bytes
from repro.runtime.fingerprint import (
    EVAL_SCHEMA_TAG,
    SCHEMA_TAG,
    TRACE_SCHEMA_TAG,
    canonical_json,
    fingerprint_payload,
)

#: Version tag of the manifest payload format.  Bump on incompatible
#: changes so stale manifests are ignored instead of misread.
MANIFEST_SCHEMA = "shard-manifest-v1"

#: File name a shard's manifest is written under, next to its outputs.
MANIFEST_FILENAME = "manifest.json"

#: Statuses a manifest entry can record.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


class ShardError(ReproError):
    """A shard plan or manifest merge is inconsistent."""


def schema_tags() -> dict[str, str]:
    """The active schema tag of every persistent cache layer.

    Recorded in manifests (and usable as a CI cache key): any bump
    invalidates both the on-disk caches and incremental skips.
    """
    return {
        "arrays": SCHEMA_TAG,
        "evaluations": EVAL_SCHEMA_TAG,
        "traces": TRACE_SCHEMA_TAG,
    }


# --- shard planning -------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """One host's slice of a deterministic suite partition."""

    shard_index: int
    shard_count: int
    suite: tuple[str, ...]  # the full suite, in caller (registry) order
    selected: tuple[str, ...]  # this shard's slice, in suite order

    @property
    def is_whole_suite(self) -> bool:
        return self.shard_count == 1


def _validate_shard(shard_index: int, shard_count: int) -> None:
    if shard_count < 1:
        raise ShardError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ShardError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )


def shard_assignments(names: Iterable[str], shard_count: int) -> dict[str, int]:
    """Deterministic study -> shard assignment.

    Names are assigned round-robin over their *sorted* order, so the
    assignment depends only on the set of names and ``shard_count`` —
    never on registry iteration order — and shard sizes differ by at
    most one.
    """
    _validate_shard(0, shard_count)
    ordered = sorted(set(names))
    return {name: i % shard_count for i, name in enumerate(ordered)}


def plan_shard(
    suite: Sequence[str], shard_index: int = 0, shard_count: int = 1
) -> ShardPlan:
    """This shard's slice of ``suite`` (study names, registry order)."""
    _validate_shard(shard_index, shard_count)
    names = list(suite)
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ShardError(f"suite contains duplicate studies: {', '.join(dupes)}")
    assignment = shard_assignments(names, shard_count)
    selected = tuple(n for n in names if assignment[n] == shard_index)
    return ShardPlan(
        shard_index=shard_index,
        shard_count=shard_count,
        suite=tuple(names),
        selected=selected,
    )


def assign_fingerprint(fingerprint: str, shard_count: int) -> int:
    """The shard a content fingerprint belongs to.

    Uses the fingerprint's leading 64 bits, so the assignment is stable
    across runs, hosts, and orderings — the point-space analogue of
    :func:`shard_assignments` for splitting one study's sweep across
    hosts via the existing point/trace/evaluation fingerprints.
    """
    _validate_shard(0, shard_count)
    return int(fingerprint[:16], 16) % shard_count


def partition_fingerprints(
    items: Iterable[Any],
    shard_index: int,
    shard_count: int,
    key=lambda item: item,
) -> list[Any]:
    """The items whose fingerprint (via ``key``) lands on this shard."""
    _validate_shard(shard_index, shard_count)
    return [
        item
        for item in items
        if assign_fingerprint(key(item), shard_count) == shard_index
    ]


@dataclass(frozen=True)
class PointShard:
    """One host's slice of a study's fingerprinted sweep-point space.

    The intra-study analogue of :class:`ShardPlan`: points are assigned
    by :func:`assign_fingerprint` on their content fingerprint, so the
    partition is deterministic, coordinator-free, and stable under point
    reordering.  ``count == 1`` selects everything (the single-host run).
    """

    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        _validate_shard(self.index, self.count)

    @property
    def is_whole_space(self) -> bool:
        return self.count == 1

    def selects(self, fingerprint: str) -> bool:
        """Does this shard own the point with this content fingerprint?"""
        return assign_fingerprint(fingerprint, self.count) == self.index

    def partition(self, items: Iterable[Any], key=lambda item: item) -> list[Any]:
        """The items (via ``key`` -> fingerprint) this shard owns."""
        return partition_fingerprints(items, self.index, self.count, key=key)

    def to_dict(self) -> dict[str, int]:
        return {"index": self.index, "count": self.count}

    @classmethod
    def balanced(
        cls,
        index: int,
        count: int,
        fingerprints: Iterable[str],
        costs=None,
    ) -> "PointShard":
        """A cost-balanced shard of an explicit point space.

        LPT bin-packing over per-fingerprint predicted ``costs`` (see
        :mod:`repro.runtime.schedule`); with ``costs=None`` the
        membership degrades to exactly this class's round-robin
        partition.  The result is still an opaque point-set selector to
        manifests and merge verification.
        """
        from repro.runtime.schedule import plan_balanced

        return plan_balanced(index, count, fingerprints, costs=costs)


def point_set_digest(fingerprints: Iterable[str]) -> str:
    """Order-independent digest of a set of point fingerprints.

    Manifests record the digest of a study's *planned* point space next
    to this shard's *selected* slice, so :func:`merge_manifests` can
    verify the shards' slices reassemble exactly the planned space
    without every manifest carrying the full planned list.
    """
    digest = hashlib.sha256()
    for fingerprint in sorted(set(fingerprints)):
        digest.update(fingerprint.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def point_shard_section(
    shard: PointShard,
    planned: Iterable[str],
    selected: Iterable[str],
    completed: Iterable[str],
    poisoned: Iterable[str] = (),
    scheme: str = "fingerprint",
) -> dict[str, Any]:
    """The manifest payload describing one study's point-shard slice.

    ``planned`` is the study's full sweep-point space (identical on
    every shard), ``selected`` this shard's deterministic slice of it,
    and ``completed`` the selected points that actually characterized
    (a selected point can fail under ``on_error="skip"``).  ``poisoned``
    points stay *selected* — this shard owns them, preserving the merge
    step's exactly-once partition — but are quarantined: they exhausted
    their transient-failure retry budget without completing, and a
    re-run should re-attempt them.

    ``scheme`` records how the slice was *derived* — ``"fingerprint"``
    (round-robin hashing), ``"balanced"`` (cost-balanced planning), or
    ``"queue"`` (pull-based leasing).  Merge verification is
    scheme-independent (it checks the selected sets, not how they were
    chosen), but fingerprint re-verification needs it to reconstruct
    the selector a run actually used.
    """
    planned = set(planned)
    selected = set(selected)
    return {
        "index": shard.index,
        "count": shard.count,
        "scheme": scheme,
        "planned": len(planned),
        "planned_digest": point_set_digest(planned),
        "selected": sorted(selected),
        "completed": len(set(completed)),
        "poisoned": sorted(set(poisoned)),
    }


# --- study fingerprints (incremental skip keys) ---------------------------


@lru_cache(maxsize=1)
def source_digest() -> str:
    """Content hash of every ``repro`` source file.

    mtime-independent: only file *contents* (and relative paths)
    participate, so a fresh checkout of the same revision digests
    identically on every host.  Any source change invalidates every
    incremental skip — conservative, but never wrong.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def study_fingerprint(
    spec,
    overrides: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
    point_shard: Optional[PointShard] = None,
) -> str:
    """Stable content key for one configured study run.

    Everything that can change the study's artifacts participates: the
    spec's identity and effective parameters, the report options, the
    runtime seed override, every cache schema tag, and the source
    digest.  Matching fingerprints mean a re-run would reproduce the
    existing artifacts, so the incremental summary may skip it.

    A point-sharded run produces only its slice of the artifacts, so an
    active ``point_shard`` (``count > 1``) participates too; the
    whole-space selector (or ``None``) leaves the key identical to a
    plain single-host run.
    """
    params = {**dict(spec.params), **dict(overrides or {})}
    try:
        payload = {
            "study": spec.name,
            "figure": spec.figure,
            "description": spec.description,
            "params": json.loads(canonical_json(params)),
            "report": dict(spec.report),
            "seed": seed,
            "schema_tags": schema_tags(),
            "source": source_digest(),
        }
        if point_shard is not None and not point_shard.is_whole_space:
            payload["point_shard"] = point_shard.to_dict()
    except TypeError as exc:
        raise ShardError(
            f"study {spec.name!r} has non-JSON-able parameters: {exc}"
        ) from exc
    return fingerprint_payload(payload)


# --- run manifests --------------------------------------------------------


@dataclass(frozen=True)
class ManifestEntry:
    """One study's outcome as recorded in a shard manifest."""

    name: str
    status: str  # STATUS_OK | STATUS_CACHED | STATUS_FAILED
    fingerprint: str = ""
    rows: int = 0
    elapsed_s: float = 0.0
    error: str = ""
    artifacts: Mapping[str, str] = field(default_factory=dict)  # kind -> relpath
    telemetry: Mapping[str, int] = field(default_factory=dict)  # counter -> value
    #: Point-shard accounting (see :func:`point_shard_section`); empty
    #: when the study ran its whole point space.
    point_shard: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in (STATUS_OK, STATUS_CACHED, STATUS_FAILED):
            raise ShardError(
                f"entry {self.name!r}: unknown status {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "rows": int(self.rows),
            "elapsed_s": float(self.elapsed_s),
            "error": self.error,
            "artifacts": dict(self.artifacts),
            # Counts stay integers; the *_wall_s accumulators are
            # fractional seconds and must survive the round trip.
            "telemetry": {
                k: (float(v) if str(k).endswith("_wall_s") else int(v))
                for k, v in self.telemetry.items()
            },
            "point_shard": dict(self.point_shard),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ManifestEntry":
        try:
            return cls(
                name=str(payload["name"]),
                status=str(payload["status"]),
                fingerprint=str(payload.get("fingerprint", "")),
                rows=int(payload.get("rows", 0)),
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
                error=str(payload.get("error", "")),
                artifacts=dict(payload.get("artifacts", {})),
                telemetry=dict(payload.get("telemetry", {})),
                point_shard=dict(payload.get("point_shard", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(f"malformed manifest entry: {exc}") from exc


@dataclass(frozen=True)
class RunManifest:
    """What one shard (or a merged suite) ran, and where the outputs are.

    ``entries`` describe exactly the studies this run targeted — the
    merge step's unit of accounting.  ``retained`` carries forward
    entries from earlier runs into the same output directory whose
    studies this run did *not* target (e.g. a later ``--only`` subset),
    so their incremental state survives; merging ignores them.
    """

    shard_index: int
    shard_count: int
    suite: tuple[str, ...]  # every study the partitioned run targeted
    entries: tuple[ManifestEntry, ...]  # this shard's studies, suite order
    tags: Mapping[str, str] = field(default_factory=schema_tags)
    merged_from: tuple[int, ...] = ()  # shard indices a merge combined
    retained: tuple[ManifestEntry, ...] = ()  # prior runs' other studies
    point_merged_from: tuple[int, ...] = ()  # point-shard indices combined
    #: Intra-study point sharding this run applied (1 = whole space).
    point_shard_index: int = 0
    point_shard_count: int = 1

    def __post_init__(self) -> None:
        _validate_shard(self.shard_index, self.shard_count)
        _validate_shard(self.point_shard_index, self.point_shard_count)

    @property
    def point_shard(self) -> PointShard:
        return PointShard(self.point_shard_index, self.point_shard_count)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(entry.name for entry in self.entries)

    def entry_for(self, name: str) -> Optional[ManifestEntry]:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def lookup(self, name: str) -> Optional[ManifestEntry]:
        """This run's entry for ``name``, or a retained prior one."""
        entry = self.entry_for(name)
        if entry is not None:
            return entry
        for entry in self.retained:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "point_shard_index": self.point_shard_index,
            "point_shard_count": self.point_shard_count,
            "suite": list(self.suite),
            "schema_tags": dict(self.tags),
            "merged_from": list(self.merged_from),
            "point_merged_from": list(self.point_merged_from),
            "entries": [entry.to_dict() for entry in self.entries],
            "retained": [entry.to_dict() for entry in self.retained],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        if not isinstance(payload, Mapping):
            raise ShardError("manifest root must be an object")
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise ShardError(
                f"manifest schema {payload.get('schema')!r} is not "
                f"{MANIFEST_SCHEMA!r} (regenerate the shard outputs)"
            )
        try:
            return cls(
                shard_index=int(payload["shard_index"]),
                shard_count=int(payload["shard_count"]),
                suite=tuple(str(n) for n in payload["suite"]),
                entries=tuple(
                    ManifestEntry.from_dict(e) for e in payload["entries"]
                ),
                tags=dict(payload.get("schema_tags", {})),
                merged_from=tuple(int(i) for i in payload.get("merged_from", ())),
                retained=tuple(
                    ManifestEntry.from_dict(e) for e in payload.get("retained", ())
                ),
                point_shard_index=int(payload.get("point_shard_index", 0)),
                point_shard_count=int(payload.get("point_shard_count", 1)),
                point_merged_from=tuple(
                    int(i) for i in payload.get("point_merged_from", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(f"malformed manifest: {exc}") from exc

    # --- persistence ------------------------------------------------------

    @staticmethod
    def path_in(directory: Union[str, Path]) -> Path:
        return Path(directory) / MANIFEST_FILENAME

    def write(self, directory: Union[str, Path]) -> Path:
        """Persist atomically (temp + rename): an interrupted run never
        leaves a truncated manifest that would discard incremental state."""
        path = self.path_in(directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, source: Union[str, Path]) -> "RunManifest":
        """Read a manifest from a file, or from a shard output directory."""
        path = Path(source)
        if path.is_dir():
            path = cls.path_in(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ShardError(f"cannot read manifest {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ShardError(f"{path}: invalid manifest JSON ({exc})") from exc
        return cls.from_dict(payload)

    @classmethod
    def try_load(cls, directory: Union[str, Path]) -> Optional["RunManifest"]:
        """The directory's manifest, or ``None`` when absent or unusable.

        The incremental summary uses this: a missing or stale manifest
        simply means nothing can be skipped.
        """
        if not cls.path_in(directory).exists():
            return None
        try:
            return cls.load(directory)
        except ShardError:
            return None


def _verify_point_partition(
    name: str, items: Sequence[tuple[RunManifest, ManifestEntry]]
) -> dict[str, Any]:
    """Check one study's point-shard slices reassemble the planned space.

    Every entry's ``point_shard`` section must describe the same planned
    point set, the selected slices must be pairwise disjoint (no point
    run twice), and their union must be exactly the planned set (no
    point dropped).  Poisoned points (transient-failure retry budget
    exhausted) count as covered — *exactly-once-or-poisoned* — but must
    be a subset of their shard's selected slice, and the per-shard
    counts must reconcile.  Returns aggregate accounting for the merged
    entry.
    """
    sections = []
    for manifest, entry in items:
        section = dict(entry.point_shard)
        if not section:
            section = {
                "index": manifest.point_shard_index,
                "count": manifest.point_shard_count,
                "planned": 0,
                "planned_digest": point_set_digest(()),
                "selected": [],
                "completed": 0,
                "poisoned": [],
            }
        recorded = (int(section.get("index", -1)), int(section.get("count", 0)))
        if recorded != (manifest.point_shard_index, manifest.point_shard_count):
            raise ShardError(
                f"study {name!r}: point-shard section {recorded[0]}/{recorded[1]} "
                f"does not match its manifest's point shard "
                f"{manifest.point_shard_index}/{manifest.point_shard_count}"
            )
        sections.append(section)

    planned = {int(s.get("planned", 0)) for s in sections}
    digests = {str(s.get("planned_digest", "")) for s in sections}
    if len(planned) != 1 or len(digests) != 1:
        raise ShardError(
            f"study {name!r}: point shards disagree on the planned point "
            "space (were the shards run against different parameters or "
            "source revisions?)"
        )
    union: set[str] = set()
    total_selected = 0
    all_poisoned: set[str] = set()
    for section in sections:
        selected = [str(fp) for fp in section.get("selected", ())]
        duplicated = union.intersection(selected)
        if duplicated:
            raise ShardError(
                f"study {name!r}: {len(duplicated)} point(s) were run by "
                f"more than one point shard (e.g. {sorted(duplicated)[0][:16]}…)"
            )
        union.update(selected)
        total_selected += len(selected)
        poisoned = {str(fp) for fp in section.get("poisoned", ())}
        stray = poisoned - set(selected)
        if stray:
            raise ShardError(
                f"study {name!r}: {len(stray)} poisoned point(s) are not in "
                f"their shard's selected slice (e.g. {sorted(stray)[0][:16]}…)"
            )
        all_poisoned.update(poisoned)
    planned_count = planned.pop()
    if len(union) != planned_count or point_set_digest(union) != digests.pop():
        raise ShardError(
            f"study {name!r}: point shards cover {len(union)} of "
            f"{planned_count} planned points — at least one sweep point "
            "was dropped by every shard"
        )
    # Coverage holds; now the per-shard books must reconcile (a shard
    # cannot claim more outcomes than the slice it was handed).
    for section in sections:
        completed = int(section.get("completed", 0))
        poisoned_count = len(set(section.get("poisoned", ())))
        if completed + poisoned_count > len(section.get("selected", ())):
            raise ShardError(
                f"study {name!r}: a point shard reports more completed + "
                "poisoned points than it selected"
            )
    return {
        "planned": planned_count,
        "selected": total_selected,
        "completed": sum(int(s.get("completed", 0)) for s in sections),
        "poisoned": sorted(all_poisoned),
    }


def _combine_point_entries(
    name: str, items: Sequence[tuple[RunManifest, ManifestEntry]]
) -> ManifestEntry:
    """One study's merged entry from its verified point-shard slices.

    Counts are summed; the fingerprint is left empty because a slice
    fingerprint identifies only its slice — the merge driver that
    re-materializes the whole-space artifacts records the single-host
    fingerprint (see :func:`repro.studies.summary.merge_shards`).
    """
    entries = [
        entry
        for _, entry in sorted(items, key=lambda item: item[0].point_shard_index)
    ]
    if any(entry.status == STATUS_FAILED for entry in entries):
        status = STATUS_FAILED
    elif all(entry.status == STATUS_CACHED for entry in entries):
        status = STATUS_CACHED
    else:
        status = STATUS_OK
    counters: dict[str, int] = {}
    for entry in entries:
        for key, value in entry.telemetry.items():
            counters[key] = counters.get(key, 0) + int(value)
    return ManifestEntry(
        name=name,
        status=status,
        fingerprint="",
        rows=sum(entry.rows for entry in entries),
        elapsed_s=sum(entry.elapsed_s for entry in entries),
        error="; ".join(entry.error for entry in entries if entry.error),
        # A failed study is neither copied nor re-materialized by the
        # merge driver, so advertising any shard's (partial) artifact
        # paths would point at files absent from the merged output.
        artifacts={} if status == STATUS_FAILED else dict(entries[0].artifacts),
        telemetry=counters,
    )


def merge_manifests(manifests: Sequence[RunManifest]) -> RunManifest:
    """Combine per-shard manifests into the single-suite manifest.

    Verifies the shards describe one coherent partitioned run: identical
    suite and schema tags, one manifest per (shard, point-shard) index
    pair with none missing, and every suite study appearing exactly once
    across all shards.  Under point sharding (``point_shard_count > 1``)
    a study legitimately appears once per point shard; its slices are
    verified to cover the planned point space exactly once — no sweep
    point dropped, none run twice — and combined into one entry.
    Entries are returned in suite order, so the merged table matches a
    single-host run's ordering.
    """
    if not manifests:
        raise ShardError("no manifests to merge")
    first = manifests[0]
    suite = first.suite
    for manifest in manifests[1:]:
        if manifest.suite != suite:
            raise ShardError(
                "manifests disagree on the suite: "
                f"{list(suite)} vs {list(manifest.suite)}"
            )
        if dict(manifest.tags) != dict(first.tags):
            raise ShardError(
                "manifests disagree on cache schema tags: "
                f"{dict(first.tags)} vs {dict(manifest.tags)}"
            )
        if manifest.shard_count != first.shard_count:
            raise ShardError(
                f"manifests disagree on shard_count: "
                f"{first.shard_count} vs {manifest.shard_count}"
            )
        if manifest.point_shard_count != first.point_shard_count:
            raise ShardError(
                f"manifests disagree on point_shard_count: "
                f"{first.point_shard_count} vs {manifest.point_shard_count}"
            )
    point_count = first.point_shard_count
    pairs = [(m.shard_index, m.point_shard_index) for m in manifests]
    if len(set(pairs)) != len(pairs):
        dupes = sorted({p for p in pairs if pairs.count(p) > 1})
        shown = sorted(p[0] for p in dupes) if point_count == 1 else dupes
        raise ShardError(f"duplicate shard manifests for indices {shown}")
    expected = {(i, j) for i in range(first.shard_count) for j in range(point_count)}
    missing = sorted(expected - set(pairs))
    if missing:
        shown = sorted(p[0] for p in missing) if point_count == 1 else missing
        raise ShardError(f"missing shard manifests for indices {shown}")

    by_name: dict[str, list[tuple[RunManifest, ManifestEntry]]] = {}
    for manifest in manifests:
        for entry in manifest.entries:
            if entry.name not in suite:
                raise ShardError(
                    f"study {entry.name!r} is not part of the planned suite"
                )
            by_name.setdefault(entry.name, []).append((manifest, entry))

    merged_entries: dict[str, ManifestEntry] = {}
    for name, items in by_name.items():
        owners = {manifest.shard_index for manifest, _ in items}
        if len(owners) > 1 or (point_count == 1 and len(items) > 1):
            raise ShardError(f"study {name!r} was run by more than one shard")
        if point_count == 1:
            merged_entries[name] = items[0][1]
            continue
        point_indices = sorted(m.point_shard_index for m, _ in items)
        if point_indices != list(range(point_count)):
            raise ShardError(
                f"study {name!r} appears in point shards {point_indices}, "
                f"expected every index in [0, {point_count})"
            )
        _verify_point_partition(name, items)
        merged_entries[name] = _combine_point_entries(name, items)

    dropped = [name for name in suite if name not in merged_entries]
    if dropped:
        raise ShardError(f"studies dropped by every shard: {', '.join(dropped)}")

    return RunManifest(
        shard_index=0,
        shard_count=1,
        suite=suite,
        entries=tuple(merged_entries[name] for name in suite),
        tags=dict(first.tags),
        merged_from=tuple(sorted({p[0] for p in pairs})),
        point_merged_from=(
            tuple(sorted({p[1] for p in pairs})) if point_count > 1 else ()
        ),
    )


def collect_artifacts(
    manifest: RunManifest,
    source_dir: Union[str, Path],
    target_dir: Union[str, Path],
    skip: Iterable[str] = (),
) -> None:
    """Copy one shard's artifacts under ``target_dir``.

    Artifact paths are recorded relative to a shard's output directory,
    so they keep meaning the same thing under the merge target.  A
    recorded artifact missing on disk is an error (the shard upload was
    incomplete).  Studies named in ``skip`` are left alone — the merge
    driver uses this for point-sharded studies, whose per-shard CSVs are
    partial and are re-materialized instead of copied.
    """
    source = Path(source_dir)
    target = Path(target_dir)
    skip = set(skip)
    for entry in manifest.entries:
        if entry.name in skip:
            continue
        for relpath in entry.artifacts.values():
            src = source / relpath
            if not src.exists():
                raise ShardError(
                    f"study {entry.name!r}: artifact {relpath} missing from {source}"
                )
            dst = target / relpath
            dst.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(dst, src.read_bytes())
