"""Fault-tolerant task execution: retries, pool recovery, watchdog.

This module is the single place that knows how to keep a sweep alive on
imperfect infrastructure.  :func:`run_resilient` drives a set of keyed
tasks to one of three terminal states each:

``ok``
    The task produced a value.
``failed``
    The task raised a *deterministic* error (:class:`~repro.errors.ReproError`
    that is not transient) — retrying the same inputs would reproduce the
    same failure, so it fails immediately.
``poisoned``
    The task kept raising *transient* errors (worker crashes, injected
    chaos faults, deadline timeouts) until its retry budget ran out.
    The captured exception rides along so manifests can quarantine the
    point with its cause.

Recovery machinery, all bounded and deterministic:

- ``BrokenProcessPool`` rebuilds the pool and re-dispatches only the
  chunks that were in flight; each such chunk is re-queued as singleton
  units charged one transient attempt (the innocent neighbours of the
  crashed point succeed on retry, the culprit exhausts its budget).
- A per-point wall-clock deadline (``RetryPolicy.deadline_s``) is
  enforced by a watchdog: overdue workers are killed, the pool is
  respawned, and the overdue point is charged a transient attempt.
  Deadlines force ``chunksize=1`` and a sliding submission window so a
  submitted future is genuinely running.
- Retry backoff is exponential with deterministic jitter derived from
  ``(key, attempt)`` — reproducible, yet de-synchronized across points.

Every rebuild charges at least one task an attempt and attempts are
bounded, so the loop terminates even under a 100% crash rate.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigError, ReproError, TransientError
from .chaos import ChaosOptions

__all__ = [
    "RetryPolicy",
    "TaskOutcome",
    "classify_error",
    "run_resilient",
]

# Watchdog poll cadence while futures are in flight with deadlines or
# cooling tasks pending.
_TICK_S = 0.05
# Slack added to the per-point deadline before declaring a worker stuck,
# covering pool dispatch overhead.
_DEADLINE_GRACE_S = 0.25


def classify_error(error: BaseException) -> str:
    """Classify an exception as ``"transient"`` or ``"deterministic"``.

    Transient: :class:`TransientError` (includes chaos injections) and
    broken-pool/timeout infrastructure faults.  Everything else raised
    by the model layer is deterministic — same inputs, same failure.
    """

    if isinstance(error, TransientError):
        return "transient"
    if isinstance(error, (BrokenProcessPool, TimeoutError)):
        return "transient"
    return "deterministic"


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried.

    ``max_attempts`` counts total tries per task (1 disables retries).
    Backoff for attempt *n* (1-based retry index) is
    ``backoff_s * multiplier**(n-1)`` capped at ``max_backoff_s``, plus
    up to 50% deterministic jitter keyed by ``(task key, attempt)``.
    ``deadline_s`` is the per-point wall-clock budget enforced by the
    watchdog (pool mode only; ``None`` disables it).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or isinstance(self.max_attempts, bool):
            raise ConfigError(f"retry max_attempts must be an int, got {self.max_attempts!r}")
        if self.max_attempts < 1:
            raise ConfigError(f"retry max_attempts must be >= 1, got {self.max_attempts}")
        for name in ("backoff_s", "multiplier", "max_backoff_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(f"retry {name} must be a number, got {value!r}")
            if float(value) < 0:
                raise ConfigError(f"retry {name} must be >= 0, got {value!r}")
        if self.deadline_s is not None:
            if not isinstance(self.deadline_s, (int, float)) or isinstance(
                self.deadline_s, bool
            ):
                raise ConfigError(f"retry deadline_s must be a number, got {self.deadline_s!r}")
            if float(self.deadline_s) <= 0:
                raise ConfigError(f"retry deadline_s must be > 0, got {self.deadline_s!r}")

    def backoff_for(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (1-based) of ``key``."""

        if attempt < 1:
            return 0.0
        base = min(
            float(self.backoff_s) * float(self.multiplier) ** (attempt - 1),
            float(self.max_backoff_s),
        )
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        return min(base * (1.0 + 0.5 * jitter), float(self.max_backoff_s))

    def to_dict(self) -> Dict[str, object]:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "RetryPolicy":
        if not isinstance(mapping, Mapping):
            raise ConfigError(f"retry section must be a mapping, got {mapping!r}")
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigError(
                f"unknown retry option(s) {unknown}; known options: {sorted(known)}"
            )
        return cls(**dict(mapping))


@dataclass
class TaskOutcome:
    """Terminal state of one keyed task."""

    key: str
    status: str  # "ok" | "failed" | "poisoned"
    value: Any = None
    error: str = ""
    attempts: int = 1
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# One pending execution of a task at a given attempt.
_Entry = Tuple[str, int, Any]  # (key, attempt, item)


def _run_task_chunk(
    payload: Tuple[Callable[[Any], Any], Optional[ChaosOptions], bool, List[_Entry]],
) -> List[Tuple[str, str, Any, float]]:
    """Worker-side chunk runner.

    Returns one record per entry: ``(key, status, value_or_error, duration_s)``
    with status ``"ok"`` / ``"transient"`` / ``"deterministic"``.  Errors
    outside :class:`ReproError` propagate (programming bugs should crash
    loudly, exactly as they did before the resilience layer existed).
    """

    fn, chaos, in_pool, entries = payload
    records: List[Tuple[str, str, Any, float]] = []
    for key, attempt, item in entries:
        start = time.perf_counter()
        try:
            if chaos is not None:
                # Items that roll poison per member (batched
                # characterization) opt out of the group-key roll so the
                # poisoned set matches the unbatched execution exactly.
                chaos.worker_fault(
                    key,
                    attempt,
                    in_pool=in_pool,
                    poison=not getattr(item, "chaos_poison_inline", False),
                )
            value = fn(item)
        except TransientError as exc:
            records.append((key, "transient", str(exc), time.perf_counter() - start))
        except ReproError as exc:
            records.append((key, "deterministic", str(exc), time.perf_counter() - start))
        else:
            records.append((key, "ok", value, time.perf_counter() - start))
    return records


def _chunk_entries(entries: List[_Entry], chunksize: int) -> List[List[_Entry]]:
    return [entries[i : i + chunksize] for i in range(0, len(entries), chunksize)]


def run_resilient(
    tasks: Sequence[Tuple[str, Any]],
    fn: Callable[[Any], Any],
    *,
    workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosOptions] = None,
    chunksize: Optional[int] = None,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    on_retry: Optional[Callable[[str, int, str], None]] = None,
) -> Dict[str, TaskOutcome]:
    """Run keyed tasks to terminal outcomes, surviving infrastructure faults.

    ``tasks`` is a sequence of unique ``(key, item)`` pairs; ``fn`` must be
    picklable when ``workers > 1``.  ``on_outcome`` is invoked once per
    task in completion order — if it raises, outstanding work is cancelled
    and the exception propagates (this is how ``on_error="raise"`` keeps
    its abort-the-sweep semantics).  ``on_retry(key, next_attempt, error)``
    fires before each backoff sleep.

    Returns ``{key: TaskOutcome}`` for every task.
    """

    policy = policy or RetryPolicy()
    keys = [key for key, _ in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("run_resilient task keys must be unique")
    items = dict(tasks)
    outcomes: Dict[str, TaskOutcome] = {}

    def finalize(outcome: TaskOutcome) -> None:
        outcomes[outcome.key] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    if workers <= 1 or len(tasks) <= 1:
        _run_serial(tasks, fn, policy, chaos, finalize, on_retry)
        return outcomes

    _run_pool(tasks, fn, workers, policy, chaos, chunksize, items, finalize, on_retry)
    return outcomes


def _run_serial(
    tasks: Sequence[Tuple[str, Any]],
    fn: Callable[[Any], Any],
    policy: RetryPolicy,
    chaos: Optional[ChaosOptions],
    finalize: Callable[[TaskOutcome], None],
    on_retry: Optional[Callable[[str, int, str], None]],
) -> None:
    for key, item in tasks:
        attempt = 0
        while True:
            records = _run_task_chunk((fn, chaos, False, [(key, attempt, item)]))
            _, status, payload, duration = records[0]
            if status == "ok":
                finalize(TaskOutcome(key, "ok", value=payload, attempts=attempt + 1,
                                     duration_s=duration))
                break
            if status == "deterministic":
                finalize(TaskOutcome(key, "failed", error=payload, attempts=attempt + 1,
                                     duration_s=duration))
                break
            attempt += 1
            if attempt >= policy.max_attempts:
                finalize(TaskOutcome(key, "poisoned", error=payload, attempts=attempt,
                                     duration_s=duration))
                break
            if on_retry is not None:
                on_retry(key, attempt, payload)
            delay = policy.backoff_for(key, attempt)
            if delay > 0:
                time.sleep(delay)


def _run_pool(
    tasks: Sequence[Tuple[str, Any]],
    fn: Callable[[Any], Any],
    workers: int,
    policy: RetryPolicy,
    chaos: Optional[ChaosOptions],
    chunksize: Optional[int],
    items: Dict[str, Any],
    finalize: Callable[[TaskOutcome], None],
    on_retry: Optional[Callable[[str, int, str], None]],
) -> None:
    # Deadlines require chunksize=1 plus a submission window capped at
    # the worker count: only then is a submitted future guaranteed to be
    # *running*, which is what makes wall-clock accounting meaningful.
    if policy.deadline_s is not None:
        effective_chunksize = 1
        max_inflight: Optional[int] = workers
    else:
        effective_chunksize = max(1, chunksize or _auto_chunksize(len(tasks), workers))
        max_inflight = None

    ready: deque[List[_Entry]] = deque(
        _chunk_entries([(key, 0, item) for key, item in tasks], effective_chunksize)
    )
    cooling: List[Tuple[float, List[_Entry]]] = []  # (ready_at, unit)
    inflight: Dict[Future, Tuple[List[_Entry], float]] = {}
    pool = ProcessPoolExecutor(max_workers=workers)

    def requeue_transient(entry: _Entry, error: str, duration: float) -> None:
        """Charge one transient attempt; poison on budget exhaustion."""

        key, attempt, item = entry
        next_attempt = attempt + 1
        if next_attempt >= policy.max_attempts:
            finalize(TaskOutcome(key, "poisoned", error=error, attempts=next_attempt,
                                 duration_s=duration))
            return
        if on_retry is not None:
            on_retry(key, next_attempt, error)
        ready_at = time.monotonic() + policy.backoff_for(key, next_attempt)
        cooling.append((ready_at, [(key, next_attempt, item)]))

    def handle_records(records: List[Tuple[str, str, Any, float]]) -> None:
        for key, status, payload, duration in records:
            attempt = attempts_now.get(key, 0)
            if status == "ok":
                finalize(TaskOutcome(key, "ok", value=payload, attempts=attempt + 1,
                                     duration_s=duration))
            elif status == "deterministic":
                finalize(TaskOutcome(key, "failed", error=payload, attempts=attempt + 1,
                                     duration_s=duration))
            else:
                requeue_transient((key, attempt, items[key]), payload, duration)

    # Current attempt index per key, for records coming back from workers
    # (records carry only the key; the attempt lives parent-side).
    attempts_now: Dict[str, int] = {key: 0 for key, _ in tasks}

    def note_attempts(unit: List[_Entry]) -> None:
        for key, attempt, _ in unit:
            attempts_now[key] = attempt

    def rebuild_pool() -> ProcessPoolExecutor:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        return ProcessPoolExecutor(max_workers=workers)

    try:
        while ready or cooling or inflight:
            now = time.monotonic()
            if cooling:
                still_cooling = []
                for ready_at, unit in cooling:
                    if ready_at <= now:
                        ready.append(unit)
                    else:
                        still_cooling.append((ready_at, unit))
                cooling[:] = still_cooling
            while ready and (max_inflight is None or len(inflight) < max_inflight):
                unit = ready.popleft()
                note_attempts(unit)
                future = pool.submit(_run_task_chunk, (fn, chaos, True, unit))
                inflight[future] = (unit, time.monotonic())
            if not inflight:
                if cooling:
                    time.sleep(max(0.0, min(at for at, _ in cooling) - time.monotonic()))
                continue

            timeout = _TICK_S if (cooling or policy.deadline_s is not None) else None
            done, _ = futures_wait(set(inflight), timeout=timeout,
                                   return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                unit, _submitted = inflight.pop(future)
                try:
                    records = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    for entry in unit:
                        requeue_transient(entry, f"worker process died: {exc}", 0.0)
                    continue
                handle_records(records)

            now = time.monotonic()
            overdue: List[Future] = []
            if policy.deadline_s is not None:
                budget = float(policy.deadline_s) + _DEADLINE_GRACE_S
                overdue = [
                    future
                    for future, (unit, submitted) in inflight.items()
                    if now - submitted > budget * max(1, len(unit))
                ]
            if overdue:
                # Watchdog: the stuck worker won't yield the GIL back to
                # us via the future, so kill the pool's processes and
                # respawn.  Only the overdue points are charged a
                # transient attempt; innocent in-flight neighbours are
                # re-queued at their current attempt.
                for process in list(getattr(pool, "_processes", {}).values()):
                    try:
                        process.kill()
                    except Exception:
                        pass
                broken = True
                overdue_set = set(overdue)
                for future, (unit, _submitted) in list(inflight.items()):
                    if future in overdue_set:
                        for entry in unit:
                            requeue_transient(
                                entry,
                                f"point exceeded deadline of {policy.deadline_s}s",
                                float(policy.deadline_s or 0.0),
                            )
                    else:
                        for entry in unit:
                            ready.append([entry])
                inflight.clear()
            elif broken:
                # The pool is broken: every remaining future is dead.
                # Try to salvage results that completed before the break,
                # then charge the rest a transient attempt as singletons
                # (the culprit exhausts its budget; neighbours recover).
                for future, (unit, _submitted) in list(inflight.items()):
                    salvaged = False
                    if future.done():
                        try:
                            handle_records(future.result())
                            salvaged = True
                        except Exception:
                            salvaged = False
                    if not salvaged:
                        for entry in unit:
                            requeue_transient(entry, "worker process died mid-flight", 0.0)
                inflight.clear()
            if broken:
                pool = rebuild_pool()
    except BaseException:
        for future in inflight:
            future.cancel()
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        raise
    else:
        pool.shutdown(wait=True)


def _auto_chunksize(count: int, workers: int) -> int:
    """Mirror the executor's chunking heuristic (4 chunks per worker)."""

    return max(1, count // (workers * 4) or 1)
