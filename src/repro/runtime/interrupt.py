"""Deliver SIGTERM as :class:`KeyboardInterrupt` for clean drains.

Batch drivers and the serving layer share one shutdown idiom: stop
starting new work, persist what already finished (partial manifests,
flushed caches), and exit quietly.  ``Ctrl-C`` already arrives as
``KeyboardInterrupt``; orchestrators (CI runners, systemd, Kubernetes)
send ``SIGTERM`` instead, which by default kills the process without
unwinding ``finally`` blocks.  :func:`sigterm_as_keyboard_interrupt`
funnels both through the same ``except KeyboardInterrupt`` drain path.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator


@contextlib.contextmanager
def sigterm_as_keyboard_interrupt() -> Iterator[bool]:
    """Within the block, SIGTERM raises ``KeyboardInterrupt``.

    Yields ``True`` when the handler was installed, ``False`` when it
    could not be (not the main thread, or the platform lacks SIGTERM) —
    the block still runs either way, it just keeps default signal
    behavior.  The previous handler is always restored on exit.
    """
    if (
        threading.current_thread() is not threading.main_thread()
        or not hasattr(signal, "SIGTERM")
    ):
        yield False
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):
        # Embedded interpreters can refuse signal installation.
        yield False
        return
    try:
        yield True
    finally:
        signal.signal(signal.SIGTERM, previous)
