"""Persistent, content-addressed result caches.

One JSON file per cached result, addressed by a stable content
fingerprint (:mod:`repro.runtime.fingerprint`) and fanned out over 256
two-hex-digit subdirectories so large sweeps don't produce a single
enormous directory.  Writes are atomic (temp file + ``os.replace``), so a
run interrupted mid-store never leaves a truncated entry and a re-run
resumes from whatever completed.

Invalidation is by schema tag: the tag participates in the fingerprint,
so bumping it makes every old entry unreachable.  The stored payload
additionally records the tag and is re-checked on load, guarding against
entries copied across versions.

Four stores share this machinery:

* :class:`CharacterizationCache` — array characterizations, keyed by
  :func:`~repro.runtime.fingerprint.point_fingerprint` (PR 1);
* :class:`LLCTraceCache` — regenerated LLC traffic traces, keyed by
  :func:`~repro.runtime.fingerprint.trace_fingerprint`, so repeated LLC
  and write-buffer study runs skip cache simulation entirely;
* :class:`EvaluationCache` — flattened (array x traffic) evaluation row
  blocks, keyed by
  :func:`~repro.runtime.fingerprint.evaluation_fingerprint`, so repeated
  study runs skip the evaluation loop entirely;
* :class:`OrganizationCloudCache` — full organization clouds (every
  feasible organization of one request, the Figure 12 co-design input),
  keyed by :meth:`OrganizationCloudCache.fingerprint_for`, so the
  biggest cold-run cost of the area-efficiency studies is paid once.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

from repro.errors import ReproError
from repro.nvsim.result import ArrayCharacterization
from repro.runtime.fingerprint import (
    EVAL_SCHEMA_TAG,
    SCHEMA_TAG,
    TRACE_SCHEMA_TAG,
    canonical_json,
)

if TYPE_CHECKING:
    from repro.runtime.chaos import ChaosOptions

#: Subdirectory (inside a cache root) where entries that fail integrity
#: verification are preserved for post-mortem instead of being deleted
#: or silently overwritten.  The name is deliberately longer than the
#: two-hex-digit fan-out dirs so ``??/*.json`` globs never see it.
QUARANTINE_SUBDIR = "quarantine"

#: Process-wide monotonic suffix so concurrent stores of the *same*
#: fingerprint from different threads never collide on one temp name.
_TMP_COUNTER = itertools.count()


def _tmp_path_for(path: Path) -> Path:
    """A unique sibling temp path for one atomic write.

    pid + thread id + a process-wide counter make the name unique across
    processes, across threads, and across repeated stores from the same
    thread.  The ``.tmp.`` infix keeps temp files invisible to the
    ``*.json`` entry globs; :meth:`JsonObjectCache.clear` sweeps up any
    leaked by a run that died between write and rename.
    """
    return path.parent / (
        f"{path.name}.tmp.{os.getpid()}"
        f".{threading.get_ident()}.{next(_TMP_COUNTER)}"
    )


def atomic_write_text(path: Path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` via a unique temp file + ``os.replace``.

    The shared primitive behind every durable artifact outside the JSON
    caches (warm stamps, copied shard artifacts, lint pins): a reader or
    crash-recovery pass never observes a truncated file, only the old
    content or the new.
    """
    tmp = _tmp_path_for(path)
    try:
        tmp.write_text(text, encoding=encoding)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Byte-payload twin of :func:`atomic_write_text`."""
    tmp = _tmp_path_for(path)
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_json(path: Path, payload: Any, **dumps_kwargs: Any) -> None:
    """Serialize ``payload`` and atomically write it to ``path``."""
    atomic_write_text(path, json.dumps(payload, **dumps_kwargs))


class JsonObjectCache:
    """On-disk store of JSON-able results keyed by content fingerprint.

    Subclasses define the payload format via :meth:`_encode` /
    :meth:`_decode`; everything else (layout, atomicity, schema checks,
    hit/miss/store accounting) is shared.
    """

    def __init__(
        self,
        root: Union[str, Path],
        schema_tag: str,
        chaos: Optional["ChaosOptions"] = None,
    ) -> None:
        self.root = Path(root)
        self.schema_tag = schema_tag
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries that failed integrity verification on load (bad JSON,
        #: checksum/fingerprint mismatch, undecodable payload).  Counted
        #: separately from misses: a miss is expected cold-cache
        #: behaviour, corruption is an infrastructure fault.
        self.corrupt = 0
        #: Corrupt entries successfully moved to the quarantine dir.
        self.quarantined = 0
        #: Optional fault injector (tests / chaos runs) — corrupts the
        #: on-disk entry just before a load reads it.
        self.chaos = chaos
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(f"cannot create cache directory {self.root}: {exc}") from exc

    # --- payload format (subclass responsibility) -------------------------

    def _encode(self, result) -> Any:
        """JSON-able rendering of one result."""
        raise NotImplementedError

    def _decode(self, payload):
        """Inverse of :meth:`_encode`; may raise on malformed payloads."""
        raise NotImplementedError

    # --- addressing -------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # --- operations -------------------------------------------------------

    def _checksum(self, encoded_result: Any) -> str:
        """Content checksum over the canonical form of an encoded result."""
        return hashlib.sha256(canonical_json(encoded_result).encode("utf-8")).hexdigest()

    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_SUBDIR

    def _quarantine(self, fingerprint: str, path: Path, reason: str) -> None:
        """Move a corrupt entry aside — never silently overwritten in place.

        The damaged file is preserved under ``quarantine/`` for
        post-mortem (``nvmexplorer fsck`` reports the backlog); the next
        store then writes a fresh entry at the original address.
        """
        self.corrupt += 1
        qdir = self.quarantine_dir()
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / path.name
            if dest.exists():  # keep every damaged copy — suffix, don't clobber
                dest = qdir / f"{path.name}.{next(_TMP_COUNTER)}"
            os.replace(path, dest)
        except OSError:
            return
        self.quarantined += 1

    def load(self, fingerprint: str):
        """The cached result, or ``None`` on miss or corruption.

        A missing file or a schema-tag mismatch is an ordinary miss.  An
        entry that fails integrity verification — undecodable JSON, a
        checksum or fingerprint mismatch, or a payload the decoder
        rejects — counts in ``corrupt`` (not ``misses``) and is moved to
        ``quarantine/`` so the next store cannot silently paper over it.
        Entries written before checksums existed carry no ``checksum``
        field and are accepted as-is when they decode cleanly.
        """
        path = self.path_for(fingerprint)
        if self.chaos is not None:
            self.chaos.maybe_corrupt_file(path, fingerprint)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        except UnicodeDecodeError:
            self._quarantine(fingerprint, path, "undecodable bytes")
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(fingerprint, path, "invalid JSON")
            return None
        if not isinstance(payload, dict):
            self._quarantine(fingerprint, path, "payload is not an object")
            return None
        if payload.get("schema") != self.schema_tag:
            self.misses += 1
            return None
        stored_fp = payload.get("fingerprint")
        if stored_fp is not None and stored_fp != fingerprint:
            self._quarantine(fingerprint, path, "fingerprint mismatch")
            return None
        checksum = payload.get("checksum")
        if checksum is not None and checksum != self._checksum(payload.get("result")):
            self._quarantine(fingerprint, path, "checksum mismatch")
            return None
        try:
            result = self._decode(payload["result"])
        except (ReproError, KeyError, TypeError, ValueError):
            self._quarantine(fingerprint, path, "payload failed to decode")
            return None
        self.hits += 1
        return result

    def store(self, fingerprint: str, result) -> None:
        """Persist one result atomically, with a content checksum."""
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = self._encode(result)
        payload = {
            "schema": self.schema_tag,
            "fingerprint": fingerprint,
            "checksum": self._checksum(encoded),
            "result": encoded,
        }
        tmp = _tmp_path_for(path)
        # No key sorting: the result payload must round-trip with its
        # original key order, so rows served from cache produce CSVs
        # byte-identical to freshly computed ones (column order is taken
        # from row insertion order).
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.stores += 1

    def __contains__(self, fingerprint: str) -> bool:
        """Whether an entry *file* exists (any schema version, unvalidated).

        Use :meth:`load` to know whether the entry is actually usable.
        """
        return self.path_for(fingerprint).exists()

    def fingerprints(self) -> Iterator[str]:
        """Every fingerprint currently stored (any schema version)."""
        for entry in sorted(self.root.glob("??/*.json")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Also sweeps up stale ``*.tmp.*`` files left by runs that died
        between writing a temp file and renaming it into place (those
        never count as entries — they are invisible to loads and globs).
        """
        removed = 0
        for entry in sorted(self.root.glob("??/*.json")):
            entry.unlink(missing_ok=True)
            removed += 1
        for stale in sorted(self.root.glob("??/*.tmp.*")):
            stale.unlink(missing_ok=True)
        return removed

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
        }


class CharacterizationCache(JsonObjectCache):
    """On-disk store of :class:`ArrayCharacterization` keyed by fingerprint."""

    def __init__(
        self,
        root: Union[str, Path],
        schema_tag: str = SCHEMA_TAG,
        chaos: Optional["ChaosOptions"] = None,
    ) -> None:
        super().__init__(root, schema_tag, chaos=chaos)

    def _encode(self, result: ArrayCharacterization) -> Any:
        return result.to_dict()

    def _decode(self, payload) -> ArrayCharacterization:
        return ArrayCharacterization.from_dict(payload)

    def load(self, fingerprint: str) -> Optional[ArrayCharacterization]:
        return super().load(fingerprint)


class EvaluationCache(JsonObjectCache):
    """On-disk store of (array x traffic) evaluation row blocks.

    One entry holds every flattened result row of one array evaluated
    under one traffic block — already JSON-shaped, so encode/decode only
    validate the structure.
    """

    def __init__(
        self,
        root: Union[str, Path],
        schema_tag: str = EVAL_SCHEMA_TAG,
        chaos: Optional["ChaosOptions"] = None,
    ) -> None:
        super().__init__(root, schema_tag, chaos=chaos)

    def _encode(self, result) -> Any:
        return list(result)

    def _decode(self, payload) -> list[dict]:
        if not isinstance(payload, list) or not all(
            isinstance(row, dict) for row in payload
        ):
            raise ValueError("evaluation payload must be a list of row objects")
        return payload


class OrganizationCloudCache(JsonObjectCache):
    """On-disk store of full organization clouds (Figure 12 input).

    One entry holds the complete list of feasible
    :class:`ArrayCharacterization` for one (cell, capacity, node, access
    width, bits/cell) request — the output of
    :func:`repro.nvsim.characterize.all_organizations`.  The entry shares
    :data:`~repro.runtime.fingerprint.SCHEMA_TAG` with the winner cache:
    both payloads are produced by the same model, so a model change
    invalidates both at once.
    """

    def __init__(
        self,
        root: Union[str, Path],
        schema_tag: str = SCHEMA_TAG,
        chaos: Optional["ChaosOptions"] = None,
    ) -> None:
        super().__init__(root, schema_tag, chaos=chaos)

    def _encode(self, result) -> Any:
        return [array.to_dict() for array in result]

    def _decode(self, payload) -> list[ArrayCharacterization]:
        if not isinstance(payload, list):
            raise ValueError("organization-cloud payload must be a list")
        return [ArrayCharacterization.from_dict(entry) for entry in payload]

    def fingerprint_for(
        self,
        cell,
        capacity_bytes: int,
        node_nm: int,
        access_bits: int,
        bits_per_cell: int,
    ) -> str:
        """Stable content key for one whole-cloud request.

        Unlike :func:`~repro.runtime.fingerprint.point_fingerprint` there
        is no optimization target — the cloud is target-independent.
        """
        # Imported lazily to keep this module's import graph identical to
        # the other stores (fingerprint already imports cell export).
        from repro.cells.export import cell_to_dict
        from repro.runtime.fingerprint import fingerprint_payload

        return fingerprint_payload({
            "kind": "organization-cloud",
            "schema": self.schema_tag,
            "cell": cell_to_dict(cell),
            "capacity_bytes": int(capacity_bytes),
            "node_nm": int(node_nm),
            "access_bits": int(access_bits),
            "bits_per_cell": int(bits_per_cell),
        })


def organization_cloud_cache(runtime) -> Optional[OrganizationCloudCache]:
    """The cloud store for one :class:`RuntimeOptions`, or ``None``.

    Lives under ``<cache_dir>/clouds`` next to the other stores; returns
    ``None`` when the runtime is absent or keeps no persistent cache.
    """
    if runtime is None or runtime.cache_dir is None:
        return None
    # Imported lazily: options imports nothing from this module, but the
    # subdir constant lives there with its siblings.
    from repro.runtime.options import CLOUD_CACHE_SUBDIR

    return OrganizationCloudCache(
        Path(runtime.cache_dir) / CLOUD_CACHE_SUBDIR,
        chaos=runtime.chaos,
    )


class LLCTraceCache(JsonObjectCache):
    """On-disk store of regenerated LLC traces keyed by fingerprint."""

    def __init__(
        self,
        root: Union[str, Path],
        schema_tag: str = TRACE_SCHEMA_TAG,
        chaos: Optional["ChaosOptions"] = None,
    ) -> None:
        super().__init__(root, schema_tag, chaos=chaos)

    def _encode(self, result) -> Any:
        return result.to_dict()

    def _decode(self, payload):
        # Imported lazily: repro.cachesim.llc consumes this cache, so a
        # module-level import would be circular.
        from repro.cachesim.llc import LLCTrace

        return LLCTrace.from_dict(payload)
