"""Persistent, content-addressed characterization cache.

One JSON file per characterized design point, addressed by the point's
:func:`~repro.runtime.fingerprint.point_fingerprint` and fanned out over
256 two-hex-digit subdirectories so large sweeps don't produce a single
enormous directory.  Writes are atomic (temp file + ``os.replace``), so a
sweep interrupted mid-store never leaves a truncated entry and a re-run
resumes from whatever completed.

Invalidation is by schema tag: the tag participates in the fingerprint,
so bumping :data:`~repro.runtime.fingerprint.SCHEMA_TAG` makes every old
entry unreachable.  The stored payload additionally records the tag and
is re-checked on load, guarding against entries copied across versions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import ReproError
from repro.nvsim.result import ArrayCharacterization
from repro.runtime.fingerprint import SCHEMA_TAG


class CharacterizationCache:
    """On-disk store of :class:`ArrayCharacterization` keyed by fingerprint."""

    def __init__(
        self,
        root: Union[str, Path],
        schema_tag: str = SCHEMA_TAG,
    ) -> None:
        self.root = Path(root)
        self.schema_tag = schema_tag
        self.hits = 0
        self.misses = 0
        self.stores = 0
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(f"cannot create cache directory {self.root}: {exc}") from exc

    # --- addressing -------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # --- operations -------------------------------------------------------

    def load(self, fingerprint: str) -> Optional[ArrayCharacterization]:
        """The cached characterization, or ``None`` on miss.

        Corrupt or schema-mismatched entries count as misses; they are left
        in place (a corrupt file is overwritten by the next store).
        """
        path = self.path_for(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != self.schema_tag:
            self.misses += 1
            return None
        try:
            array = ArrayCharacterization.from_dict(payload["result"])
        except (ReproError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return array

    def store(self, fingerprint: str, array: ArrayCharacterization) -> None:
        """Persist one characterization atomically."""
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": self.schema_tag,
            "fingerprint": fingerprint,
            "result": array.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        self.stores += 1

    def __contains__(self, fingerprint: str) -> bool:
        """Whether an entry *file* exists (any schema version, unvalidated).

        Use :meth:`load` to know whether the entry is actually usable.
        """
        return self.path_for(fingerprint).exists()

    def fingerprints(self) -> Iterator[str]:
        """Every fingerprint currently stored (any schema version)."""
        for entry in sorted(self.root.glob("??/*.json")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("??/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
