"""Shared execution options for sweeps and studies.

Every study and config-driven sweep accepts one :class:`RuntimeOptions`
value instead of ad-hoc ``workers=``/``cache_dir=`` keyword sprinkling:
the pool width, the persistent cache root, error policy, progress
callback, and RNG seed travel together through the study registry, the
CLI, and :class:`~repro.core.engine.DSEEngine`.

``cache_dir`` is the root of a unified on-disk layout::

    <cache_dir>/arrays/       array characterizations
    <cache_dir>/evaluations/  (array x traffic) evaluation row blocks
    <cache_dir>/traces/       regenerated LLC traffic traces
    <cache_dir>/clouds/       full organization clouds (Figure 12 studies)
    <cache_dir>/costs/        observed per-point wall-clock (cost ledger)

``trace_cache_dir`` overrides only the trace store (traces are produced
by the cache simulator, not the characterizer, so some deployments keep
them elsewhere); when unset it defaults to ``<cache_dir>/traces``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Union

from repro.runtime.chaos import ChaosOptions
from repro.runtime.resilience import RetryPolicy
from repro.runtime.shard import PointShard
from repro.runtime.telemetry import ProgressCallback

#: Subdirectories of ``cache_dir`` used by each persistent store.
ARRAY_CACHE_SUBDIR = "arrays"
EVALUATION_CACHE_SUBDIR = "evaluations"
TRACE_CACHE_SUBDIR = "traces"
CLOUD_CACHE_SUBDIR = "clouds"
COST_CACHE_SUBDIR = "costs"


@dataclass(frozen=True)
class RuntimeOptions:
    """Uniform execution options every study honors.

    Attributes
    ----------
    workers:
        Process-pool width for characterization/evaluation fan-out.
    cache_dir:
        Root of the persistent cache layout (see module docstring);
        ``None`` keeps results in memory only.
    trace_cache_dir:
        Override for the LLC-trace store; defaults to
        ``<cache_dir>/traces`` when a cache root is set.
    on_error:
        ``"raise"`` aborts on the first framework error; ``"skip"``
        records it in telemetry and keeps going.
    progress:
        Optional callback receiving one
        :class:`~repro.runtime.telemetry.ProgressEvent` per sweep point
        or evaluation block.
    seed:
        Override for every stochastic component a study touches (fault
        injection, synthetic streams); ``None`` keeps each study's
        documented default seed, preserving paper-figure reproducibility.
    point_shard_index / point_shard_count:
        Intra-study point sharding: run only the deterministic
        1/``point_shard_count`` slice of every sweep's fingerprinted
        point space (:class:`~repro.runtime.shard.PointShard`).  The
        default (``0`` of ``1``) runs the whole space.
    retry:
        Transient-failure handling for every sweep
        (:class:`~repro.runtime.resilience.RetryPolicy`): max attempts,
        backoff, and the per-point deadline watchdog.  ``None`` uses the
        policy defaults.
    chaos:
        Optional deterministic fault injection
        (:class:`~repro.runtime.chaos.ChaosOptions`) for resilience
        testing; ``None`` (the default) injects nothing.
    schedule:
        How point shards are planned: ``"fingerprint"`` (round-robin
        hashing, the PR 5 default) or ``"balanced"`` (cost-balanced LPT
        planning from the cost ledger; degrades to round-robin when the
        ledger is empty).  Ignored in queue mode.
    queue_dir:
        When set, this run pulls point batches from the shared work
        queue rooted here (:class:`~repro.runtime.schedule.WorkQueue`)
        instead of taking a static slice; ``point_shard_index`` then
        only names this consumer for manifests and claims.
    queue_batch / queue_lease_s:
        Queue-mode tuning: points per leased batch, and how long a
        lease may go without a heartbeat before any worker reclaims it.
    """

    workers: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    trace_cache_dir: Optional[Union[str, Path]] = None
    on_error: str = "raise"
    progress: Optional[ProgressCallback] = None
    seed: Optional[int] = None
    point_shard_index: int = 0
    point_shard_count: int = 1
    retry: Optional[RetryPolicy] = None
    chaos: Optional[ChaosOptions] = None
    schedule: str = "fingerprint"
    queue_dir: Optional[Union[str, Path]] = None
    queue_batch: int = 4
    queue_lease_s: float = 30.0

    def __post_init__(self) -> None:
        if int(self.workers) < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {self.on_error!r}"
            )
        if int(self.point_shard_count) < 1:
            raise ValueError(
                f"point_shard_count must be >= 1, got {self.point_shard_count!r}"
            )
        if not 0 <= int(self.point_shard_index) < int(self.point_shard_count):
            raise ValueError(
                f"point_shard_index must be in [0, {self.point_shard_count}), "
                f"got {self.point_shard_index!r}"
            )
        if self.schedule not in ("fingerprint", "balanced"):
            raise ValueError(
                f"schedule must be 'fingerprint' or 'balanced', "
                f"got {self.schedule!r}"
            )
        if int(self.queue_batch) < 1:
            raise ValueError(f"queue_batch must be >= 1, got {self.queue_batch!r}")
        if float(self.queue_lease_s) <= 0:
            raise ValueError(
                f"queue_lease_s must be > 0, got {self.queue_lease_s!r}"
            )

    @property
    def point_shard(self) -> Optional[PointShard]:
        """The active point-shard selector, or ``None`` for the whole space."""
        if int(self.point_shard_count) <= 1:
            return None
        return PointShard(int(self.point_shard_index), int(self.point_shard_count))

    @property
    def effective_trace_cache_dir(self) -> Optional[Path]:
        """Where LLC traces persist, or ``None`` when nothing is cached."""
        if self.trace_cache_dir is not None:
            return Path(self.trace_cache_dir)
        if self.cache_dir is not None:
            return Path(self.cache_dir) / TRACE_CACHE_SUBDIR
        return None

    def seed_or(self, default: int) -> int:
        """This run's seed, or the study's documented default."""
        return default if self.seed is None else int(self.seed)

    def with_progress(self, progress: Optional[ProgressCallback]) -> "RuntimeOptions":
        """A copy routing progress events to ``progress``."""
        return replace(self, progress=progress)

    def engine(self):
        """A :class:`~repro.core.engine.DSEEngine` configured from these options."""
        # Imported lazily: the engine builds on the runtime package, so a
        # module-level import here would be circular.  The field mapping
        # lives in DSEEngine.from_options — one source of truth.
        from repro.core.engine import DSEEngine

        return DSEEngine.from_options(self)


def ensure_runtime(runtime: Optional[RuntimeOptions]) -> RuntimeOptions:
    """The given options, or serial in-memory defaults."""
    return runtime if runtime is not None else RuntimeOptions()


def engine_for(runtime: Optional[RuntimeOptions]):
    """Shorthand: an engine for possibly-absent options."""
    return ensure_runtime(runtime).engine()
