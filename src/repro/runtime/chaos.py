"""Deterministic fault injection for end-to-end resilience testing.

The chaos harness makes infrastructure failure *reproducible*: every
injection decision is a pure function of the chaos ``seed``, the fault
kind, the sweep-point fingerprint, and (for per-attempt faults) the
retry attempt number.  Two runs with the same seed inject exactly the
same faults at exactly the same points, so CI can assert recovery
behaviour — poisoned points, quarantined cache files, retry counts —
against fixed expectations.

Fault kinds
-----------

``worker_error_rate``
    Worker raises a :class:`~repro.errors.ChaosInjectedError` (transient)
    before computing the point.  Keyed by ``(fingerprint, attempt)`` so a
    retry of the same point rolls fresh dice.
``worker_kill_rate``
    Worker SIGKILLs itself, breaking the process pool; the resilience
    layer must rebuild it.  Keyed by ``(fingerprint, attempt)``.  In
    serial mode (no pool) the kill is downgraded to a transient error —
    killing the only process would take the caller down with it.
``stall_rate`` / ``stall_s``
    Worker sleeps ``stall_s`` seconds before computing, tripping the
    per-point deadline watchdog when one is configured.  Keyed by
    ``(fingerprint, attempt)``.
``poison_rate``
    Worker raises a transient error on *every* attempt — keyed by
    fingerprint only — so the point deterministically exhausts its retry
    budget and lands in the manifest as ``POISONED``.
``cache_corrupt_rate``
    The cache loader corrupts the on-disk entry (truncation or ASCII
    bit-flip per ``corrupt_mode``) immediately before reading it, at
    most once per fingerprint per process.  Integrity checking must
    detect the damage, quarantine the file, and recompute — leaving the
    cache clean afterwards.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Dict, Mapping, Optional, Set, Tuple

from ..errors import ConfigError, TransientError

__all__ = [
    "ChaosInjectedError",
    "ChaosOptions",
    "parse_chaos_spec",
]


class ChaosInjectedError(TransientError):
    """A fault injected by the chaos harness (always transient)."""


# Fingerprints already corrupted in this process, keyed by chaos seed.
# Corrupting an entry at most once per process lets the recovery path
# (quarantine -> recompute -> clean re-store) actually converge instead
# of chasing its own tail.
_CORRUPTED: Set[Tuple[int, str]] = set()

_CORRUPT_MODES = ("truncate", "bitflip")

# Short spec-string aliases accepted by ``parse_chaos_spec``.
_SPEC_ALIASES: Dict[str, str] = {
    "worker_error": "worker_error_rate",
    "worker_kill": "worker_kill_rate",
    "stall": "stall_rate",
    "poison": "poison_rate",
    "cache_corrupt": "cache_corrupt_rate",
}


def _roll(seed: int, kind: str, key: str, attempt: int = 0) -> float:
    """Deterministic uniform draw in [0, 1) for one injection decision."""

    digest = hashlib.sha256(f"{seed}:{kind}:{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ChaosOptions:
    """Immutable, picklable fault-injection configuration.

    All rates are probabilities in ``[0, 1]``; a rate of zero disables
    that fault kind.  The default instance injects nothing.
    """

    seed: int = 0
    worker_error_rate: float = 0.0
    worker_kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.25
    poison_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    corrupt_mode: str = "truncate"

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(f"chaos seed must be an int, got {self.seed!r}")
        for name in (
            "worker_error_rate",
            "worker_kill_rate",
            "stall_rate",
            "poison_rate",
            "cache_corrupt_rate",
        ):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(f"chaos {name} must be a number, got {value!r}")
            if not 0.0 <= float(value) <= 1.0:
                raise ConfigError(f"chaos {name} must be in [0, 1], got {value!r}")
        if not isinstance(self.stall_s, (int, float)) or isinstance(self.stall_s, bool):
            raise ConfigError(f"chaos stall_s must be a number, got {self.stall_s!r}")
        if float(self.stall_s) < 0:
            raise ConfigError(f"chaos stall_s must be >= 0, got {self.stall_s!r}")
        if self.corrupt_mode not in _CORRUPT_MODES:
            raise ConfigError(
                f"chaos corrupt_mode must be one of {_CORRUPT_MODES}, "
                f"got {self.corrupt_mode!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault kind can actually fire."""

        return any(
            getattr(self, name) > 0
            for name in (
                "worker_error_rate",
                "worker_kill_rate",
                "stall_rate",
                "poison_rate",
                "cache_corrupt_rate",
            )
        )

    # -- injection points -------------------------------------------------

    def worker_fault(
        self, key: str, attempt: int, *, in_pool: bool, poison: bool = True
    ) -> None:
        """Maybe inject a fault before computing point ``key``.

        Called at the top of every point attempt, inside the worker when
        running in a pool and inline when running serially.  ``in_pool``
        gates SIGKILL: a serial run downgrades kills to transient errors.
        ``poison=False`` skips the poison roll: batched characterization
        tasks roll poison per *member* fingerprint (see
        :meth:`rolls_poison`) so the poisoned set is identical whether
        points run individually or batched.
        """

        if self.stall_rate > 0 and _roll(self.seed, "stall", key, attempt) < self.stall_rate:
            time.sleep(self.stall_s)
        if self.worker_kill_rate > 0 and (
            _roll(self.seed, "kill", key, attempt) < self.worker_kill_rate
        ):
            if in_pool:
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosInjectedError(
                f"chaos: injected worker crash (attempt {attempt}, serial downgrade)"
            )
        if self.worker_error_rate > 0 and (
            _roll(self.seed, "error", key, attempt) < self.worker_error_rate
        ):
            raise ChaosInjectedError(f"chaos: injected worker exception (attempt {attempt})")
        # Poison rolls ignore the attempt number on purpose: the fault
        # fires on every retry, guaranteeing the point exhausts its
        # budget and is reported POISONED — deterministically, so CI can
        # assert on the exact set.
        if poison and self.rolls_poison(key):
            raise ChaosInjectedError("chaos: injected persistent infrastructure fault")

    def rolls_poison(self, key: str) -> bool:
        """Whether ``key`` draws the (attempt-independent) poison fault."""

        return (
            self.poison_rate > 0
            and _roll(self.seed, "poison", key) < self.poison_rate
        )

    def maybe_corrupt_file(self, path: Path, key: str) -> bool:
        """Maybe corrupt the cache file at ``path`` before it is read.

        Returns True when the file was damaged.  Each fingerprint is
        corrupted at most once per process so the detect -> quarantine ->
        recompute cycle converges to a clean cache.
        """

        if self.cache_corrupt_rate <= 0:
            return False
        marker = (self.seed, key)
        if marker in _CORRUPTED:
            return False
        if _roll(self.seed, "cache", key) >= self.cache_corrupt_rate:
            return False
        try:
            data = path.read_bytes()
        except OSError:
            return False
        _CORRUPTED.add(marker)
        if self.corrupt_mode == "truncate":
            path.write_bytes(data[: len(data) // 2])
        else:  # bitflip — XOR with 0x01 keeps ASCII decodable but changes the byte
            if not data:
                return False
            position = int(_roll(self.seed, "flip", key) * len(data)) % len(data)
            flipped = bytearray(data)
            flipped[position] ^= 0x01
            path.write_bytes(bytes(flipped))
        return True

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "ChaosOptions":
        if not isinstance(mapping, Mapping):
            raise ConfigError(f"chaos section must be a mapping, got {mapping!r}")
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigError(
                f"unknown chaos option(s) {unknown}; known options: {sorted(known)}"
            )
        return cls(**dict(mapping))


def parse_chaos_spec(spec: str) -> Optional[ChaosOptions]:
    """Parse a ``--chaos`` command-line spec into :class:`ChaosOptions`.

    The spec is a comma-separated list of ``key=value`` pairs, e.g.
    ``"seed=11,worker_kill=0.1,cache_corrupt=0.3,corrupt_mode=bitflip"``.
    Keys accept both the dataclass field names and short aliases with
    the ``_rate`` suffix dropped.  ``"off"`` / empty disables chaos.
    """

    text = spec.strip()
    if not text or text.lower() == "off":
        return None
    options = ChaosOptions()
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"chaos spec entry {part!r} is not key=value")
        raw_key, _, raw_value = part.partition("=")
        key = _SPEC_ALIASES.get(raw_key.strip(), raw_key.strip())
        if key not in {field.name for field in fields(ChaosOptions)}:
            raise ConfigError(
                f"unknown chaos spec key {raw_key.strip()!r}; known keys: "
                f"{sorted({f.name for f in fields(ChaosOptions)} | set(_SPEC_ALIASES))}"
            )
        value: object = raw_value.strip()
        if key == "seed":
            try:
                value = int(value)  # type: ignore[arg-type]
            except ValueError:
                raise ConfigError(f"chaos seed must be an int, got {raw_value!r}") from None
        elif key != "corrupt_mode":
            try:
                value = float(value)  # type: ignore[arg-type]
            except ValueError:
                raise ConfigError(
                    f"chaos {key} must be a number, got {raw_value!r}"
                ) from None
        options = replace(options, **{key: value})
    return options
