"""NVMExplorer reproduction: cross-stack DSE for embedded non-volatile memory.

The package mirrors the paper's three-stage flow:

1. **Configure** — pick cells (:mod:`repro.cells`), system parameters
   (capacity, node, optimization target), and application traffic
   (:mod:`repro.traffic`), either directly or through JSON configs
   (:mod:`repro.config`).
2. **Evaluate** — characterize memory arrays (:mod:`repro.nvsim`), run the
   cross-stack analytical models (:mod:`repro.core`), and optionally inject
   faults into application data (:mod:`repro.faults`, :mod:`repro.dnn`).
3. **Explore** — filter/aggregate results (:mod:`repro.results`) and render
   them (:mod:`repro.viz`); the paper's case studies live in
   :mod:`repro.studies`.
"""

from repro.cells import (
    CellTechnology,
    TechnologyClass,
    back_gated_fefet,
    reference_rram,
    sram_cell,
    study_cells,
    tentpoles_for,
)
from repro.errors import ReproError
from repro.nvsim import ArrayCharacterization, OptimizationTarget, characterize
from repro.runtime import CharacterizationCache, ProgressEvent, SweepTelemetry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "CellTechnology",
    "TechnologyClass",
    "tentpoles_for",
    "study_cells",
    "sram_cell",
    "reference_rram",
    "back_gated_fefet",
    "characterize",
    "ArrayCharacterization",
    "OptimizationTarget",
    "CharacterizationCache",
    "ProgressEvent",
    "SweepTelemetry",
]
