"""Structure-of-arrays batch evaluation of the nvsim array model.

The scalar model (:func:`repro.nvsim.model.evaluate_organization`) walks
one :class:`~repro.nvsim.organization.ArrayOrganization` per Python call;
a characterization sweep evaluates ~150 organizations per design point
and a whole-registry suite evaluates tens of thousands.  This module
restructures that loop as numpy array programs: the candidate space is
enumerated once into flat int64 lanes (:func:`enumerate_soa`), and the
full read path, write path, leakage, sleep power, and area come out of
:func:`evaluate_soa` as float64 columns — one array expression per line
of the scalar model.

**Exactness contract.**  The scalar model is the parity oracle: every
float produced here is bit-identical (``==``, not ``isclose``) to what
``evaluate_organization`` returns for the same lane.  That holds because

* IEEE-754 ``+ - * /`` are deterministic: elementwise float64 numpy ops
  equal the corresponding CPython float ops when the association order
  is mirrored exactly — so every expression below parenthesizes the way
  the scalar source associates;
* quantities that depend only on the (cell, node) request — voltages,
  pump efficiency, driver sizing, cell geometry — are computed once in
  pure Python (often through the very same ``peripheral`` functions) and
  broadcast, so they cannot drift;
* the only transcendental in the lane math, ``ceil(log4(x))`` for
  decoder/buffer staging, is computed vectorized and then *re-verified*
  against exact ``math.log`` wherever the result is within 1e-9 of an
  integer (:func:`_ceil_log4`) — the only region where a last-ulp
  difference between ``np.log`` and libm could flip the ceiling;
* integer-valued lane math (subarray counts, grid factorization, cell
  counts) stays in int64 or exact small Python loops over unique values.

Per-lane branch structure — column-mux degree 1, buffer chains at or
below minimum load — is handled as masked lanes (``np.where``); the
FET-cell and MLC program-and-verify branches are uniform across a batch
(they depend only on the cell), so they select whole masked expression
groups at once.

**Backend seam.**  All array expressions go through the module-level
``xp`` alias (bound to numpy).  An optional CuPy/torch backend slots in
by rebinding ``xp`` — but note the exactness contract above is only
guaranteed for numpy on CPU; accelerator backends trade bit-exactness
for speed and must be validated against the oracle with tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.cells.base import AccessDevice, CellTechnology
from repro.errors import CharacterizationError
from repro.nvsim import peripheral
from repro.nvsim.model import (
    ACTIVE_AREA_LEAKAGE_PER_M2,
    BUS_ACTIVITY,
    FET_INHIBIT_FRACTION,
    MLC_PARTIAL_PULSE,
    REPEATER_SPACING,
    SENSE_SWING,
    SLEEP_LEAKAGE_PER_M2,
    SRAM_SWING,
    ArrayNumbers,
)
from repro.nvsim.organization import (
    COL_CHOICES,
    MAX_CONCURRENCY,
    MUX_CHOICES,
    ROW_CHOICES,
    ArrayOrganization,
)
from repro.nvsim.result import OptimizationTarget
from repro.tech.delay import buffer_chain_delay
from repro.tech.node import TechnologyNode

__all__ = [
    "OrganizationSoA",
    "BatchNumbers",
    "enumerate_soa",
    "evaluate_soa",
    "evaluate_many",
    "rank_metric_column",
    "feasible_indices",
    "select_winner_index",
]

#: Array backend.  Rebind to a numpy-compatible module (CuPy, a torch
#: shim) for accelerator execution; numpy is the only backend with the
#: bit-exact parity guarantee documented in the module docstring.
xp = np

#: ln(4), the base conversion CPython's ``math.log(x, 4.0)`` divides by.
_LOG4 = math.log(4.0)
#: Buffer-chain switched-capacitance factor (load plus a geometric
#: series of intermediate stages), exactly as ``buffer_chain_delay``.
_CHAIN_FACTOR = 1.0 + 1.0 / 3.0


@dataclass(frozen=True)
class OrganizationSoA:
    """The candidate-organization space of one request, as flat lanes.

    Lane order matches :func:`~repro.nvsim.organization.candidate_organizations`
    exactly (rows outer, cols middle, mux inner, infeasible lanes
    dropped), so lane ``i`` here is the ``i``-th organization the scalar
    generator yields.
    """

    rows: np.ndarray  # int64
    cols: np.ndarray  # int64
    mux: np.ndarray  # int64
    n_subarrays: np.ndarray  # int64
    active_subarrays: np.ndarray  # int64
    access_bits: int
    bits_per_cell: int

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    def concurrency_at(self, index: int) -> int:
        """Bank-level concurrency of lane ``index`` (as the scalar property)."""
        groups = int(self.n_subarrays[index]) // int(self.active_subarrays[index])
        return max(1, min(MAX_CONCURRENCY, groups))

    def organization_at(self, index: int) -> ArrayOrganization:
        """Materialize lane ``index`` back into an :class:`ArrayOrganization`."""
        return ArrayOrganization(
            rows=int(self.rows[index]),
            cols=int(self.cols[index]),
            mux=int(self.mux[index]),
            n_subarrays=int(self.n_subarrays[index]),
            active_subarrays=int(self.active_subarrays[index]),
            access_bits=self.access_bits,
            bits_per_cell=self.bits_per_cell,
        )


@dataclass(frozen=True)
class BatchNumbers:
    """Columnar :class:`~repro.nvsim.model.ArrayNumbers` for one lane set."""

    area: np.ndarray
    area_efficiency: np.ndarray
    read_latency: np.ndarray
    write_latency: np.ndarray
    read_energy: np.ndarray
    write_energy: np.ndarray
    leakage_power: np.ndarray
    sleep_power: np.ndarray

    def __len__(self) -> int:
        return int(self.area.shape[0])

    def numbers_at(self, index: int) -> ArrayNumbers:
        """Lane ``index`` as a scalar :class:`ArrayNumbers` (bit-identical)."""
        return ArrayNumbers(
            area=float(self.area[index]),
            area_efficiency=float(self.area_efficiency[index]),
            read_latency=float(self.read_latency[index]),
            write_latency=float(self.write_latency[index]),
            read_energy=float(self.read_energy[index]),
            write_energy=float(self.write_energy[index]),
            leakage_power=float(self.leakage_power[index]),
            sleep_power=float(self.sleep_power[index]),
        )

    def _slice(self, start: int, stop: int) -> "BatchNumbers":
        return BatchNumbers(
            area=self.area[start:stop],
            area_efficiency=self.area_efficiency[start:stop],
            read_latency=self.read_latency[start:stop],
            write_latency=self.write_latency[start:stop],
            read_energy=self.read_energy[start:stop],
            write_energy=self.write_energy[start:stop],
            leakage_power=self.leakage_power[start:stop],
            sleep_power=self.sleep_power[start:stop],
        )


def enumerate_soa(
    capacity_bits: int,
    access_bits: int,
    bits_per_cell: int = 1,
) -> OrganizationSoA:
    """Vectorized :func:`candidate_organizations`: the same lanes, flat.

    The grid is materialized with ``indexing='ij'`` and raveled in C
    order, which reproduces the scalar generator's loop nesting; the
    feasibility filters are the generator's skip conditions as boolean
    masks, evaluated with the same int/float arithmetic.
    """
    if capacity_bits <= 0:
        raise CharacterizationError("capacity must be positive")
    if access_bits <= 0:
        raise CharacterizationError("access width must be positive")
    rows_g, cols_g, mux_g = np.meshgrid(
        np.asarray(ROW_CHOICES, dtype=np.int64),
        np.asarray(COL_CHOICES, dtype=np.int64),
        np.asarray(MUX_CHOICES, dtype=np.int64),
        indexing="ij",
    )
    rows = rows_g.ravel()
    cols = cols_g.ravel()
    mux = mux_g.ravel()
    bits_per_subarray = (rows * cols) * bits_per_cell
    # int / int64 promotes through float64 exactly like CPython's true
    # division (both operands are exactly representable), so the ceil
    # matches math.ceil lane for lane.
    n_subarrays = np.ceil(capacity_bits / bits_per_subarray).astype(np.int64)
    keep = n_subarrays >= 1
    # Avoid gross over-provisioning (>2x the capacity wasted).
    keep &= ~(
        n_subarrays * bits_per_subarray > 2 * capacity_bits + bits_per_subarray
    )
    keep &= (cols % mux) == 0
    bits_per_activation = (cols // mux) * bits_per_cell
    active = np.ceil(access_bits / bits_per_activation).astype(np.int64)
    keep &= active <= n_subarrays
    return OrganizationSoA(
        rows=rows[keep],
        cols=cols[keep],
        mux=mux[keep],
        n_subarrays=n_subarrays[keep],
        active_subarrays=active[keep],
        access_bits=int(access_bits),
        bits_per_cell=int(bits_per_cell),
    )


def _per_unique(
    values: np.ndarray, fn: Callable[[int], float], dtype=np.float64
) -> np.ndarray:
    """Map an exact Python function over lanes, once per unique value.

    Used for the handful of lane quantities that need loop-or-log exact
    integer math (decoder stage counts, grid factorization): the unique
    value sets are tiny (row choices, subarray counts), so a Python loop
    per unique value costs nothing and inherits CPython's exact result.
    """
    out = np.empty(values.shape[0], dtype=dtype)
    for value in np.unique(values):
        out[values == value] = fn(int(value))
    return out


def _grid_nx(n_subarrays: int) -> int:
    """``ArrayOrganization.grid_shape`` nx for one subarray count."""
    nx = max(1, int(math.floor(math.sqrt(n_subarrays))))
    while n_subarrays % nx != 0:
        nx -= 1
    return nx


def _ceil_log4(ratio: np.ndarray) -> np.ndarray:
    """Vectorized ``ceil(log(ratio, 4.0))`` matching ``math`` bit-exactly.

    ``np.log`` and libm's ``log`` may disagree in the last ulp, which can
    only flip the ceiling when the quotient sits essentially on an
    integer.  Lanes within 1e-9 of an integer are therefore recomputed
    through ``math.log(x, 4.0)`` — the exact expression the scalar model
    uses — so the result is identical everywhere.
    """
    y = xp.log(ratio) / _LOG4
    n = xp.ceil(y)
    suspect = xp.abs(y - xp.rint(y)) < 1e-9
    if bool(xp.any(suspect)):
        indices = xp.nonzero(suspect)[0]
        exact = np.empty(indices.shape[0], dtype=np.float64)
        for slot, value in enumerate(ratio[indices].tolist()):
            exact[slot] = math.ceil(math.log(value, 4.0))
        n = n.copy()
        n[indices] = exact
    return n


def _buffer_chain(
    load: np.ndarray, c_min: float, vdd2: float, fo4: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Lane-wise ``buffer_chain_delay``: (delay, energy) columns.

    The at-or-below-minimum-load branch is a per-lane mask; the chain
    sizing uses :func:`_ceil_log4` for exactness.
    """
    load = xp.asarray(load, dtype=xp.float64)
    if c_min <= 0:
        return (
            xp.full(load.shape, fo4, dtype=xp.float64),
            load * vdd2,
        )
    small = load <= c_min
    # Clamp the masked-out lanes to a safe ratio; their values are
    # discarded by the where() below.
    ratio = xp.where(small, 1.0, load / c_min)
    n_stages = xp.maximum(1.0, _ceil_log4(ratio))
    delay = xp.where(small, fo4, n_stages * fo4)
    energy = xp.where(small, load * vdd2, (load * _CHAIN_FACTOR) * vdd2)
    return delay, energy


def evaluate_soa(
    cell: CellTechnology, node: TechnologyNode, soa: OrganizationSoA
) -> BatchNumbers:
    """Evaluate every lane of ``soa`` at once.

    This is :func:`~repro.nvsim.model.evaluate_organization` transposed:
    each block below corresponds to the same-named block of the scalar
    model, with lane arrays where the scalar code had per-organization
    values and pre-computed Python scalars where it had per-request
    values.  Association order is mirrored expression for expression —
    see the module docstring for why that makes the result bit-exact.
    """
    rows = soa.rows
    cols = soa.cols
    mux = soa.mux
    n_sub = soa.n_subarrays
    active = soa.active_subarrays
    access_bits = soa.access_bits
    bits = soa.bits_per_cell

    # --- per-request scalars (pure Python, exactly as the scalar model) ---
    F = node.feature_size
    vdd = node.vdd
    vdd2 = vdd**2
    c_min = node.min_transistor_gate_cap
    c_drain = node.min_transistor_drain_cap
    min_leak = node.min_transistor_leakage
    ron_min = node.min_transistor_on_resistance
    fo4 = node.logic_gate_delay
    wire_res = node.wire_res_per_um
    wire_cap = node.wire_cap_per_um
    gwire_res = node.global_wire_res_per_um
    sa_delay = node.sense_amp_delay
    sa_energy = node.sense_amp_energy
    sa_area = node.sense_amp_area

    is_fet_cell = cell.access_device is AccessDevice.TRANSISTOR_CELL
    sram_like = cell.access_device in (AccessDevice.SRAM6T, AccessDevice.GAIN_CELL)

    cw, ch = cell.cell_dimensions(F)
    cell_area = cell.cell_area(F)
    gate_load = 0.6 * c_min
    drain_load = 0.5 * c_drain
    if cell.access_device is AccessDevice.SRAM6T:
        gate_load = 2.0 * c_min  # two access FETs
        drain_load = 1.0 * c_drain
    elif cell.access_device is AccessDevice.NONE:
        gate_load = 0.1 * c_min  # selector only
        drain_load = 0.2 * c_drain

    # --- subarray geometry -------------------------------------------------
    wl_len = cols * cw
    bl_len = rows * ch
    wl_wire_cap = wire_cap * (wl_len / 1e-6)
    wl_res = wire_res * (wl_len / 1e-6)
    bl_cap = wire_cap * (bl_len / 1e-6) + rows * drain_load
    bl_res = wire_res * (bl_len / 1e-6)
    cell_area_total = (rows * cols) * cell_area

    # --- peripheral blocks (per subarray) ---------------------------------
    full_wordline_cap = wl_wire_cap + cols * gate_load

    # Row decoder: stage counts are exact per unique row choice.
    dec_stages = _per_unique(
        rows, lambda r: max(1, math.ceil(math.log(r, 4.0)))
    )
    stage_cap = 4.0 * c_min
    wl_drive_delay, wl_drive_energy = _buffer_chain(
        full_wordline_cap, c_min, vdd2, fo4
    )
    dec_delay = dec_stages * fo4 + wl_drive_delay
    dec_energy = (dec_stages * stage_cap) * vdd2 + wl_drive_energy
    dec_n_devices = (4 * rows) * 1.25
    dec_leak = (0.05 * dec_n_devices) * min_leak
    dec_gate_area = (8 * F) * (12 * F)
    dec_area = (rows * 1.25) * dec_gate_area

    # Column mux: degree-1 lanes are the zero block (masked).
    mux_active = mux > 1
    pass_gate_cap = 2.0 * c_min
    mux_delay = xp.where(mux_active, 2.0 * fo4, 0.0)
    mux_energy = xp.where(mux_active, ((cols / mux) * pass_gate_cap) * vdd2, 0.0)
    mux_leak = xp.where(mux_active, (0.02 * cols) * min_leak, 0.0)
    mux_gate_area = (6 * F) * (8 * F)
    mux_area = xp.where(mux_active, cols * mux_gate_area, 0.0)

    # Sense amplifiers (count = cols // mux, always positive here).
    sense_amps = cols // mux
    per_amp_leak = 0.4 * min_leak
    amps_energy = sense_amps * sa_energy
    amps_leak = sense_amps * per_amp_leak
    amps_area = sense_amps * sa_area

    # Write drivers: sizing is per-request; only the count is a lane.
    write_current = max(cell.set_current, cell.reset_current)
    width_factor = max(1.0, write_current / (node.ion_per_um * node.min_width_um))
    drv_gate_cap = width_factor * c_min * 2.0
    drv_delay = buffer_chain_delay(node, drv_gate_cap).delay
    drv_energy = (sense_amps * drv_gate_cap) * vdd2
    drv_leak = ((sense_amps * width_factor) * 0.15) * min_leak
    per_driver_area = width_factor * (10 * F) * (20 * F)
    drv_area = sense_amps * per_driver_area

    # Charge pump and rail efficiency: purely per-request.
    pump = peripheral.charge_pump(node, cell.write_voltage)
    eff = peripheral.pump_efficiency(node, cell.write_voltage)

    # --- subarray footprint ------------------------------------------------
    periph_area = ((dec_area + mux_area) + amps_area) + drv_area
    subarray_area = cell_area_total + periph_area
    nx = _per_unique(n_sub, _grid_nx, dtype=np.int64)
    ny = n_sub // nx
    sub_w = wl_len + dec_area / xp.maximum(bl_len, 1e-9)
    sub_h = subarray_area / xp.maximum(sub_w, 1e-9)
    array_w = nx * sub_w
    array_h = ny * sub_h
    total_area = n_sub * subarray_area + pump.area
    total_area = total_area * 1.08  # inter-subarray routing channels
    area_efficiency = (n_sub * cell_area_total) / total_area

    # --- global interconnect -----------------------------------------------
    htree_length = 0.5 * (array_w + array_h)
    wire_live = htree_length > 0
    n_seg = xp.maximum(1.0, xp.ceil(htree_length / REPEATER_SPACING))
    seg_len = htree_length / n_seg
    seg_r = gwire_res * (seg_len / 1e-6)
    seg_c = wire_cap * (seg_len / 1e-6)
    repeater_cap = 8.0 * c_min
    seg_delay = 2.0 * fo4 + (0.38 * seg_r) * (seg_c + repeater_cap)
    wire_cap_total = wire_cap * (htree_length / 1e-6) + n_seg * repeater_cap
    bus_delay = xp.where(wire_live, n_seg * seg_delay, 0.0)
    bus_epb = xp.where(wire_live, (wire_cap_total * vdd2) * BUS_ACTIVITY, 0.0)
    bus_leak = xp.where(wire_live, (n_seg * 3.0) * min_leak, 0.0)

    out_bus_cap = wire_cap * (htree_length / 1e-6)
    out_delay, out_drive_energy = _buffer_chain(out_bus_cap, c_min, vdd2, fo4)
    out_energy = (access_bits * out_drive_energy) * 0.5
    out_leak = (access_bits * 0.3) * min_leak

    # --- read path ----------------------------------------------------------
    inner_cells = math.ceil(access_bits / bits)
    cells_per_active = xp.ceil(inner_cells / active).astype(xp.int64)
    cells_per_active = xp.minimum(cells_per_active, sense_amps)

    wl_delay = (0.38 * wl_res) * full_wordline_cap
    if sram_like:
        develop = (bl_cap * SRAM_SWING) / cell.read_current
        settle = (0.38 * bl_res) * bl_cap
        t_sense = xp.maximum(cell.read_pulse, develop + settle)
    else:
        access_r = (
            0.0 if cell.access_device is AccessDevice.NONE
            else ron_min
        )
        r_cell = cell.r_on + access_r
        i_sense = cell.read_voltage / max(r_cell, 1.0)
        i_clamped = max(i_sense, 1e-12)
        develop = (bl_cap * SENSE_SWING) / i_clamped
        charge_log = math.log(1.0 / (1.0 - SENSE_SWING / vdd))
        rc_settle = ((cell.r_off + bl_res) * bl_cap) * charge_log
        t_sense = xp.maximum(
            xp.maximum(cell.read_pulse, develop), 0.25 * rc_settle
        )

    sense_steps = bits if bits > 1 else 1  # MLC: one bit per reference step
    read_latency = (
        bus_delay  # address in
        + dec_delay
        + wl_delay
        + sense_steps * (t_sense + sa_delay)
        + mux_delay
        + out_delay
        + bus_delay  # data out
    )

    sensed_cells = active * cells_per_active
    read_wl_voltage = cell.read_voltage if is_fet_cell else vdd
    rwv2 = read_wl_voltage**2
    wl_read_energy = wl_wire_cap * vdd2 + (cells_per_active * gate_load) * rwv2
    if sram_like:
        bl_energy_per_line = (bl_cap * SRAM_SWING) * vdd
    elif is_fet_cell:
        fet_read_bias2 = (FET_INHIBIT_FRACTION * cell.read_voltage) ** 2
        bl_energy_per_line = bl_cap * fet_read_bias2
    else:
        rv2 = cell.read_voltage**2
        bl_energy_per_line = bl_cap * rv2
    cell_read_energy = (cell.read_voltage * cell.read_current) * t_sense
    read_energy = (
        active * ((dec_energy + mux_energy) + wl_read_energy)
        + (sensed_cells * bl_energy_per_line) * sense_steps
        + (sensed_cells * bits) * cell_read_energy
        + (sensed_cells * sa_energy) * sense_steps
        + out_energy
        + access_bits * bus_epb
    )

    # --- write path ----------------------------------------------------------
    verify_iterations = 2 ** (bits - 1) if bits > 1 else 1
    bl_charge_time = (0.38 * (bl_res + ron_min)) * bl_cap
    pulse = cell.write_pulse + bl_charge_time
    if bits > 1:
        program_time = verify_iterations * (
            MLC_PARTIAL_PULSE * pulse + t_sense + sa_delay
        )
    else:
        program_time = pulse
    write_latency = bus_delay + dec_delay + wl_delay + drv_delay + program_time

    written_cells = sensed_cells
    cell_write_energy = cell.write_energy_per_bit * bits / eff
    if bits > 1:
        cell_write_energy *= verify_iterations * MLC_PARTIAL_PULSE
        verify_energy = verify_iterations * (
            bl_energy_per_line + cell_read_energy + sa_energy
        )
    else:
        verify_energy = 0.0
    wv2 = cell.write_voltage**2
    if is_fet_cell:
        wl_write_energy = (
            wl_wire_cap * vdd2 + (cells_per_active * gate_load) * wv2 / eff
        )
        fet_write_bias2 = (FET_INHIBIT_FRACTION * cell.write_voltage) ** 2
        bl_write_energy = bl_cap * fet_write_bias2 / eff
    else:
        wl_write_energy = wl_wire_cap * vdd2 + (cells_per_active * gate_load) * vdd2
        bl_write_energy = bl_cap * wv2 / eff
    write_energy = (
        active * ((dec_energy + mux_energy) + wl_write_energy)
        + written_cells * (cell_write_energy + bl_write_energy + verify_energy)
        + drv_energy * active
        + out_energy
        + access_bits * bus_epb
    )

    # --- leakage --------------------------------------------------------------
    periph_leak = ((dec_leak + mux_leak) + amps_leak) + drv_leak
    cell_leak = (cell.cell_leakage * n_sub) * (rows * cols)
    leakage = (
        n_sub * periph_leak
        + pump.leakage_power
        + bus_leak
        + out_leak
        + cell_leak
        + ACTIVE_AREA_LEAKAGE_PER_M2 * total_area
    )
    if cell.refresh_interval is not None:
        row_energy = dec_energy + full_wordline_cap * vdd2
        row_energy = row_energy + cols * (
            bl_energy_per_line + cell.write_energy_per_bit
        )
        total_rows = n_sub * rows
        leakage = leakage + (total_rows * row_energy) / cell.refresh_interval

    # --- deep sleep -------------------------------------------------------------
    sleep = SLEEP_LEAKAGE_PER_M2 * total_area
    if cell.tech_class.is_nonvolatile:
        sleep_power = sleep
    elif cell.refresh_interval is not None:
        sleep_power = sleep + 0.5 * leakage
    else:
        sleep_power = sleep + 0.3 * cell_leak

    return BatchNumbers(
        area=xp.asarray(total_area, dtype=xp.float64),
        area_efficiency=xp.asarray(area_efficiency, dtype=xp.float64),
        read_latency=xp.asarray(read_latency, dtype=xp.float64),
        write_latency=xp.asarray(write_latency, dtype=xp.float64),
        read_energy=xp.asarray(read_energy, dtype=xp.float64),
        write_energy=xp.asarray(write_energy, dtype=xp.float64),
        leakage_power=xp.asarray(leakage, dtype=xp.float64),
        sleep_power=xp.asarray(sleep_power, dtype=xp.float64),
    )


def evaluate_many(
    cell: CellTechnology,
    node: TechnologyNode,
    soas: Sequence[OrganizationSoA],
) -> List[BatchNumbers]:
    """Evaluate several lane sets of one (cell, node) as ONE array program.

    This is the executor's batch fast path: a chunk of sweep points that
    share the cell, node, access width, and bits-per-cell (their
    capacities differ) concatenates all candidate lanes, runs the model
    once over the union, and splits the columns back per request.
    """
    if not soas:
        return []
    if len(soas) == 1:
        return [evaluate_soa(cell, node, soas[0])]
    access_bits = soas[0].access_bits
    bits_per_cell = soas[0].bits_per_cell
    for soa in soas[1:]:
        if soa.access_bits != access_bits or soa.bits_per_cell != bits_per_cell:
            raise CharacterizationError(
                "evaluate_many requires uniform access_bits/bits_per_cell "
                "across lane sets"
            )
    merged = OrganizationSoA(
        rows=np.concatenate([soa.rows for soa in soas]),
        cols=np.concatenate([soa.cols for soa in soas]),
        mux=np.concatenate([soa.mux for soa in soas]),
        n_subarrays=np.concatenate([soa.n_subarrays for soa in soas]),
        active_subarrays=np.concatenate([soa.active_subarrays for soa in soas]),
        access_bits=access_bits,
        bits_per_cell=bits_per_cell,
    )
    numbers = evaluate_soa(cell, node, merged)
    out: List[BatchNumbers] = []
    start = 0
    for soa in soas:
        stop = start + len(soa)
        out.append(numbers._slice(start, stop))
        start = stop
    return out


def rank_metric_column(
    numbers: BatchNumbers, target: OptimizationTarget
) -> np.ndarray:
    """The ranking metric of every lane — ``_rank_metric`` as a column."""
    table = {
        OptimizationTarget.READ_LATENCY: numbers.read_latency,
        OptimizationTarget.WRITE_LATENCY: numbers.write_latency,
        OptimizationTarget.READ_ENERGY: numbers.read_energy,
        OptimizationTarget.WRITE_ENERGY: numbers.write_energy,
        OptimizationTarget.READ_EDP: numbers.read_energy * numbers.read_latency,
        OptimizationTarget.WRITE_EDP: numbers.write_energy * numbers.write_latency,
        OptimizationTarget.AREA: numbers.area,
        OptimizationTarget.LEAKAGE: numbers.leakage_power,
    }
    return table[target]


def feasible_indices(
    numbers: BatchNumbers, min_area_efficiency: float
) -> np.ndarray:
    """Lane indices surviving the buildability filter, in lane order.

    Mirrors the scalar characterizer's rejection: a lane is dropped when
    ``area_efficiency < min_area_efficiency``.
    """
    return np.nonzero(~(numbers.area_efficiency < min_area_efficiency))[0]


def select_winner_index(
    soa: OrganizationSoA,
    numbers: BatchNumbers,
    candidate_indices: np.ndarray,
    target: OptimizationTarget,
    preferred_area_efficiency: float,
) -> int:
    """The winning lane index, exactly as the scalar characterizer picks it.

    Vectorized min + 5% near-optimal mask over the metric column; the
    final tie-break — highest ``round(area_efficiency, 2)``, then most
    concurrency, first lane winning exact key ties (Python ``max``
    semantics) — runs as a tiny Python loop over the near-optimal set.
    """
    if candidate_indices.size == 0:
        raise CharacterizationError("select_winner_index needs candidates")
    efficiency = numbers.area_efficiency[candidate_indices]
    preferred = candidate_indices[efficiency >= preferred_area_efficiency]
    pool = preferred if preferred.size else candidate_indices
    metric = rank_metric_column(numbers, target)[pool]
    best_value = float(xp.min(metric))
    near_optimal = pool[metric <= 1.05 * best_value]
    # Tie-break columns, gathered once: Python round() (not xp.round) so
    # the two-decimal key is the scalar characterizer's, digit for digit.
    groups = soa.n_subarrays[near_optimal] // soa.active_subarrays[near_optimal]
    concurrencies = np.clip(groups, 1, MAX_CONCURRENCY).tolist()
    efficiencies = numbers.area_efficiency[near_optimal].tolist()
    best_index = -1
    best_key: Tuple[float, int] = (-math.inf, 0)
    first = True
    for index, eff, conc in zip(
        near_optimal.tolist(), efficiencies, concurrencies
    ):
        key = (round(eff, 2), conc)
        if first or key > best_key:
            best_key = key
            best_index = index
            first = False
    return best_index
