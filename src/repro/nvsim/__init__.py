"""Array characterization engine (the NVSim reimplementation).

Public entry points:

* :func:`characterize` — one cell + capacity + optimization target -> one
  :class:`ArrayCharacterization`.
* :func:`characterize_sweep` — many cells x many targets (Figure 3).
* :func:`all_organizations` — the full organization cloud (Figure 12).

All three run on the structure-of-arrays batch engine
(:mod:`repro.nvsim.batch` — :func:`enumerate_soa`, :func:`evaluate_soa`,
:func:`evaluate_many`), which is bit-identical to the scalar model
(:func:`repro.nvsim.model.evaluate_organization`, the parity oracle).
"""

from repro.nvsim.backends import (
    AnalyticalBackend,
    CharacterizationBackend,
    TableBackend,
)
from repro.nvsim.batch import (
    BatchNumbers,
    OrganizationSoA,
    enumerate_soa,
    evaluate_many,
    evaluate_soa,
)
from repro.nvsim.characterize import (
    DEFAULT_ACCESS_BITS,
    all_organizations,
    characterize,
    characterize_sweep,
    clear_characterization_caches,
    warm_lanes,
)
from repro.nvsim.stacking import characterize_stacked, stacking_sweep
from repro.nvsim.organization import ArrayOrganization, candidate_organizations
from repro.nvsim.result import (
    DEFAULT_TARGET_SWEEP,
    ArrayCharacterization,
    OptimizationTarget,
)

__all__ = [
    "DEFAULT_ACCESS_BITS",
    "DEFAULT_TARGET_SWEEP",
    "ArrayCharacterization",
    "ArrayOrganization",
    "BatchNumbers",
    "OrganizationSoA",
    "OptimizationTarget",
    "all_organizations",
    "candidate_organizations",
    "characterize",
    "characterize_sweep",
    "characterize_stacked",
    "clear_characterization_caches",
    "enumerate_soa",
    "evaluate_many",
    "evaluate_soa",
    "stacking_sweep",
    "warm_lanes",
    "AnalyticalBackend",
    "TableBackend",
    "CharacterizationBackend",
]
