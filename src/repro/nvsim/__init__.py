"""Array characterization engine (the NVSim reimplementation).

Public entry points:

* :func:`characterize` — one cell + capacity + optimization target -> one
  :class:`ArrayCharacterization`.
* :func:`characterize_sweep` — many cells x many targets (Figure 3).
* :func:`all_organizations` — the full organization cloud (Figure 12).
"""

from repro.nvsim.backends import (
    AnalyticalBackend,
    CharacterizationBackend,
    TableBackend,
)
from repro.nvsim.characterize import (
    DEFAULT_ACCESS_BITS,
    all_organizations,
    characterize,
    characterize_sweep,
)
from repro.nvsim.stacking import characterize_stacked, stacking_sweep
from repro.nvsim.organization import ArrayOrganization, candidate_organizations
from repro.nvsim.result import (
    DEFAULT_TARGET_SWEEP,
    ArrayCharacterization,
    OptimizationTarget,
)

__all__ = [
    "DEFAULT_ACCESS_BITS",
    "DEFAULT_TARGET_SWEEP",
    "ArrayCharacterization",
    "ArrayOrganization",
    "OptimizationTarget",
    "all_organizations",
    "candidate_organizations",
    "characterize",
    "characterize_sweep",
    "characterize_stacked",
    "stacking_sweep",
    "AnalyticalBackend",
    "TableBackend",
    "CharacterizationBackend",
]
