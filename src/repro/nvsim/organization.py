"""Internal array organization: the design space the characterizer sweeps.

An :class:`ArrayOrganization` fixes the hierarchy NVSim explores: the memory
is a grid of identical subarrays; each subarray is ``rows x cols`` cells with
a column multiplexer of degree ``mux`` (so ``cols / mux`` sense amplifiers
resolve ``cols / mux`` cells per activation).  An access of ``access_bits``
data bits activates as many subarrays in parallel as needed; disjoint groups
of subarrays form independent banks that can pipeline accesses.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Iterator, Mapping

from repro.errors import CharacterizationError

#: Candidate subarray row counts (wordlines per subarray).
ROW_CHOICES: tuple[int, ...] = (128, 256, 512, 1024, 2048)
#: Candidate subarray column counts (bitlines per subarray).
COL_CHOICES: tuple[int, ...] = (256, 512, 1024, 2048, 4096)
#: Candidate column-mux degrees.
MUX_CHOICES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
#: Cap on exploitable bank-level concurrency.
MAX_CONCURRENCY = 16


@dataclass(frozen=True)
class ArrayOrganization:
    """One point in the internal-organization design space."""

    rows: int
    cols: int
    mux: int
    n_subarrays: int
    active_subarrays: int
    access_bits: int
    bits_per_cell: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0 or self.mux <= 0:
            raise CharacterizationError("organization dimensions must be positive")
        if self.cols % self.mux != 0:
            raise CharacterizationError("mux degree must divide the column count")
        if self.active_subarrays > self.n_subarrays:
            raise CharacterizationError(
                "cannot activate more subarrays than the array has"
            )

    @property
    def cells_per_subarray(self) -> int:
        return self.rows * self.cols

    @property
    def bits_per_subarray(self) -> int:
        return self.cells_per_subarray * self.bits_per_cell

    @property
    def sense_amps_per_subarray(self) -> int:
        return self.cols // self.mux

    @property
    def bits_per_activation(self) -> int:
        """Data bits resolved by one subarray activation."""
        return self.sense_amps_per_subarray * self.bits_per_cell

    @property
    def total_bits(self) -> int:
        return self.n_subarrays * self.bits_per_subarray

    @property
    def total_sense_amps(self) -> int:
        return self.n_subarrays * self.sense_amps_per_subarray

    @property
    def concurrency(self) -> int:
        """Independent accesses the array can service simultaneously."""
        groups = self.n_subarrays // self.active_subarrays
        return max(1, min(MAX_CONCURRENCY, groups))

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Near-square (nx, ny) placement of the subarrays."""
        nx = max(1, int(math.floor(math.sqrt(self.n_subarrays))))
        while self.n_subarrays % nx != 0:
            nx -= 1
        return nx, self.n_subarrays // nx

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable representation (for the on-disk cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrayOrganization":
        """Rebuild an organization from :meth:`to_dict` output."""
        try:
            return cls(**{k: int(v) for k, v in data.items()})
        except TypeError as exc:
            raise CharacterizationError(
                f"invalid organization payload: {exc}"
            ) from exc

    def describe(self) -> str:
        nx, ny = self.grid_shape
        return (
            f"{self.n_subarrays}x({self.rows}x{self.cols}) mux={self.mux} "
            f"grid={nx}x{ny} active={self.active_subarrays} "
            f"bpc={self.bits_per_cell}"
        )


def candidate_organizations(
    capacity_bits: int,
    access_bits: int,
    bits_per_cell: int = 1,
) -> Iterator[ArrayOrganization]:
    """Yield every sensible organization for the requested capacity.

    An organization is sensible when the subarray count is a positive whole
    number that covers the capacity, and a single access does not need more
    subarrays than exist.
    """
    if capacity_bits <= 0:
        raise CharacterizationError("capacity must be positive")
    if access_bits <= 0:
        raise CharacterizationError("access width must be positive")

    for rows in ROW_CHOICES:
        for cols in COL_CHOICES:
            bits_per_subarray = rows * cols * bits_per_cell
            n_subarrays = math.ceil(capacity_bits / bits_per_subarray)
            if n_subarrays < 1:
                continue
            # Avoid gross over-provisioning (>2x the capacity wasted).
            if n_subarrays * bits_per_subarray > 2 * capacity_bits + bits_per_subarray:
                continue
            for mux in MUX_CHOICES:
                if cols % mux != 0:
                    continue
                bits_per_activation = (cols // mux) * bits_per_cell
                active = math.ceil(access_bits / bits_per_activation)
                if active > n_subarrays:
                    continue
                yield ArrayOrganization(
                    rows=rows,
                    cols=cols,
                    mux=mux,
                    n_subarrays=n_subarrays,
                    active_subarrays=active,
                    access_bits=access_bits,
                    bits_per_cell=bits_per_cell,
                )
