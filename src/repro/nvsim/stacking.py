"""3D-stacked array modelling (the DESTINY-style extension).

Table III notes DESTINY "modifies NVSim to evaluate 3D integration and
could be ... used as a back-end characterization tool for NVMExplorer".
This module provides that extension analytically: a monolithically-stacked
array of ``layers`` cell tiers sharing one tier of periphery.

Effects modelled, following DESTINY's findings:

* **Footprint** shrinks roughly by the layer count (cells stack; periphery
  and inter-layer vias do not), raising bits/mm^2.
* **Latency** gains from shorter global wires (smaller footprint) but pays
  a per-layer via/select overhead.
* **Energy** gains on the H-tree and loses a little on layer selection.
* **Leakage** drops with footprint (the area-proportional component) while
  the per-subarray periphery stays — it is shared across layers.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.errors import CharacterizationError
from repro.nvsim.characterize import characterize
from repro.nvsim.model import ACTIVE_AREA_LEAKAGE_PER_M2, SLEEP_LEAKAGE_PER_M2
from repro.nvsim.result import ArrayCharacterization, OptimizationTarget
from repro.cells.base import CellTechnology

#: Extra select/via delay per additional layer, seconds.
LAYER_SELECT_DELAY = 60e-12
#: Extra select energy per access per additional layer, joules.
LAYER_SELECT_ENERGY = 15e-15
#: Fraction of the planar area that cannot stack (periphery tier, vias).
UNSTACKABLE_FRACTION = 0.15

#: Technologies demonstrated as stackable in the surveyed literature
#: (vertical RRAM, 3D cross-point PCM); others are refused.
STACKABLE = ("RRAM", "PCM")


def characterize_stacked(
    cell: CellTechnology,
    capacity_bytes: int,
    layers: int,
    node_nm: int = 22,
    optimization_target: OptimizationTarget = OptimizationTarget.READ_EDP,
    access_bits: int = 64,
    bits_per_cell: int = 1,
) -> ArrayCharacterization:
    """Characterize a ``layers``-high 3D array of ``cell``.

    Builds on the planar characterization of the same capacity and applies
    the stacking transformations above.  ``layers == 1`` returns the planar
    array unchanged.
    """
    if layers < 1:
        raise CharacterizationError("layers must be >= 1")
    if layers > 8:
        raise CharacterizationError("more than 8 monolithic layers is not modelled")
    if layers > 1 and cell.tech_class.value not in STACKABLE:
        raise CharacterizationError(
            f"{cell.tech_class.value} has no demonstrated 3D stacking; "
            f"stackable: {STACKABLE}"
        )

    planar = characterize(
        cell, capacity_bytes, node_nm=node_nm,
        optimization_target=optimization_target,
        access_bits=access_bits, bits_per_cell=bits_per_cell,
    )
    if layers == 1:
        return planar

    # Footprint: stackable portion divides by the layer count.
    stackable_area = planar.area * (1.0 - UNSTACKABLE_FRACTION)
    area = planar.area * UNSTACKABLE_FRACTION + stackable_area / layers

    # Global wires shrink with the footprint's linear dimension.
    wire_scale = math.sqrt(area / planar.area)
    extra_delay = (layers - 1) * LAYER_SELECT_DELAY
    # Split latency into a wire-ish half and a cell-ish half; scale the
    # wire half (a coarse, conservative decomposition).
    read_latency = planar.read_latency * (0.5 + 0.5 * wire_scale) + extra_delay
    write_latency = planar.write_latency * (0.5 + 0.5 * wire_scale) + extra_delay

    extra_energy = (layers - 1) * LAYER_SELECT_ENERGY * access_bits
    read_energy = planar.read_energy * (0.7 + 0.3 * wire_scale) + extra_energy
    write_energy = planar.write_energy * (0.85 + 0.15 * wire_scale) + extra_energy

    area_leak_delta = ACTIVE_AREA_LEAKAGE_PER_M2 * (planar.area - area)
    leakage = max(0.0, planar.leakage_power - area_leak_delta)
    sleep = SLEEP_LEAKAGE_PER_M2 * area

    stacked_cell = cell.renamed(f"{cell.name}-3D{layers}")
    return replace(
        planar,
        cell=stacked_cell,
        area=area,
        read_latency=read_latency,
        write_latency=write_latency,
        read_energy=read_energy,
        write_energy=write_energy,
        leakage_power=leakage,
        sleep_power=sleep,
    )


def stacking_sweep(
    cell: CellTechnology,
    capacity_bytes: int,
    max_layers: int = 8,
    **kwargs,
) -> list[ArrayCharacterization]:
    """Planar plus every power-of-two layer count up to ``max_layers``."""
    results = []
    layer_count = 1
    while layer_count <= max_layers:
        results.append(
            characterize_stacked(cell, capacity_bytes, layer_count, **kwargs)
        )
        layer_count *= 2
    return results
