"""The array physics model: one organization -> timing/energy/area/leakage.

This is the computational core of the NVSim reimplementation.  Given a cell
technology, a process node, and an internal organization, it assembles the
full read path (decode -> wordline -> bitline sensing -> column mux -> sense
amp -> output drive -> global bus), the write path (decode -> wordline ->
programming pulse(s) -> drivers), leakage, sleep power, and layout area.

Modelling choices that matter for the paper's results:

* **Divided wordlines and local sensing.**  Only the cells an access needs
  are sensed/written; the row-select wire still spans the subarray but gate
  loading is paid only on the selected segment.  This keeps dynamic energy
  comparable across internal organizations (as in modern macros) and makes
  the dominant cross-technology differences come from cell electricals and
  physical wire lengths — i.e. from storage density.
* **FET-cell technologies (FeFET, CTT)** sense through the storage
  transistor with a boosted gate (read wordline swings to the read voltage,
  bitline charged to it as well): their read energy sits in a tier of its
  own (Figure 5).  Their writes are field-driven through the gate: high
  voltage but nanoamp currents, so per-bit write energy is femtojoules.
* **Leakage** has an organization part (decoder gates, sense-amp bias,
  drivers) and a die-area part (power grid, well bias, clock/repeater
  infrastructure).  The area part couples storage density to standby power.
* **Deep sleep** burns only the power-gate / wake-logic leakage, which is
  proportional to die area — the term that drives the intermittent-operation
  crossover of Figure 7.
* **MLC** reads take one sensing step per bit (successive references); MLC
  writes use program-and-verify loops (``2^(bits-1)`` iterations with
  partial pulses), matching the extended-NVSim behaviour the paper uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cells.base import AccessDevice, CellTechnology
from repro.nvsim import peripheral
from repro.nvsim.organization import ArrayOrganization
from repro.tech.delay import rc_charge_time, rc_wire_delay
from repro.tech.node import TechnologyNode

#: Bitline swing the sense amplifier needs to resolve, volts.
SENSE_SWING = 0.05
#: Differential swing for 6T SRAM sensing, volts.
SRAM_SWING = 0.10
#: Spacing of repeaters on global wires, meters.  In-macro H-trees are only
#: lightly buffered (NVSim's are unbuffered), which is what makes a
#: physically large iso-capacity SRAM macro slower than a dense eNVM one.
REPEATER_SPACING = 2.0e-3
#: Active-array leakage per unit die area (power grid, well bias, clock and
#: repeater infrastructure), watts per square meter: 2.2 mW/mm^2.  This
#: couples storage density to standby power at iso-capacity.
ACTIVE_AREA_LEAKAGE_PER_M2 = 2200.0
#: Deep-sleep rail leakage per unit die area (power gates + always-on wake
#: logic), watts per square meter: 100 uW/mm^2.  Drives Figure 7.
SLEEP_LEAKAGE_PER_M2 = 100.0
#: Fraction of a programming pulse applied per MLC verify iteration.
MLC_PARTIAL_PULSE = 0.6
#: Activity factor of the global data bus.
BUS_ACTIVITY = 0.5
#: Write-inhibit bias fraction on unselected lines of FET-cell arrays.
FET_INHIBIT_FRACTION = 1.0 / 3.0


@dataclass(frozen=True)
class WireSegment:
    """Delay / per-bit energy / leakage of a repeated global wire."""

    delay: float
    energy_per_bit: float
    leakage_power: float


def repeated_wire(node: TechnologyNode, length: float) -> WireSegment:
    """A lightly-buffered global wire of ``length`` meters."""
    if length <= 0:
        return WireSegment(0.0, 0.0, 0.0)
    n_segments = max(1, math.ceil(length / REPEATER_SPACING))
    seg_len = length / n_segments
    seg_r = node.global_wire_resistance(seg_len)
    seg_c = node.wire_capacitance(seg_len)
    repeater_cap = 8.0 * node.min_transistor_gate_cap
    seg_delay = 2.0 * node.logic_gate_delay + rc_wire_delay(seg_r, seg_c + repeater_cap)
    wire_cap_total = node.wire_capacitance(length) + n_segments * repeater_cap
    energy_per_bit = wire_cap_total * node.vdd**2 * BUS_ACTIVITY
    leakage = n_segments * 3.0 * node.min_transistor_leakage
    return WireSegment(
        delay=n_segments * seg_delay,
        energy_per_bit=energy_per_bit,
        leakage_power=leakage,
    )


@dataclass(frozen=True)
class SubarrayGeometry:
    """Physical geometry of one subarray and its wordlines/bitlines."""

    cell_width: float
    cell_height: float
    wordline_length: float
    bitline_length: float
    wordline_wire_cap: float  # metal only, spans the subarray
    wordline_gate_cap_per_cell: float  # device loading, paid per selected cell
    wordline_res: float
    bitline_cap: float
    bitline_res: float
    cell_area_total: float  # m^2, storage cells only


def subarray_geometry(
    cell: CellTechnology, node: TechnologyNode, org: ArrayOrganization
) -> SubarrayGeometry:
    """Compute wire lengths and RC for one ``rows x cols`` subarray."""
    cw, ch = cell.cell_dimensions(node.feature_size)
    wl_len = org.cols * cw
    bl_len = org.rows * ch
    gate_load = 0.6 * node.min_transistor_gate_cap
    drain_load = 0.5 * node.min_transistor_drain_cap
    if cell.access_device is AccessDevice.SRAM6T:
        gate_load = 2.0 * node.min_transistor_gate_cap  # two access FETs
        drain_load = 1.0 * node.min_transistor_drain_cap
    elif cell.access_device is AccessDevice.NONE:
        gate_load = 0.1 * node.min_transistor_gate_cap  # selector only
        drain_load = 0.2 * node.min_transistor_drain_cap
    return SubarrayGeometry(
        cell_width=cw,
        cell_height=ch,
        wordline_length=wl_len,
        bitline_length=bl_len,
        wordline_wire_cap=node.wire_capacitance(wl_len),
        wordline_gate_cap_per_cell=gate_load,
        wordline_res=node.wire_resistance(wl_len),
        bitline_cap=node.wire_capacitance(bl_len) + org.rows * drain_load,
        bitline_res=node.wire_resistance(bl_len),
        cell_area_total=org.rows * org.cols * cell.cell_area(node.feature_size),
    )


def _access_resistance(cell: CellTechnology, node: TechnologyNode) -> float:
    """Series resistance of the access device, ohms."""
    if cell.access_device is AccessDevice.NONE:
        return 0.0
    return node.min_transistor_on_resistance


def bitline_sense_time(
    cell: CellTechnology, node: TechnologyNode, geo: SubarrayGeometry
) -> float:
    """Time for the bitline to develop a resolvable swing, seconds."""
    if cell.access_device in (AccessDevice.SRAM6T, AccessDevice.GAIN_CELL):
        develop = geo.bitline_cap * SRAM_SWING / cell.read_current
        settle = 0.38 * geo.bitline_res * geo.bitline_cap
        return max(cell.read_pulse, develop + settle)
    # Resistive / FET-cell sensing: the cell's on-state current must move
    # the bitline by the sense swing; the reported read pulse bounds it from
    # below (reference settling, sense circuit timing).
    r_cell = cell.r_on + _access_resistance(cell, node)
    i_sense = cell.read_voltage / max(r_cell, 1.0)
    develop = geo.bitline_cap * SENSE_SWING / max(i_sense, 1e-12)
    rc_settle = rc_charge_time(
        cell.r_off + geo.bitline_res, geo.bitline_cap, SENSE_SWING / node.vdd
    )
    return max(cell.read_pulse, develop, 0.25 * rc_settle)


@dataclass(frozen=True)
class ArrayNumbers:
    """Raw totals produced by :func:`evaluate_organization`."""

    area: float
    area_efficiency: float
    read_latency: float
    write_latency: float
    read_energy: float
    write_energy: float
    leakage_power: float
    sleep_power: float


def evaluate_organization(
    cell: CellTechnology,
    node: TechnologyNode,
    org: ArrayOrganization,
) -> ArrayNumbers:
    """Characterize the full array for one internal organization."""
    geo = subarray_geometry(cell, node, org)
    bits = org.bits_per_cell
    is_fet_cell = cell.access_device is AccessDevice.TRANSISTOR_CELL

    # --- peripheral blocks (per subarray) ---------------------------------
    full_wordline_cap = (
        geo.wordline_wire_cap + org.cols * geo.wordline_gate_cap_per_cell
    )
    decoder = peripheral.row_decoder(node, org.rows, full_wordline_cap)
    mux = peripheral.column_mux(node, org.cols, org.mux)
    amps = peripheral.sense_amplifiers(node, org.sense_amps_per_subarray)
    drivers = peripheral.write_drivers(
        node,
        org.sense_amps_per_subarray,
        cell.write_voltage,
        max(cell.set_current, cell.reset_current),
    )
    pump = peripheral.charge_pump(node, cell.write_voltage)

    # --- subarray footprint ------------------------------------------------
    periph_area = decoder.area + mux.area + amps.area + drivers.area
    subarray_area = geo.cell_area_total + periph_area
    nx, ny = org.grid_shape
    sub_w = geo.wordline_length + decoder.area / max(geo.bitline_length, 1e-9)
    sub_h = subarray_area / max(sub_w, 1e-9)
    array_w = nx * sub_w
    array_h = ny * sub_h
    total_area = org.n_subarrays * subarray_area + pump.area
    total_area *= 1.08  # inter-subarray routing channels
    area_efficiency = (org.n_subarrays * geo.cell_area_total) / total_area

    # --- global interconnect -----------------------------------------------
    htree_length = 0.5 * (array_w + array_h)
    bus = repeated_wire(node, htree_length)
    out = peripheral.output_driver(
        node, node.wire_capacitance(htree_length), org.access_bits
    )

    # --- read path ----------------------------------------------------------
    # Accessed cells per subarray activation: the access is spread across
    # the active subarrays; divided wordlines mean only these cells' gates
    # load the selected row segment, and only their bitlines are sensed.
    cells_per_active = math.ceil(
        math.ceil(org.access_bits / bits) / org.active_subarrays
    )
    cells_per_active = min(cells_per_active, org.sense_amps_per_subarray)

    wl_delay = rc_wire_delay(geo.wordline_res, full_wordline_cap)
    t_sense = bitline_sense_time(cell, node, geo)
    sense_steps = bits if bits > 1 else 1  # MLC: one bit per reference step
    read_latency = (
        bus.delay  # address in
        + decoder.delay
        + wl_delay
        + sense_steps * (t_sense + amps.delay)
        + mux.delay
        + out.delay
        + bus.delay  # data out
    )

    sensed_cells = org.active_subarrays * cells_per_active
    read_wl_voltage = cell.read_voltage if is_fet_cell else node.vdd
    wl_read_energy = (
        geo.wordline_wire_cap * node.vdd**2
        + cells_per_active * geo.wordline_gate_cap_per_cell * read_wl_voltage**2
    )
    if cell.access_device in (AccessDevice.SRAM6T, AccessDevice.GAIN_CELL):
        bl_energy_per_line = geo.bitline_cap * SRAM_SWING * node.vdd
    elif is_fet_cell:
        # FET-cell sensing boosts the *gate*; the bitline only carries a
        # modest drain bias (~V_read/3).
        bl_energy_per_line = (
            geo.bitline_cap * (FET_INHIBIT_FRACTION * cell.read_voltage) ** 2
        )
    else:
        bl_energy_per_line = geo.bitline_cap * cell.read_voltage**2
    cell_read_energy = cell.read_voltage * cell.read_current * t_sense
    read_energy = (
        org.active_subarrays
        * (decoder.dynamic_energy + mux.dynamic_energy + wl_read_energy)
        + sensed_cells * bl_energy_per_line * sense_steps
        + sensed_cells * bits * cell_read_energy
        + sensed_cells * node.sense_amp_energy * sense_steps
        + out.dynamic_energy
        + org.access_bits * bus.energy_per_bit
    )

    # --- write path ----------------------------------------------------------
    verify_iterations = 2 ** (bits - 1) if bits > 1 else 1
    # Charging the bitline to the write level through the driver.
    bl_charge_time = rc_wire_delay(
        geo.bitline_res + node.min_transistor_on_resistance, geo.bitline_cap
    )
    pulse = cell.write_pulse + bl_charge_time
    if bits > 1:
        program_time = verify_iterations * (
            MLC_PARTIAL_PULSE * pulse + t_sense + amps.delay
        )
    else:
        program_time = pulse
    write_latency = (
        bus.delay + decoder.delay + wl_delay + drivers.delay + program_time
    )

    written_cells = sensed_cells
    eff = peripheral.pump_efficiency(node, cell.write_voltage)
    cell_write_energy = cell.write_energy_per_bit * bits / eff
    if bits > 1:
        cell_write_energy *= verify_iterations * MLC_PARTIAL_PULSE
        verify_energy = verify_iterations * (
            bl_energy_per_line + cell_read_energy + node.sense_amp_energy
        )
    else:
        verify_energy = 0.0
    # FET-cell programming is field-driven through the gate: the write
    # voltage swings the selected row segment (amortized across the written
    # cells) while bitlines carry only a small inhibit bias.  Resistive
    # cells drive the full write voltage down each selected bitline.
    if is_fet_cell:
        wl_write_energy = (
            geo.wordline_wire_cap * node.vdd**2
            + cells_per_active
            * geo.wordline_gate_cap_per_cell
            * cell.write_voltage**2
            / eff
        )
        bl_write_energy = (
            geo.bitline_cap * (FET_INHIBIT_FRACTION * cell.write_voltage) ** 2 / eff
        )
    else:
        wl_write_energy = (
            geo.wordline_wire_cap * node.vdd**2
            + cells_per_active * geo.wordline_gate_cap_per_cell * node.vdd**2
        )
        bl_write_energy = geo.bitline_cap * cell.write_voltage**2 / eff
    write_energy = (
        org.active_subarrays
        * (decoder.dynamic_energy + mux.dynamic_energy + wl_write_energy)
        + written_cells * (cell_write_energy + bl_write_energy + verify_energy)
        + drivers.dynamic_energy * org.active_subarrays
        + out.dynamic_energy
        + org.access_bits * bus.energy_per_bit
    )

    # --- leakage --------------------------------------------------------------
    periph_leak_per_sub = (
        decoder.leakage_power
        + mux.leakage_power
        + amps.leakage_power
        + drivers.leakage_power
    )
    cell_leak = cell.cell_leakage * org.n_subarrays * org.cells_per_subarray
    leakage = (
        org.n_subarrays * periph_leak_per_sub
        + pump.leakage_power
        + bus.leakage_power
        + out.leakage_power
        + cell_leak
        + ACTIVE_AREA_LEAKAGE_PER_M2 * total_area
    )

    # eDRAM-style cells burn refresh power while active.
    if cell.refresh_interval is not None:
        row_energy = decoder.dynamic_energy + full_wordline_cap * node.vdd**2
        row_energy += org.cols * (bl_energy_per_line + cell.write_energy_per_bit)
        total_rows = org.n_subarrays * org.rows
        leakage += total_rows * row_energy / cell.refresh_interval

    # --- deep sleep -------------------------------------------------------------
    sleep = SLEEP_LEAKAGE_PER_M2 * total_area
    if cell.tech_class.is_nonvolatile:
        sleep_power = sleep
    elif cell.refresh_interval is not None:
        # eDRAM cannot power off without losing data: retention refresh.
        sleep_power = sleep + 0.5 * leakage
    else:
        # SRAM data-retention voltage: ~30% of nominal cell leakage.
        sleep_power = sleep + 0.3 * cell_leak

    return ArrayNumbers(
        area=total_area,
        area_efficiency=area_efficiency,
        read_latency=read_latency,
        write_latency=write_latency,
        read_energy=read_energy,
        write_energy=write_energy,
        leakage_power=leakage,
        sleep_power=sleep_power,
    )
