"""The characterizer front-end: sweep organizations, pick the best.

:func:`characterize` is the package's equivalent of running NVSim once: it
explores every candidate internal organization for the requested capacity
and returns the one that minimizes the chosen optimization target.
:func:`characterize_sweep` runs several targets at once (Figure 3's
"various optimization targets"), and :func:`pareto_front` exposes the whole
organization space for the area-efficiency co-design study (Figure 12).

Since PR 8 the organization sweep runs on the structure-of-arrays batch
engine (:mod:`repro.nvsim.batch`): the whole candidate space is evaluated
as one numpy array program and ranking/filtering are vectorized column
operations.  The scalar model (:func:`repro.nvsim.model.evaluate_organization`)
is retained as the exact-equality parity oracle — every lane the batch
engine produces is bit-identical to the scalar path, property-tested in
``tests/test_characterize_parity.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.cells.base import CellTechnology
from repro.errors import CharacterizationError, ReproError
from repro.nvsim.batch import (
    BatchNumbers,
    OrganizationSoA,
    enumerate_soa,
    evaluate_many,
    feasible_indices,
    select_winner_index,
)
from repro.nvsim.organization import ArrayOrganization
from repro.nvsim.result import (
    DEFAULT_TARGET_SWEEP,
    ArrayCharacterization,
    OptimizationTarget,
)
from repro.tech.node import get_node
from repro.units import BITS_PER_BYTE

#: Default data bits moved per access (a 64-bit word); the LLC studies use
#: 512 (a 64-byte line).
DEFAULT_ACCESS_BITS = 64

#: Designs below this area efficiency are rejected outright as unbuildable.
MIN_AREA_EFFICIENCY = 0.02
#: The characterizer prefers designs at or above this efficiency (a real
#: memory compiler would not tape out a macro that is mostly periphery);
#: it falls back to the full space when nothing qualifies.  Figure 12's
#: co-design study explores relaxing exactly this constraint.
PREFERRED_AREA_EFFICIENCY = 0.50


def _rank_metric(
    numbers_read_latency: float,
    numbers_write_latency: float,
    numbers_read_energy: float,
    numbers_write_energy: float,
    numbers_area: float,
    numbers_leakage: float,
    target: OptimizationTarget,
) -> float:
    table = {
        OptimizationTarget.READ_LATENCY: numbers_read_latency,
        OptimizationTarget.WRITE_LATENCY: numbers_write_latency,
        OptimizationTarget.READ_ENERGY: numbers_read_energy,
        OptimizationTarget.WRITE_ENERGY: numbers_write_energy,
        OptimizationTarget.READ_EDP: numbers_read_energy * numbers_read_latency,
        OptimizationTarget.WRITE_EDP: numbers_write_energy * numbers_write_latency,
        OptimizationTarget.AREA: numbers_area,
        OptimizationTarget.LEAKAGE: numbers_leakage,
    }
    return table[target]


# One request's evaluated candidate space, columnar: (lanes, numbers,
# feasible lane indices).  Kept in a small bounded LRU — each entry is a
# handful of ~150-element float64 arrays, and the persistent disk cache
# (repro.runtime.cache) is the real cross-process store; this memo only
# de-duplicates work within one process (e.g. one cell swept across six
# optimization targets).
_LanesEntry = Tuple[OrganizationSoA, BatchNumbers, np.ndarray]
_LanesKey = Tuple[CellTechnology, int, int, int, int]

_LANES_CACHE: "OrderedDict[_LanesKey, _LanesEntry]" = OrderedDict()
_LANES_CACHE_MAX = 128
_LANES_LOCK = threading.Lock()


def _no_feasible(
    cell: CellTechnology, capacity_bytes: int, access_bits: int, bits_per_cell: int
) -> CharacterizationError:
    return CharacterizationError(
        f"no feasible organization for {cell.name} at {capacity_bytes} bytes "
        f"({bits_per_cell} bits/cell, {access_bits}-bit access)"
    )


def _lanes_get(key: _LanesKey) -> Optional[_LanesEntry]:
    with _LANES_LOCK:
        entry = _LANES_CACHE.get(key)
        if entry is not None:
            _LANES_CACHE.move_to_end(key)
        return entry


def _lanes_put(key: _LanesKey, entry: _LanesEntry) -> None:
    with _LANES_LOCK:
        _LANES_CACHE[key] = entry
        _LANES_CACHE.move_to_end(key)
        while len(_LANES_CACHE) > _LANES_CACHE_MAX:
            _LANES_CACHE.popitem(last=False)


def _evaluated_lanes(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int,
    access_bits: int,
    bits_per_cell: int,
) -> _LanesEntry:
    """Evaluate the candidate space of one request as columnar lanes.

    Raises :class:`CharacterizationError` when no candidate survives the
    :data:`MIN_AREA_EFFICIENCY` filter (the entry is still memoized so
    repeated hopeless requests stay cheap).
    """
    key = (cell, capacity_bytes, node_nm, access_bits, bits_per_cell)
    entry = _lanes_get(key)
    if entry is None:
        node = get_node(node_nm)
        soa = enumerate_soa(
            capacity_bytes * BITS_PER_BYTE, access_bits, bits_per_cell
        )
        numbers = evaluate_many(cell, node, [soa])[0]
        entry = (soa, numbers, feasible_indices(numbers, MIN_AREA_EFFICIENCY))
        _lanes_put(key, entry)
    if entry[2].size == 0:
        raise _no_feasible(cell, capacity_bytes, access_bits, bits_per_cell)
    return entry


def warm_lanes(
    requests: Iterable[Tuple[CellTechnology, int, int, int, int]],
) -> None:
    """Pre-evaluate many requests as one array program per (cell, node).

    This is the executor's batch fast path: requests that share the cell,
    node, access width, and bits-per-cell concatenate their candidate
    lanes and run the model once over the union.  Requests whose
    enumeration fails (bad capacity/width) are skipped — the subsequent
    per-point :func:`characterize` call reports the error with full
    context.  Infeasible-but-enumerable requests are memoized so the
    per-point call raises without re-evaluating.
    """
    groups: "OrderedDict[Tuple[CellTechnology, int, int, int], list]" = OrderedDict()
    for key in requests:
        cell, capacity_bytes, node_nm, access_bits, bits_per_cell = key
        if _lanes_get(key) is not None:
            continue
        try:
            soa = enumerate_soa(
                capacity_bytes * BITS_PER_BYTE, access_bits, bits_per_cell
            )
        except ReproError:
            continue
        groups.setdefault((cell, node_nm, access_bits, bits_per_cell), []).append(
            (key, soa)
        )
    for (cell, node_nm, _ab, _bpc), members in groups.items():
        node = get_node(node_nm)
        batches = evaluate_many(cell, node, [soa for _key, soa in members])
        for (key, soa), numbers in zip(members, batches):
            _lanes_put(
                key, (soa, numbers, feasible_indices(numbers, MIN_AREA_EFFICIENCY))
            )


@lru_cache(maxsize=64)
def _characterize_all(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int,
    access_bits: int,
    bits_per_cell: int,
) -> tuple[tuple[ArrayOrganization, "object"], ...]:
    """Every feasible organization, materialized as scalar pairs.

    Retained for callers that want the cloud in object form (and for the
    legacy ``.cache_clear()`` hook); the evaluation itself runs on the
    batch engine.  The cache is deliberately small — it pins fully
    materialized organization clouds, and the persistent disk cache is
    the long-term store.
    """
    soa, numbers, feasible = _evaluated_lanes(
        cell, capacity_bytes, node_nm, access_bits, bits_per_cell
    )
    return tuple(
        (soa.organization_at(i), numbers.numbers_at(i)) for i in feasible.tolist()
    )


def clear_characterization_caches() -> None:
    """Drop all in-process characterization memos (lanes and clouds)."""
    with _LANES_LOCK:
        _LANES_CACHE.clear()
    _characterize_all.cache_clear()


def characterize(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int = 22,
    optimization_target: OptimizationTarget = OptimizationTarget.READ_EDP,
    access_bits: int = DEFAULT_ACCESS_BITS,
    bits_per_cell: int = 1,
) -> ArrayCharacterization:
    """Characterize one memory array (the NVSim entry point).

    Parameters
    ----------
    cell:
        The memory cell definition (tentpole, preset, or custom).
    capacity_bytes:
        Usable array capacity in bytes.
    node_nm:
        Implementation process node (the paper implements eNVMs at 22 nm and
        compares against 16 nm SRAM).
    optimization_target:
        Which metric the internal-organization sweep minimizes.
    access_bits:
        Data bits transferred per access (64 for a word, 512 for a cache
        line).
    bits_per_cell:
        1 for SLC; >1 engages the MLC read/write models.

    Raises
    ------
    CharacterizationError
        If no internal organization can realize the request.
    """
    cell.with_bits_per_cell(bits_per_cell)
    soa, numbers, feasible = _evaluated_lanes(
        cell, int(capacity_bytes), node_nm, access_bits, bits_per_cell
    )
    winner = select_winner_index(
        soa, numbers, feasible, optimization_target, PREFERRED_AREA_EFFICIENCY
    )
    best_org = soa.organization_at(winner)
    best = numbers.numbers_at(winner)
    return ArrayCharacterization(
        cell=cell,
        capacity_bytes=int(capacity_bytes),
        node_nm=node_nm,
        bits_per_cell=bits_per_cell,
        optimization_target=optimization_target,
        organization=best_org,
        area=best.area,
        area_efficiency=best.area_efficiency,
        read_latency=best.read_latency,
        write_latency=best.write_latency,
        read_energy=best.read_energy,
        write_energy=best.write_energy,
        leakage_power=best.leakage_power,
        sleep_power=best.sleep_power,
    )


def characterize_sweep(
    cells: Iterable[CellTechnology],
    capacity_bytes: int,
    node_nm: int = 22,
    targets: Sequence[OptimizationTarget] = DEFAULT_TARGET_SWEEP,
    access_bits: int = DEFAULT_ACCESS_BITS,
    bits_per_cell: int = 1,
    sram_node_nm: Optional[int] = 16,
) -> list[ArrayCharacterization]:
    """Characterize many cells under many optimization targets (Figure 3).

    SRAM cells are implemented at ``sram_node_nm`` (16 nm in the paper)
    while eNVMs use ``node_nm`` (22 nm), matching the paper's comparison
    setup.  The candidate space of each (cell, node) pair is evaluated
    once on the batch engine and shared across all targets.
    """
    cell_list = list(cells)
    warm_lanes(
        (cell, int(capacity_bytes), _node_for(cell, node_nm, sram_node_nm),
         access_bits, bits_per_cell)
        for cell in cell_list
    )
    results: list[ArrayCharacterization] = []
    for cell in cell_list:
        cell_node = _node_for(cell, node_nm, sram_node_nm)
        for target in targets:
            results.append(
                characterize(
                    cell,
                    capacity_bytes,
                    node_nm=cell_node,
                    optimization_target=target,
                    access_bits=access_bits,
                    bits_per_cell=bits_per_cell,
                )
            )
    return results


def _node_for(
    cell: CellTechnology, node_nm: int, sram_node_nm: Optional[int]
) -> int:
    if not cell.tech_class.is_nonvolatile and sram_node_nm is not None:
        return sram_node_nm
    return node_nm


def all_organizations(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int = 22,
    access_bits: int = DEFAULT_ACCESS_BITS,
    bits_per_cell: int = 1,
    cache: Optional[object] = None,
) -> list[ArrayCharacterization]:
    """Every feasible organization as a full characterization (Figure 12).

    Unlike :func:`characterize` this does not pick a winner — the co-design
    studies filter this cloud by area efficiency and look at latency/power
    structure across it.  Pass an
    :class:`~repro.runtime.cache.OrganizationCloudCache` as ``cache`` to
    persist the cloud across runs (it is the dominant cold-run cost of the
    Figure 12 studies).
    """
    fingerprint = None
    if cache is not None:
        fingerprint = cache.fingerprint_for(
            cell, int(capacity_bytes), node_nm, access_bits, bits_per_cell
        )
        cached = cache.load(fingerprint)
        if cached is not None:
            return cached
    soa, numbers, feasible = _evaluated_lanes(
        cell, int(capacity_bytes), node_nm, access_bits, bits_per_cell
    )
    out = []
    for i in feasible.tolist():
        lane = numbers.numbers_at(i)
        out.append(
            ArrayCharacterization(
                cell=cell,
                capacity_bytes=int(capacity_bytes),
                node_nm=node_nm,
                bits_per_cell=bits_per_cell,
                optimization_target=OptimizationTarget.READ_EDP,
                organization=soa.organization_at(i),
                area=lane.area,
                area_efficiency=lane.area_efficiency,
                read_latency=lane.read_latency,
                write_latency=lane.write_latency,
                read_energy=lane.read_energy,
                write_energy=lane.write_energy,
                leakage_power=lane.leakage_power,
                sleep_power=lane.sleep_power,
            )
        )
    if cache is not None and fingerprint is not None:
        cache.store(fingerprint, out)
    return out
