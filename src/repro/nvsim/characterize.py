"""The characterizer front-end: sweep organizations, pick the best.

:func:`characterize` is the package's equivalent of running NVSim once: it
explores every candidate internal organization for the requested capacity
and returns the one that minimizes the chosen optimization target.
:func:`characterize_sweep` runs several targets at once (Figure 3's
"various optimization targets"), and :func:`pareto_front` exposes the whole
organization space for the area-efficiency co-design study (Figure 12).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Sequence

from repro.cells.base import CellTechnology
from repro.errors import CharacterizationError
from repro.nvsim.model import evaluate_organization
from repro.nvsim.organization import ArrayOrganization, candidate_organizations
from repro.nvsim.result import (
    DEFAULT_TARGET_SWEEP,
    ArrayCharacterization,
    OptimizationTarget,
)
from repro.tech.node import get_node
from repro.units import BITS_PER_BYTE

#: Default data bits moved per access (a 64-bit word); the LLC studies use
#: 512 (a 64-byte line).
DEFAULT_ACCESS_BITS = 64

#: Designs below this area efficiency are rejected outright as unbuildable.
MIN_AREA_EFFICIENCY = 0.02
#: The characterizer prefers designs at or above this efficiency (a real
#: memory compiler would not tape out a macro that is mostly periphery);
#: it falls back to the full space when nothing qualifies.  Figure 12's
#: co-design study explores relaxing exactly this constraint.
PREFERRED_AREA_EFFICIENCY = 0.50


def _rank_metric(
    numbers_read_latency: float,
    numbers_write_latency: float,
    numbers_read_energy: float,
    numbers_write_energy: float,
    numbers_area: float,
    numbers_leakage: float,
    target: OptimizationTarget,
) -> float:
    table = {
        OptimizationTarget.READ_LATENCY: numbers_read_latency,
        OptimizationTarget.WRITE_LATENCY: numbers_write_latency,
        OptimizationTarget.READ_ENERGY: numbers_read_energy,
        OptimizationTarget.WRITE_ENERGY: numbers_write_energy,
        OptimizationTarget.READ_EDP: numbers_read_energy * numbers_read_latency,
        OptimizationTarget.WRITE_EDP: numbers_write_energy * numbers_write_latency,
        OptimizationTarget.AREA: numbers_area,
        OptimizationTarget.LEAKAGE: numbers_leakage,
    }
    return table[target]


@lru_cache(maxsize=4096)
def _characterize_all(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int,
    access_bits: int,
    bits_per_cell: int,
) -> tuple[tuple[ArrayOrganization, "object"], ...]:
    """Evaluate every candidate organization once (cached)."""
    node = get_node(node_nm)
    capacity_bits = capacity_bytes * BITS_PER_BYTE
    evaluated = []
    for org in candidate_organizations(capacity_bits, access_bits, bits_per_cell):
        numbers = evaluate_organization(cell, node, org)
        if numbers.area_efficiency < MIN_AREA_EFFICIENCY:
            continue
        evaluated.append((org, numbers))
    if not evaluated:
        raise CharacterizationError(
            f"no feasible organization for {cell.name} at {capacity_bytes} bytes "
            f"({bits_per_cell} bits/cell, {access_bits}-bit access)"
        )
    return tuple(evaluated)


def characterize(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int = 22,
    optimization_target: OptimizationTarget = OptimizationTarget.READ_EDP,
    access_bits: int = DEFAULT_ACCESS_BITS,
    bits_per_cell: int = 1,
) -> ArrayCharacterization:
    """Characterize one memory array (the NVSim entry point).

    Parameters
    ----------
    cell:
        The memory cell definition (tentpole, preset, or custom).
    capacity_bytes:
        Usable array capacity in bytes.
    node_nm:
        Implementation process node (the paper implements eNVMs at 22 nm and
        compares against 16 nm SRAM).
    optimization_target:
        Which metric the internal-organization sweep minimizes.
    access_bits:
        Data bits transferred per access (64 for a word, 512 for a cache
        line).
    bits_per_cell:
        1 for SLC; >1 engages the MLC read/write models.

    Raises
    ------
    CharacterizationError
        If no internal organization can realize the request.
    """
    cell.with_bits_per_cell(bits_per_cell)
    evaluated = _characterize_all(
        cell, int(capacity_bytes), node_nm, access_bits, bits_per_cell
    )
    preferred = tuple(
        pair for pair in evaluated
        if pair[1].area_efficiency >= PREFERRED_AREA_EFFICIENCY
    )
    if preferred:
        evaluated = preferred

    def metric(pair) -> float:
        return _rank_metric(
            pair[1].read_latency,
            pair[1].write_latency,
            pair[1].read_energy,
            pair[1].write_energy,
            pair[1].area,
            pair[1].leakage_power,
            optimization_target,
        )

    best_value = min(metric(pair) for pair in evaluated)
    # Among organizations within 5% of the optimum, prefer the one with the
    # highest area efficiency (fewest subarrays / least periphery), then the
    # most bank-level concurrency — a real memory compiler breaks near-ties
    # toward the cheaper design, and banking is free among equals.
    near_optimal = [pair for pair in evaluated if metric(pair) <= 1.05 * best_value]
    best_org, best = max(
        near_optimal,
        key=lambda pair: (round(pair[1].area_efficiency, 2), pair[0].concurrency),
    )
    return ArrayCharacterization(
        cell=cell,
        capacity_bytes=int(capacity_bytes),
        node_nm=node_nm,
        bits_per_cell=bits_per_cell,
        optimization_target=optimization_target,
        organization=best_org,
        area=best.area,
        area_efficiency=best.area_efficiency,
        read_latency=best.read_latency,
        write_latency=best.write_latency,
        read_energy=best.read_energy,
        write_energy=best.write_energy,
        leakage_power=best.leakage_power,
        sleep_power=best.sleep_power,
    )


def characterize_sweep(
    cells: Iterable[CellTechnology],
    capacity_bytes: int,
    node_nm: int = 22,
    targets: Sequence[OptimizationTarget] = DEFAULT_TARGET_SWEEP,
    access_bits: int = DEFAULT_ACCESS_BITS,
    bits_per_cell: int = 1,
    sram_node_nm: Optional[int] = 16,
) -> list[ArrayCharacterization]:
    """Characterize many cells under many optimization targets (Figure 3).

    SRAM cells are implemented at ``sram_node_nm`` (16 nm in the paper)
    while eNVMs use ``node_nm`` (22 nm), matching the paper's comparison
    setup.
    """
    results: list[ArrayCharacterization] = []
    for cell in cells:
        cell_node = node_nm
        if not cell.tech_class.is_nonvolatile and sram_node_nm is not None:
            cell_node = sram_node_nm
        for target in targets:
            results.append(
                characterize(
                    cell,
                    capacity_bytes,
                    node_nm=cell_node,
                    optimization_target=target,
                    access_bits=access_bits,
                    bits_per_cell=bits_per_cell,
                )
            )
    return results


def all_organizations(
    cell: CellTechnology,
    capacity_bytes: int,
    node_nm: int = 22,
    access_bits: int = DEFAULT_ACCESS_BITS,
    bits_per_cell: int = 1,
) -> list[ArrayCharacterization]:
    """Every feasible organization as a full characterization (Figure 12).

    Unlike :func:`characterize` this does not pick a winner — the co-design
    studies filter this cloud by area efficiency and look at latency/power
    structure across it.
    """
    evaluated = _characterize_all(
        cell, int(capacity_bytes), node_nm, access_bits, bits_per_cell
    )
    out = []
    for org, numbers in evaluated:
        out.append(
            ArrayCharacterization(
                cell=cell,
                capacity_bytes=int(capacity_bytes),
                node_nm=node_nm,
                bits_per_cell=bits_per_cell,
                optimization_target=OptimizationTarget.READ_EDP,
                organization=org,
                area=numbers.area,
                area_efficiency=numbers.area_efficiency,
                read_latency=numbers.read_latency,
                write_latency=numbers.write_latency,
                read_energy=numbers.read_energy,
                write_energy=numbers.write_energy,
                leakage_power=numbers.leakage_power,
                sleep_power=numbers.sleep_power,
            )
        )
    return out
