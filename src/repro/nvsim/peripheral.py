"""Peripheral circuit models: decoders, muxes, drivers, charge pumps.

These follow NVSim's structure: a hierarchical row decoder built from
predecoders and final NAND stages, a pass-gate column multiplexer, inverter
chains for wordline and output drivers, and a charge pump for technologies
whose write voltage exceeds the logic supply.  Each model reports delay,
dynamic energy per operation, leakage power, and layout area so the subarray
model can assemble totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.delay import buffer_chain_delay
from repro.tech.node import TechnologyNode


@dataclass(frozen=True)
class CircuitBlock:
    """Delay / energy / leakage / area of one peripheral block."""

    delay: float  # s
    dynamic_energy: float  # J per operation
    leakage_power: float  # W
    area: float  # m^2

    @staticmethod
    def zero() -> "CircuitBlock":
        return CircuitBlock(0.0, 0.0, 0.0, 0.0)

    def __add__(self, other: "CircuitBlock") -> "CircuitBlock":
        return CircuitBlock(
            delay=self.delay + other.delay,
            dynamic_energy=self.dynamic_energy + other.dynamic_energy,
            leakage_power=self.leakage_power + other.leakage_power,
            area=self.area + other.area,
        )

    def scaled(self, count: float) -> "CircuitBlock":
        """The same block replicated ``count`` times (delay unchanged)."""
        return CircuitBlock(
            delay=self.delay,
            dynamic_energy=self.dynamic_energy * count,
            leakage_power=self.leakage_power * count,
            area=self.area * count,
        )


def row_decoder(node: TechnologyNode, n_rows: int, wordline_cap: float) -> CircuitBlock:
    """Hierarchical row decoder for ``n_rows`` wordlines.

    Modelled as ``ceil(log4(n_rows))`` predecode/decode stages of FO4 delay
    followed by a buffer chain sized to drive the selected wordline.  Energy
    charges one path through the tree plus the wordline; leakage and area
    scale with the total device count (~4 transistors per row at the final
    stage plus a predecoder tree).
    """
    if n_rows < 2:
        return CircuitBlock.zero()
    n_stages = max(1, math.ceil(math.log(n_rows, 4.0)))
    stage_cap = 4.0 * node.min_transistor_gate_cap
    decode_delay = n_stages * node.logic_gate_delay
    decode_energy = n_stages * stage_cap * node.vdd**2

    drive = buffer_chain_delay(node, wordline_cap)

    # Final-stage NAND gates: ~4 min-width transistors per row; predecoders
    # add ~25% more devices.  High-Vt devices keep per-gate leakage at ~20%
    # of a nominal transistor's.
    n_devices = 4 * n_rows * 1.25
    leakage = 0.05 * n_devices * node.min_transistor_leakage
    gate_area = (8 * node.feature_size) * (12 * node.feature_size)
    area = n_rows * 1.25 * gate_area

    return CircuitBlock(
        delay=decode_delay + drive.delay,
        dynamic_energy=decode_energy + drive.energy,
        leakage_power=leakage,
        area=area,
    )


def column_mux(node: TechnologyNode, n_cols: int, mux_degree: int) -> CircuitBlock:
    """Pass-gate column multiplexer selecting ``n_cols / mux_degree`` lines."""
    if mux_degree <= 1:
        return CircuitBlock.zero()
    pass_gate_cap = 2.0 * node.min_transistor_gate_cap
    # One select line toggles per access; delay is one RC through the gate.
    delay = 2.0 * node.logic_gate_delay
    energy = (n_cols / mux_degree) * pass_gate_cap * node.vdd**2
    # Pass transistors sit in series with floating bitlines and contribute
    # little sub-threshold current of their own.
    n_devices = n_cols  # one pass transistor per bitline
    leakage = 0.02 * n_devices * node.min_transistor_leakage
    gate_area = (6 * node.feature_size) * (8 * node.feature_size)
    return CircuitBlock(
        delay=delay,
        dynamic_energy=energy,
        leakage_power=leakage,
        area=n_devices * gate_area,
    )


def sense_amplifiers(node: TechnologyNode, count: int) -> CircuitBlock:
    """A bank of ``count`` latched sense amplifiers."""
    if count <= 0:
        return CircuitBlock.zero()
    # Sense amps are power-gated between accesses; only bias devices leak.
    per_amp_leak = 0.4 * node.min_transistor_leakage
    return CircuitBlock(
        delay=node.sense_amp_delay,
        dynamic_energy=count * node.sense_amp_energy,
        leakage_power=count * per_amp_leak,
        area=count * node.sense_amp_area,
    )


def write_drivers(
    node: TechnologyNode,
    count: int,
    write_voltage: float,
    write_current: float,
) -> CircuitBlock:
    """Per-bitline write drivers sized for the cell's programming current.

    Driver width scales with the required current; the energy of switching
    the drivers themselves (not the cell programming energy, which the
    subarray model adds separately) charges their gate capacitance.
    """
    if count <= 0:
        return CircuitBlock.zero()
    width_factor = max(1.0, write_current / (node.ion_per_um * node.min_width_um))
    gate_cap = width_factor * node.min_transistor_gate_cap * 2.0
    delay = buffer_chain_delay(node, gate_cap).delay
    energy = count * gate_cap * node.vdd**2
    leakage = count * width_factor * 0.15 * node.min_transistor_leakage
    per_driver_area = width_factor * (10 * node.feature_size) * (20 * node.feature_size)
    return CircuitBlock(
        delay=delay,
        dynamic_energy=energy,
        leakage_power=leakage,
        area=count * per_driver_area,
    )


def charge_pump(node: TechnologyNode, write_voltage: float) -> CircuitBlock:
    """Charge pump supplying a boosted write rail.

    Only needed when the cell's write voltage exceeds vdd.  The pump's
    inefficiency is charged to write energy by the subarray model through
    :func:`pump_efficiency`; here we account for its standby leakage and
    area (both grow with the boost ratio).
    """
    if write_voltage <= node.vdd:
        return CircuitBlock.zero()
    boost = write_voltage / node.vdd
    n_stages = max(1, math.ceil(boost) - 1)
    stage_area = (200 * node.feature_size) * (200 * node.feature_size)
    leakage = n_stages * 20.0 * node.min_transistor_leakage
    return CircuitBlock(
        delay=0.0,  # the pump rail is kept charged; no per-access delay
        dynamic_energy=0.0,
        leakage_power=leakage,
        area=n_stages * stage_area,
    )


def pump_efficiency(node: TechnologyNode, write_voltage: float) -> float:
    """Power efficiency of the boosted write rail (1.0 when no pump)."""
    if write_voltage <= node.vdd:
        return 1.0
    # Dickson-style pumps lose ~10% per stage.
    n_stages = max(1, math.ceil(write_voltage / node.vdd) - 1)
    return max(0.3, 0.9**n_stages)


def output_driver(node: TechnologyNode, bus_cap: float, width_bits: int) -> CircuitBlock:
    """Drivers pushing ``width_bits`` of data onto the global bus."""
    drive = buffer_chain_delay(node, bus_cap)
    gate_area = (10 * node.feature_size) * (16 * node.feature_size)
    return CircuitBlock(
        delay=drive.delay,
        dynamic_energy=width_bits * drive.energy * 0.5,  # ~50% switching factor
        leakage_power=width_bits * 0.3 * node.min_transistor_leakage,
        area=width_bits * gate_area,
    )
