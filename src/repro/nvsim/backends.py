"""Pluggable array-characterization backends.

The paper's appendix notes "support for ... alternative memory
characterization backends is under development".  This module defines the
backend protocol and two implementations:

* :class:`AnalyticalBackend` — the default, wrapping this package's NVSim
  reimplementation (:func:`repro.nvsim.characterize`).
* :class:`TableBackend` — replays externally-produced characterizations
  (e.g. CSV output of real NVSim/DESTINY runs, or measured silicon) with
  log-log interpolation across capacity, so users can drop in their own
  data without touching the evaluation engine.

Every backend returns the same :class:`ArrayCharacterization`, so the
cross-stack layers are backend-agnostic.
"""

from __future__ import annotations

import math
from typing import Iterable, Protocol

from repro.cells.base import CellTechnology
from repro.errors import CharacterizationError
from repro.nvsim.characterize import characterize
from repro.nvsim.organization import ArrayOrganization
from repro.nvsim.result import ArrayCharacterization, OptimizationTarget
from repro.units import BITS_PER_BYTE


class CharacterizationBackend(Protocol):
    """Anything that can turn (cell, capacity, ...) into a characterization."""

    def characterize(
        self,
        cell: CellTechnology,
        capacity_bytes: int,
        node_nm: int = 22,
        optimization_target: OptimizationTarget = OptimizationTarget.READ_EDP,
        access_bits: int = 64,
        bits_per_cell: int = 1,
    ) -> ArrayCharacterization:
        ...


class AnalyticalBackend:
    """The built-in analytical model (default backend)."""

    def characterize(self, cell, capacity_bytes, node_nm=22,
                     optimization_target=OptimizationTarget.READ_EDP,
                     access_bits=64, bits_per_cell=1) -> ArrayCharacterization:
        return characterize(
            cell, capacity_bytes, node_nm=node_nm,
            optimization_target=optimization_target,
            access_bits=access_bits, bits_per_cell=bits_per_cell,
        )


class TableBackend:
    """Characterizations interpolated from externally-supplied rows.

    ``rows`` are dicts with keys: ``capacity_bytes``, ``area_mm2``,
    ``read_latency_ns``, ``write_latency_ns``, ``read_energy_pj``,
    ``write_energy_pj``, ``leakage_mw`` (and optionally ``sleep_uw``,
    ``area_efficiency``).  Interpolation is log-log in capacity;
    extrapolation beyond the table's range is refused.
    """

    _REQUIRED = (
        "capacity_bytes", "area_mm2", "read_latency_ns", "write_latency_ns",
        "read_energy_pj", "write_energy_pj", "leakage_mw",
    )

    def __init__(self, cell: CellTechnology, rows: Iterable[dict]) -> None:
        self.cell = cell
        self._rows = sorted(
            (dict(r) for r in rows), key=lambda r: r["capacity_bytes"]
        )
        if len(self._rows) < 1:
            raise CharacterizationError("table backend needs at least one row")
        for row in self._rows:
            missing = [k for k in self._REQUIRED if k not in row]
            if missing:
                raise CharacterizationError(
                    f"table backend row missing fields: {missing}"
                )

    def _interpolate(self, capacity_bytes: int) -> dict:
        rows = self._rows
        lo, hi = rows[0], rows[-1]
        if not lo["capacity_bytes"] <= capacity_bytes <= hi["capacity_bytes"]:
            raise CharacterizationError(
                f"capacity {capacity_bytes} outside table range "
                f"[{lo['capacity_bytes']}, {hi['capacity_bytes']}]"
            )
        for a, b in zip(rows, rows[1:]):
            if a["capacity_bytes"] <= capacity_bytes <= b["capacity_bytes"]:
                lo, hi = a, b
                break
        if lo["capacity_bytes"] == hi["capacity_bytes"]:
            return dict(lo)
        t = (
            math.log(capacity_bytes / lo["capacity_bytes"])
            / math.log(hi["capacity_bytes"] / lo["capacity_bytes"])
        )
        out = {}
        for key in sorted(set(lo) | set(hi)):
            a, b = lo.get(key), hi.get(key)
            if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                    and a > 0 and b > 0:
                out[key] = math.exp(math.log(a) + t * (math.log(b) - math.log(a)))
            else:
                out[key] = a if a is not None else b
        return out

    def characterize(self, cell, capacity_bytes, node_nm=22,
                     optimization_target=OptimizationTarget.READ_EDP,
                     access_bits=64, bits_per_cell=1) -> ArrayCharacterization:
        if cell != self.cell:
            raise CharacterizationError(
                "table backend was built for a different cell"
            )
        row = self._interpolate(int(capacity_bytes))
        capacity_bits = int(capacity_bytes) * BITS_PER_BYTE
        # A nominal organization consistent with the capacity so bandwidth
        # and concurrency remain defined.
        rows_, cols_ = 1024, 2048
        n_sub = max(1, math.ceil(capacity_bits / (rows_ * cols_ * bits_per_cell)))
        organization = ArrayOrganization(
            rows=rows_, cols=cols_, mux=32, n_subarrays=n_sub,
            active_subarrays=1, access_bits=access_bits,
            bits_per_cell=bits_per_cell,
        )
        area = row["area_mm2"] * 1e-6
        return ArrayCharacterization(
            cell=cell,
            capacity_bytes=int(capacity_bytes),
            node_nm=node_nm,
            bits_per_cell=bits_per_cell,
            optimization_target=optimization_target,
            organization=organization,
            area=area,
            area_efficiency=float(row.get("area_efficiency", 0.8)),
            read_latency=row["read_latency_ns"] * 1e-9,
            write_latency=row["write_latency_ns"] * 1e-9,
            read_energy=row["read_energy_pj"] * 1e-12,
            write_energy=row["write_energy_pj"] * 1e-12,
            leakage_power=row["leakage_mw"] * 1e-3,
            sleep_power=float(row.get("sleep_uw", 100.0 * row["area_mm2"])) * 1e-6,
        )


DEFAULT_BACKEND = AnalyticalBackend()
