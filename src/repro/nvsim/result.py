"""Array characterization results.

:class:`ArrayCharacterization` is the contract between the array model and
everything above it (the cross-stack engine, the studies, the benches): one
fully-characterized memory array with its timing, energy, area, bandwidth,
and reliability properties.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.cells.base import CellTechnology
from repro.errors import CharacterizationError
from repro.nvsim.organization import ArrayOrganization
from repro.units import BITS_PER_BYTE, to_mm2, to_ns, to_pj


class OptimizationTarget(enum.Enum):
    """What the internal-organization sweep minimizes (NVSim's -OptimizeFor)."""

    READ_LATENCY = "ReadLatency"
    WRITE_LATENCY = "WriteLatency"
    READ_ENERGY = "ReadEnergy"
    WRITE_ENERGY = "WriteEnergy"
    READ_EDP = "ReadEDP"
    WRITE_EDP = "WriteEDP"
    AREA = "Area"
    LEAKAGE = "Leakage"

    @classmethod
    def from_string(cls, name: str) -> "OptimizationTarget":
        normalized = name.strip().lower().replace("_", "").replace("-", "")
        for member in cls:
            if member.value.lower() == normalized:
                return member
        raise ValueError(f"unknown optimization target: {name!r}")


#: The targets Figure 3 sweeps ("array characterization under different
#: optimization goals").
DEFAULT_TARGET_SWEEP: tuple[OptimizationTarget, ...] = (
    OptimizationTarget.READ_LATENCY,
    OptimizationTarget.READ_EDP,
    OptimizationTarget.WRITE_EDP,
    OptimizationTarget.READ_ENERGY,
    OptimizationTarget.WRITE_ENERGY,
    OptimizationTarget.AREA,
)


@dataclass(frozen=True)
class ArrayCharacterization:
    """A characterized memory array.

    All quantities are in base SI units; energies are per full access of
    ``organization.access_bits`` data bits.
    """

    cell: CellTechnology
    capacity_bytes: int
    node_nm: int
    bits_per_cell: int
    optimization_target: OptimizationTarget
    organization: ArrayOrganization

    area: float  # m^2
    area_efficiency: float  # cell area / total area, in (0, 1]
    read_latency: float  # s
    write_latency: float  # s
    read_energy: float  # J per access
    write_energy: float  # J per access
    leakage_power: float  # W, array active/idle (powered)
    sleep_power: float  # W, deep-sleep retention rail

    @property
    def label(self) -> str:
        return f"{self.cell.name}@{self.capacity_bytes // (1024 * 1024)}MB"

    @property
    def tech_class(self):
        return self.cell.tech_class

    @property
    def capacity_bits(self) -> int:
        return self.capacity_bytes * BITS_PER_BYTE

    @property
    def access_bytes(self) -> float:
        return self.organization.access_bits / BITS_PER_BYTE

    @property
    def read_bandwidth(self) -> float:
        """Peak sustainable read bandwidth, bytes/second (bank-pipelined)."""
        return self.access_bytes * self.organization.concurrency / self.read_latency

    @property
    def write_bandwidth(self) -> float:
        """Peak sustainable write bandwidth, bytes/second."""
        return self.access_bytes * self.organization.concurrency / self.write_latency

    @property
    def density_mbit_per_mm2(self) -> float:
        """Storage density in Mbit per mm^2."""
        return (self.capacity_bits / 1e6) / to_mm2(self.area)

    @property
    def read_energy_per_bit(self) -> float:
        return self.read_energy / self.organization.access_bits

    @property
    def write_energy_per_bit(self) -> float:
        return self.write_energy / self.organization.access_bits

    @property
    def endurance_cycles(self) -> Optional[float]:
        return self.cell.endurance_cycles

    @property
    def retention_seconds(self) -> Optional[float]:
        return self.cell.retention_seconds

    def metric(self, target: OptimizationTarget) -> float:
        """The scalar this characterization would be ranked by for ``target``."""
        table = {
            OptimizationTarget.READ_LATENCY: self.read_latency,
            OptimizationTarget.WRITE_LATENCY: self.write_latency,
            OptimizationTarget.READ_ENERGY: self.read_energy,
            OptimizationTarget.WRITE_ENERGY: self.write_energy,
            OptimizationTarget.READ_EDP: self.read_energy * self.read_latency,
            OptimizationTarget.WRITE_EDP: self.write_energy * self.write_latency,
            OptimizationTarget.AREA: self.area,
            OptimizationTarget.LEAKAGE: self.leakage_power,
        }
        return table[target]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable representation (the on-disk cache payload)."""
        from repro.cells.export import cell_to_dict

        return {
            "cell": cell_to_dict(self.cell),
            "capacity_bytes": self.capacity_bytes,
            "node_nm": self.node_nm,
            "bits_per_cell": self.bits_per_cell,
            "optimization_target": self.optimization_target.value,
            "organization": self.organization.to_dict(),
            "area": self.area,
            "area_efficiency": self.area_efficiency,
            "read_latency": self.read_latency,
            "write_latency": self.write_latency,
            "read_energy": self.read_energy,
            "write_energy": self.write_energy,
            "leakage_power": self.leakage_power,
            "sleep_power": self.sleep_power,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrayCharacterization":
        """Rebuild a characterization from :meth:`to_dict` output."""
        from repro.cells.export import cell_from_dict
        from repro.nvsim.organization import ArrayOrganization

        try:
            return cls(
                cell=cell_from_dict(data["cell"]),
                capacity_bytes=int(data["capacity_bytes"]),
                node_nm=int(data["node_nm"]),
                bits_per_cell=int(data["bits_per_cell"]),
                optimization_target=OptimizationTarget.from_string(
                    str(data["optimization_target"])
                ),
                organization=ArrayOrganization.from_dict(data["organization"]),
                area=float(data["area"]),
                area_efficiency=float(data["area_efficiency"]),
                read_latency=float(data["read_latency"]),
                write_latency=float(data["write_latency"]),
                read_energy=float(data["read_energy"]),
                write_energy=float(data["write_energy"]),
                leakage_power=float(data["leakage_power"]),
                sleep_power=float(data["sleep_power"]),
            )
        except (KeyError, ValueError) as exc:
            raise CharacterizationError(
                f"invalid characterization payload: {exc}"
            ) from exc

    def summary(self) -> str:
        """Human-readable one-line summary (for examples and reports)."""
        return (
            f"{self.label:36s} {self.optimization_target.value:12s} "
            f"area={to_mm2(self.area):7.3f}mm2 eff={self.area_efficiency:5.1%} "
            f"tR={to_ns(self.read_latency):8.2f}ns tW={to_ns(self.write_latency):10.2f}ns "
            f"eR={to_pj(self.read_energy):9.2f}pJ eW={to_pj(self.write_energy):10.2f}pJ "
            f"leak={self.leakage_power * 1e3:7.3f}mW"
        )
