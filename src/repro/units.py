"""Unit constants and conversion helpers.

All internal computation in this package uses base SI units: seconds, joules,
watts, meters, bytes (capacity) and bits (cell-level).  These helpers exist so
code reads like the paper ("10 ns write pulse", "4 MB array") while staying
unambiguous at the call site.
"""

from __future__ import annotations

# --- time ---
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9
PICOSECOND = 1e-12

# --- energy ---
JOULE = 1.0
MILLIJOULE = 1e-3
MICROJOULE = 1e-6
NANOJOULE = 1e-9
PICOJOULE = 1e-12
FEMTOJOULE = 1e-15

# --- power ---
WATT = 1.0
MILLIWATT = 1e-3
MICROWATT = 1e-6
NANOWATT = 1e-9

# --- length ---
METER = 1.0
MILLIMETER = 1e-3
MICROMETER = 1e-6
NANOMETER = 1e-9

# --- capacitance / resistance / current / voltage ---
FARAD = 1.0
PICOFARAD = 1e-12
FEMTOFARAD = 1e-15
OHM = 1.0
KILOOHM = 1e3
MEGAOHM = 1e6
AMPERE = 1.0
MILLIAMPERE = 1e-3
MICROAMPERE = 1e-6
NANOAMPERE = 1e-9
VOLT = 1.0

# --- capacity ---
BYTE = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

BITS_PER_BYTE = 8

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


def mb(n: float) -> int:
    """Capacity of *n* mebibytes, in bytes."""
    return int(n * MB)


def kb(n: float) -> int:
    """Capacity of *n* kibibytes, in bytes."""
    return int(n * KB)


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds (for reporting)."""
    return seconds / NANOSECOND


def to_pj(joules: float) -> float:
    """Convert joules to picojoules (for reporting)."""
    return joules / PICOJOULE


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts (for reporting)."""
    return watts / MILLIWATT


def to_mm2(square_meters: float) -> float:
    """Convert m^2 to mm^2 (for reporting)."""
    return square_meters / (MILLIMETER * MILLIMETER)


def years(seconds: float) -> float:
    """Convert seconds to years (for lifetime reporting)."""
    return seconds / SECONDS_PER_YEAR
