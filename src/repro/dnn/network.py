"""A sequential network with weight get/set for fault injection."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dnn.layers import Dense, ReLU, cross_entropy_grad, softmax
from repro.errors import ReproError


class MLP:
    """A multi-layer perceptron classifier.

    ``layer_sizes`` includes the input and output dimensions, e.g.
    ``(16, 64, 64, 10)`` builds two hidden layers.
    """

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0) -> None:
        if len(layer_sizes) < 2:
            raise ReproError("need at least input and output sizes")
        rng = np.random.default_rng(seed)
        self.layers: list = []
        for i, (n_in, n_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            self.layers.append(Dense(n_in, n_out, rng=rng))
            if i < len(layer_sizes) - 2:
                self.layers.append(ReLU())
        self.layer_sizes = tuple(layer_sizes)

    # --- inference -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x).argmax(axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.forward(x))

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(x) == labels).mean())

    # --- training --------------------------------------------------------------

    def train_step(
        self, x: np.ndarray, labels: np.ndarray, learning_rate: float
    ) -> float:
        logits = self.forward(x)
        loss, grad = cross_entropy_grad(logits, labels)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        for layer in self.layers:
            layer.step(learning_rate)
        return loss

    # --- weights as tensors (the fault-injection interface) ---------------------

    @property
    def dense_layers(self) -> list[Dense]:
        return [layer for layer in self.layers if isinstance(layer, Dense)]

    def get_weights(self) -> list[np.ndarray]:
        """Copies of every dense layer's weight matrix (biases excluded —
        biases stay in registers/SRAM in the storage scenarios)."""
        return [layer.weight.copy() for layer in self.dense_layers]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        dense = self.dense_layers
        if len(weights) != len(dense):
            raise ReproError(
                f"expected {len(dense)} weight tensors, got {len(weights)}"
            )
        for layer, new in zip(dense, weights):
            if new.shape != layer.weight.shape:
                raise ReproError(
                    f"weight shape mismatch: {new.shape} vs {layer.weight.shape}"
                )
            layer.weight = np.asarray(new, dtype=np.float32).copy()

    @property
    def n_parameters(self) -> int:
        return sum(layer.parameters for layer in self.dense_layers)
