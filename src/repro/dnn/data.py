"""Deterministic synthetic classification datasets.

The fault studies need a task whose accuracy is high when weights are clean
and degrades as storage corrupts them.  Gaussian class clusters with partial
overlap give exactly that, with fully deterministic generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class Dataset:
    """Train/test split of a classification task."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]


def gaussian_clusters(
    n_classes: int = 10,
    n_features: int = 16,
    train_per_class: int = 200,
    test_per_class: int = 100,
    spread: float = 0.72,
    seed: int = 42,
) -> Dataset:
    """Classes as Gaussian clusters around random unit-sphere centers.

    ``spread`` controls overlap: larger spread = harder task, more headroom
    for fault-induced degradation to show.
    """
    if n_classes < 2:
        raise ReproError("need at least two classes")
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, n_features))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    centers *= 2.0

    def sample(per_class: int, offset: int) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = [], []
        for cls in range(n_classes):
            local = np.random.default_rng(seed + offset + cls)
            xs.append(centers[cls] + spread * local.normal(size=(per_class, n_features)))
            ys.append(np.full(per_class, cls))
        x = np.concatenate(xs).astype(np.float32)
        y = np.concatenate(ys).astype(np.int64)
        order = np.random.default_rng(seed + offset + 1000).permutation(len(y))
        return x[order], y[order]

    x_train, y_train = sample(train_per_class, offset=1)
    x_test, y_test = sample(test_per_class, offset=50_000)
    return Dataset(x_train, y_train, x_test, y_test, n_classes)
