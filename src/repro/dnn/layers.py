"""Neural-network layers on numpy.

A small inference/training substrate standing in for PyTorch in the fault
studies (DESIGN.md, "Substitutions"): dense layers with ReLU, softmax
cross-entropy, and enough backward-pass machinery for deterministic SGD
training on the synthetic tasks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ReproError


class Dense:
    """A fully-connected layer: ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ReproError("layer dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, size=(in_features, out_features)).astype(
            np.float32
        )
        self.bias = np.zeros(out_features, dtype=np.float32)
        self._input: Optional[np.ndarray] = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ReproError("backward called before forward")
        self.grad_weight = self._input.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def step(self, learning_rate: float) -> None:
        self.weight -= learning_rate * self.grad_weight
        self.bias -= learning_rate * self.grad_bias

    @property
    def parameters(self) -> int:
        return self.weight.size + self.bias.size


class ReLU:
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ReproError("backward called before forward")
        return grad_out * self._mask

    def step(self, learning_rate: float) -> None:  # stateless
        pass


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically-stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_grad(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """(mean loss, dLoss/dLogits) for integer labels."""
    n = logits.shape[0]
    probs = softmax(logits)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
