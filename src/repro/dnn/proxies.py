"""Trained proxy networks for the paper's fault-study workloads.

The paper injects faults into ResNet18 weights and measures ImageNet-class
accuracy through PyTorch.  Offline, this module supplies the equivalent
integration point: small MLPs trained on a synthetic task, registered under
the workload names the studies use.  What matters for the reproduction is
the *accuracy-versus-error-rate response*, which is a property of the fault
models and the storage encoding, not of the network's absolute size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.dnn.data import Dataset, gaussian_clusters
from repro.dnn.network import MLP
from repro.errors import ReproError
from repro.faults.injection import accuracy_under_faults
from repro.faults.models import FaultModel


@dataclass(frozen=True)
class TrainedProxy:
    """A trained network plus its evaluation data and clean accuracy."""

    name: str
    network: MLP
    dataset: Dataset
    baseline_accuracy: float

    def evaluate_with_weights(self, weights: Sequence[np.ndarray]) -> float:
        """Task accuracy with the given (possibly corrupted) weights."""
        original = self.network.get_weights()
        try:
            self.network.set_weights(weights)
            return self.network.accuracy(self.dataset.x_test, self.dataset.y_test)
        finally:
            self.network.set_weights(original)

    def accuracy_under_model(
        self, model: FaultModel, trials: int = 5, seed: int = 0
    ) -> float:
        """Mean accuracy across fault-injection trials."""
        return accuracy_under_faults(
            self.evaluate_with_weights,
            self.network.get_weights(),
            model,
            trials=trials,
            seed=seed,
        )


def _train(
    name: str,
    hidden: tuple[int, ...],
    epochs: int = 30,
    learning_rate: float = 0.08,
    seed: int = 3,
) -> TrainedProxy:
    dataset = gaussian_clusters(seed=seed)
    sizes = (dataset.n_features, *hidden, dataset.n_classes)
    network = MLP(sizes, seed=seed)
    n = len(dataset.y_train)
    batch = 64
    rng = np.random.default_rng(seed + 1)
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            idx = order[start : start + batch]
            network.train_step(dataset.x_train[idx], dataset.y_train[idx], learning_rate)
    accuracy = network.accuracy(dataset.x_test, dataset.y_test)
    if accuracy < 0.7:
        raise ReproError(f"proxy {name} failed to train (accuracy {accuracy:.2f})")
    return TrainedProxy(
        name=name, network=network, dataset=dataset, baseline_accuracy=accuracy
    )


_PROXY_SHAPES: dict[str, tuple[int, ...]] = {
    "resnet18": (96, 96),
    "resnet26": (96, 96, 64),
    "albert": (128, 96),
}


@lru_cache(maxsize=None)
def trained_proxy(name: str) -> TrainedProxy:
    """The cached trained proxy for a workload name."""
    try:
        hidden = _PROXY_SHAPES[name]
    except KeyError:
        raise ReproError(
            f"no proxy network registered for {name!r} "
            f"(known: {sorted(_PROXY_SHAPES)})"
        ) from None
    return _train(name, hidden)
