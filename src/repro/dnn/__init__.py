"""Numpy DNN substrate: layers, networks, datasets, trained proxies."""

from repro.dnn.data import Dataset, gaussian_clusters
from repro.dnn.layers import Dense, ReLU, cross_entropy_grad, softmax
from repro.dnn.network import MLP
from repro.dnn.proxies import TrainedProxy, trained_proxy

__all__ = [
    "Dataset",
    "gaussian_clusters",
    "Dense",
    "ReLU",
    "softmax",
    "cross_entropy_grad",
    "MLP",
    "TrainedProxy",
    "trained_proxy",
]
