"""Exception hierarchy for the NVMExplorer reproduction.

All errors raised by this package derive from :class:`ReproError` so callers
can catch framework-level failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by ``repro``."""


class ConfigError(ReproError):
    """A user-supplied configuration file or dict is invalid."""


class CellDefinitionError(ReproError):
    """A memory cell definition is missing fields or physically inconsistent."""


class CharacterizationError(ReproError):
    """The array characterizer could not produce a valid design.

    Raised, for example, when no internal array organization satisfies the
    requested capacity and constraints.
    """


class TrafficError(ReproError):
    """A traffic pattern is inconsistent (negative rates, zero duration...)."""


class FaultModelError(ReproError):
    """A fault model is unavailable or its parameters are out of range."""


class EvaluationError(ReproError):
    """The cross-stack evaluation engine hit an unrecoverable condition."""


class UnknownTechnologyError(CellDefinitionError):
    """Requested a technology class that the framework does not know about."""


class ExecutionError(ReproError):
    """The execution substrate itself failed unrecoverably.

    Raised when infrastructure faults exceed what the resilience layer
    can absorb — e.g. the worker pool cannot be rebuilt.
    """


class TransientError(ReproError):
    """An infrastructure fault that may succeed on retry.

    The resilience layer (:mod:`repro.runtime.resilience`) classifies
    failures into transient (worker crashes, injected chaos faults,
    deadline timeouts — retried with backoff) and deterministic (model
    errors such as :class:`CharacterizationError` — failing immediately,
    since re-running the same inputs reproduces the same failure).
    """


class PoisonedPointError(TransientError):
    """A sweep point exhausted its retry budget on transient faults.

    Under ``on_error="raise"`` a poisoned point aborts the sweep with
    this error; under ``on_error="skip"`` it is recorded as ``POISONED``
    telemetry and the sweep completes around it.  It stays transient:
    a fresh run (on healthy infrastructure) may well succeed.
    """
