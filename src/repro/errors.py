"""Exception hierarchy for the NVMExplorer reproduction.

All errors raised by this package derive from :class:`ReproError` so callers
can catch framework-level failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by ``repro``."""


class ConfigError(ReproError):
    """A user-supplied configuration file or dict is invalid."""


class CellDefinitionError(ReproError):
    """A memory cell definition is missing fields or physically inconsistent."""


class CharacterizationError(ReproError):
    """The array characterizer could not produce a valid design.

    Raised, for example, when no internal array organization satisfies the
    requested capacity and constraints.
    """


class TrafficError(ReproError):
    """A traffic pattern is inconsistent (negative rates, zero duration...)."""


class FaultModelError(ReproError):
    """A fault model is unavailable or its parameters are out of range."""


class EvaluationError(ReproError):
    """The cross-stack evaluation engine hit an unrecoverable condition."""


class UnknownTechnologyError(CellDefinitionError):
    """Requested a technology class that the framework does not know about."""
