"""Config execution: the programmatic ``run.py``.

``run_config`` accepts a path to a JSON file or an already-parsed dict,
builds the sweep, runs it through the DSE engine, optionally writes the CSV
the paper's artifact produces, and returns the result table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.config.schema import ParsedConfig, parse_config
from repro.core.engine import DSEEngine, SweepSpec
from repro.errors import ConfigError
from repro.results.table import ResultTable


def load_config(source: Union[str, Path, Mapping[str, Any]]) -> ParsedConfig:
    """Load and validate a config from a path or dict."""
    if isinstance(source, Mapping):
        return parse_config(source)
    path = Path(source)
    if not path.exists():
        raise ConfigError(f"config file not found: {path}")
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    return parse_config(raw)


def run_config(
    source: Union[str, Path, Mapping[str, Any]],
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    progress=None,
) -> ResultTable:
    """Execute a configuration end to end.

    ``workers`` and ``cache_dir`` override the config's ``runtime``
    section (e.g. from CLI flags); ``progress`` receives one
    :class:`~repro.runtime.telemetry.ProgressEvent` per sweep point.
    """
    config = load_config(source)
    spec = SweepSpec(
        cells=config.cells,
        capacities_bytes=config.capacities_bytes,
        traffic=config.traffic,
        node_nm=config.node_nm,
        sram_node_nm=config.sram_node_nm,
        optimization_targets=config.optimization_targets,
        access_bits=config.access_bits,
        bits_per_cell=config.bits_per_cell,
    )
    engine = DSEEngine(
        workers=workers if workers is not None else config.workers,
        cache_dir=cache_dir if cache_dir is not None else config.cache_dir,
        on_error=config.on_error,
        progress=progress,
    )
    table = engine.run(spec)
    if config.output_csv:
        out = Path(config.output_csv)
        if out.parent and not out.parent.exists():
            out.parent.mkdir(parents=True, exist_ok=True)
        table.to_csv(str(out))
    return table
