"""Config execution: the programmatic ``run.py``.

``run_config`` accepts a path to a JSON file or an already-parsed dict,
builds the sweep, runs it through the DSE engine, optionally writes the CSV
the paper's artifact produces, and returns the result table.

``run_study_config`` does the same for registered-study configs (the
``config/studies/*.json`` stubs): it resolves the study in the registry,
runs it under the config's runtime options, and writes the CSV and/or
markdown report the config asks for.

``run_suite_config`` executes suite-run configs (``config/suite.json``):
a sharded, incremental pass over the study registry that records a run
manifest next to its outputs (see :mod:`repro.studies.summary`).
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.config.schema import (
    ParsedConfig,
    ServiceConfig,
    StudyConfig,
    SuiteConfig,
    is_service_config,
    is_study_config,
    is_suite_config,
    parse_config,
    parse_service_config,
    parse_study_config,
    parse_suite_config,
)
from repro.core.engine import DSEEngine, SweepSpec
from repro.errors import ConfigError
from repro.results.table import ResultTable

ConfigSource = Union[str, Path, Mapping[str, Any]]


def _load_raw(source: ConfigSource) -> Mapping[str, Any]:
    if isinstance(source, Mapping):
        return source
    path = Path(source)
    if not path.exists():
        raise ConfigError(f"config file not found: {path}")
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(raw, Mapping):
        raise ConfigError(f"{path}: config root must be an object")
    return raw


def load_config(source: ConfigSource) -> ParsedConfig:
    """Load and validate a sweep config from a path or dict."""
    raw = _load_raw(source)
    if is_study_config(raw):
        raise ConfigError(
            "this is a registered-study config; run it with run_study_config "
            "(CLI: it is dispatched automatically)"
        )
    if is_suite_config(raw):
        raise ConfigError(
            "this is a suite-run config; run it with run_suite_config "
            "(CLI: it is dispatched automatically)"
        )
    if is_service_config(raw):
        raise ConfigError(
            "this is a service config; start it with `nvmexplorer serve`"
        )
    return parse_config(raw)


def load_study_config(source: ConfigSource) -> StudyConfig:
    """Load and validate a registered-study config from a path or dict."""
    return parse_study_config(_load_raw(source))


def load_service_config(source: Union[ConfigSource, ServiceConfig]) -> ServiceConfig:
    """Load and validate a serving config from a path or dict.

    An already-parsed :class:`ServiceConfig` passes through unchanged
    (the CLI validates once, applies flag overrides, and forwards it).
    """
    if isinstance(source, ServiceConfig):
        return source
    return parse_service_config(_load_raw(source))


def load_suite_config(source: Union[ConfigSource, SuiteConfig]) -> SuiteConfig:
    """Load and validate a suite-run config from a path or dict.

    An already-parsed :class:`SuiteConfig` passes through unchanged, so
    callers that need the parsed form themselves (e.g. the CLI, for
    ``output_dir``) can validate once and forward it.
    """
    if isinstance(source, SuiteConfig):
        return source
    return parse_suite_config(_load_raw(source))


def _override_runtime(
    runtime,
    workers: Optional[int],
    cache_dir: Optional[str],
    trace_cache_dir: Optional[str],
    seed: Optional[int],
    progress,
    point_shard_index: Optional[int] = None,
    point_shard_count: Optional[int] = None,
    retry=None,
    chaos=None,
    schedule: Optional[str] = None,
    queue_dir: Optional[str] = None,
):
    """Apply CLI-style overrides on top of a config's runtime options."""
    updates: dict[str, Any] = {"progress": progress}
    if workers is not None:
        updates["workers"] = workers
    if cache_dir is not None:
        updates["cache_dir"] = cache_dir
    if trace_cache_dir is not None:
        updates["trace_cache_dir"] = trace_cache_dir
    if seed is not None:
        updates["seed"] = seed
    if point_shard_index is not None:
        updates["point_shard_index"] = point_shard_index
    if point_shard_count is not None:
        updates["point_shard_count"] = point_shard_count
    if retry is not None:
        updates["retry"] = retry
    if chaos is not None:
        updates["chaos"] = chaos
    if schedule is not None:
        updates["schedule"] = schedule
    if queue_dir is not None:
        updates["queue_dir"] = queue_dir
    try:
        return dataclasses.replace(runtime, **updates)
    except ValueError as exc:
        raise ConfigError(f"runtime overrides: {exc}") from exc


def _destination(path: str) -> Path:
    """The output path, with its parent directory ensured."""
    out = Path(path)
    if out.parent and not out.parent.exists():
        out.parent.mkdir(parents=True, exist_ok=True)
    return out


def _write_csv(table: ResultTable, destination: Optional[str]) -> None:
    if destination:
        table.to_csv(str(_destination(destination)))


def run_config(
    source: ConfigSource,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    trace_cache_dir: Optional[str] = None,
    seed: Optional[int] = None,
    progress=None,
    point_shard_index: Optional[int] = None,
    point_shard_count: Optional[int] = None,
    retry=None,
    chaos=None,
    schedule: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> ResultTable:
    """Execute a sweep configuration end to end.

    ``workers``/``cache_dir``/``trace_cache_dir``/``seed``/
    ``point_shard_index``/``point_shard_count``/``retry``/``chaos``
    override the config's ``runtime`` section (e.g. from CLI flags);
    ``progress`` receives one
    :class:`~repro.runtime.telemetry.ProgressEvent` per sweep point.
    """
    config = load_config(source)
    spec = SweepSpec(
        cells=config.cells,
        capacities_bytes=config.capacities_bytes,
        traffic=config.traffic,
        node_nm=config.node_nm,
        sram_node_nm=config.sram_node_nm,
        optimization_targets=config.optimization_targets,
        access_bits=config.access_bits,
        bits_per_cell=config.bits_per_cell,
    )
    runtime = _override_runtime(
        config.runtime_options(), workers, cache_dir, trace_cache_dir, seed,
        progress, point_shard_index, point_shard_count, retry, chaos,
        schedule, queue_dir,
    )
    table = DSEEngine.from_options(runtime).run(spec)
    _write_csv(table, config.output_csv)
    return table


def run_study_config(
    source: ConfigSource,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    trace_cache_dir: Optional[str] = None,
    seed: Optional[int] = None,
    progress=None,
    point_shard_index: Optional[int] = None,
    point_shard_count: Optional[int] = None,
    retry=None,
    chaos=None,
    schedule: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> ResultTable:
    """Execute a registered-study configuration end to end.

    Overrides work exactly like :func:`run_config`.  Writes the CSV and
    markdown report the config asks for and returns the study's table.
    Under an active point shard the table (and artifacts) hold only this
    shard's slice of the study's sweep points.
    """
    config = load_study_config(source)
    # Imported lazily to keep sweep-only usage free of the studies stack.
    from repro.studies.pipeline import get_study
    from repro.viz.report import study_report

    spec = get_study(config.study)
    runtime = _override_runtime(
        config.runtime, workers, cache_dir, trace_cache_dir, seed, progress,
        point_shard_index, point_shard_count, retry, chaos, schedule, queue_dir,
    )
    # Validate params against the builder's signature up front, so a
    # TypeError raised deep inside a study is never misreported as a
    # config mistake.
    if "runtime" in config.params:
        raise ConfigError(
            f"study {config.study!r}: 'runtime' is not a study parameter "
            "(use the config's runtime section)"
        )
    try:
        inspect.signature(spec.builder).bind_partial(**config.params)
    except TypeError as exc:
        raise ConfigError(f"study {config.study!r}: bad params ({exc})") from exc
    outcome = spec.run(runtime, **config.params)
    if outcome.table is None:
        raise ConfigError(f"study {config.study!r} failed: {outcome.error}")
    _write_csv(outcome.table, config.output_csv)
    if config.report_md:
        _destination(config.report_md).write_text(study_report(
            title=config.study.replace("_", " "),
            table=outcome.table,
            description=spec.description,
            figure=spec.figure,
            **spec.report,
        ))
    return outcome.table


def run_suite_config(
    source: Union[ConfigSource, SuiteConfig],
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    trace_cache_dir: Optional[str] = None,
    seed: Optional[int] = None,
    progress=None,
    point_shard_index: Optional[int] = None,
    point_shard_count: Optional[int] = None,
    retry=None,
    chaos=None,
    schedule: Optional[str] = None,
    queue_dir: Optional[str] = None,
):
    """Execute a suite-run configuration end to end.

    The config-file form of ``python -m repro.studies.summary``: runs the
    configured (possibly sharded) slice of the study registry under the
    config's runtime options, writes CSVs, reports, and the shard
    manifest under ``suite.output_dir``, and returns the
    :class:`~repro.studies.summary.SummaryRun`.  Overrides work exactly
    like :func:`run_config`; the suite section's point-shard keys beat
    the runtime section's, and explicit overrides beat both.
    """
    config = load_suite_config(source)
    # Imported lazily to keep sweep-only usage free of the studies stack.
    from repro.studies.summary import run_all

    if point_shard_index is None:
        point_shard_index = config.point_shard_index
    if point_shard_count is None:
        point_shard_count = config.point_shard_count
    runtime = _override_runtime(
        config.runtime, workers, cache_dir, trace_cache_dir, seed, progress,
        point_shard_index, point_shard_count, retry, chaos, schedule, queue_dir,
    )
    return run_all(
        config.output_dir,
        runtime=runtime,
        only=config.only,
        shard_index=config.shard_index,
        shard_count=config.shard_count,
        incremental=config.incremental,
    )
