"""Configuration interface: JSON schema, loader, and CLI."""

from repro.config.loader import (
    load_config,
    load_service_config,
    load_study_config,
    load_suite_config,
    run_config,
    run_study_config,
    run_suite_config,
)
from repro.config.schema import (
    ParsedConfig,
    ServiceConfig,
    StudyConfig,
    SuiteConfig,
    is_service_config,
    is_study_config,
    is_suite_config,
    parse_config,
    parse_service_config,
    parse_study_config,
    parse_suite_config,
)

__all__ = [
    "ParsedConfig",
    "ServiceConfig",
    "StudyConfig",
    "SuiteConfig",
    "is_service_config",
    "is_study_config",
    "is_suite_config",
    "load_config",
    "load_service_config",
    "load_study_config",
    "load_suite_config",
    "parse_config",
    "parse_service_config",
    "parse_study_config",
    "parse_suite_config",
    "run_config",
    "run_study_config",
    "run_suite_config",
]
