"""Configuration interface: JSON schema, loader, and CLI."""

from repro.config.loader import load_config, run_config
from repro.config.schema import ParsedConfig, parse_config

__all__ = ["ParsedConfig", "parse_config", "load_config", "run_config"]
