"""Configuration interface: JSON schema, loader, and CLI."""

from repro.config.loader import (
    load_config,
    load_study_config,
    run_config,
    run_study_config,
)
from repro.config.schema import (
    ParsedConfig,
    StudyConfig,
    is_study_config,
    parse_config,
    parse_study_config,
)

__all__ = [
    "ParsedConfig",
    "StudyConfig",
    "is_study_config",
    "load_config",
    "load_study_config",
    "parse_config",
    "parse_study_config",
    "run_config",
    "run_study_config",
]
