"""JSON configuration schema (the paper's ``config/*.json`` interface).

A config describes one design sweep::

    {
      "name": "main_dnn_study",
      "cells": {
        "technologies": ["STT", "RRAM", "FeFET", "PCM"],
        "flavors": ["optimistic", "pessimistic"],
        "include_sram": true,
        "custom": [ { "name": "my-cell", "tech_class": "RRAM", ... } ]
      },
      "system": {
        "capacities_mb": [2, 8],
        "node_nm": 22,
        "sram_node_nm": 16,
        "optimization_targets": ["ReadEDP"],
        "access_bits": 512,
        "bits_per_cell": 1
      },
      "traffic": {
        "kind": "dnn-continuous" | "dnn-intermittent" | "graph-generic"
                | "graph-kernels" | "spec2017" | "generic",
        ... kind-specific parameters ...
      },
      "runtime": {
        "workers": 4,
        "cache_dir": ".nvmcache",
        "trace_cache_dir": null,
        "on_error": "raise" | "skip",
        "seed": null,
        "point_shard_index": 0,
        "point_shard_count": 1,
        "schedule": "fingerprint" | "balanced",
        "queue_dir": null,              // pull-based lease mode when set
        "queue_batch": 4,
        "queue_lease_s": 30.0,
        "retry": { "max_attempts": 3, "backoff_s": 0.05,
                   "deadline_s": null },          // optional
        "chaos": { "seed": 0, "worker_kill": 0.1 }  // optional, testing only
      },
      "output_csv": "results.csv"
    }

The optional ``runtime`` section controls sweep execution (see
:mod:`repro.runtime`): process-pool width, the persistent cache root
(characterizations, evaluation blocks, and LLC traces live under it),
an optional trace-cache override, whether a failing design point aborts
the sweep or is skipped with telemetry, a seed override for stochastic
components, and intra-study point sharding (run only the deterministic
1/``point_shard_count`` slice of every sweep's fingerprinted point
space).

A second config shape describes one *registered study* instead of a raw
sweep (the ``config/studies/*.json`` stubs)::

    {
      "study": "fig09_spec_llc",
      "params": { "capacity_bytes": 16777216 },
      "runtime": { "workers": 4, "cache_dir": ".nvmcache" },
      "output_csv": "output/results/fig09_spec_llc.csv",
      "report_md": "output/reports/fig09_spec_llc.md"
    }

A third config shape describes one *suite run* — a (possibly sharded,
incremental) pass over the study registry, the config-file form of
``python -m repro.studies.summary``::

    {
      "suite": {
        "only": ["fig09_spec_llc", "fig14_writebuffer"],   // optional
        "output_dir": "output",
        "shard_index": 0,
        "shard_count": 3,
        "point_shard_index": 0,      // optional intra-study sharding
        "point_shard_count": 1,
        "incremental": true
      },
      "runtime": { "workers": 4, "cache_dir": ".nvmcache" }
    }

:func:`parse_config` validates a sweep dict into a :class:`ParsedConfig`,
:func:`parse_study_config` a study dict into a :class:`StudyConfig`, and
:func:`parse_suite_config` a suite dict into a :class:`SuiteConfig`;
:func:`repro.config.loader.run_config` /
:func:`repro.config.loader.run_study_config` /
:func:`repro.config.loader.run_suite_config` execute them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.cells import CellTechnology, sram_cell, tentpoles_for
from repro.cells.base import TechnologyClass
from repro.errors import ConfigError
from repro.nvsim.result import OptimizationTarget
from repro.runtime.chaos import ChaosOptions
from repro.runtime.options import RuntimeOptions
from repro.runtime.resilience import RetryPolicy
from repro.traffic.base import TrafficPattern
from repro.traffic.dnn import DNN_WORKLOADS, NVDLAPerformanceModel, continuous_scenarios
from repro.traffic.generic import generic_sweep, graph_envelope_sweep, log_spaced
from repro.traffic.graph import facebook_bfs_traffic, graph_kernel_suite, wikipedia_bfs_traffic
from repro.traffic.spec import spec2017_suite
from repro.units import mb

_VALID_FLAVORS = ("optimistic", "pessimistic", "reference")


@dataclass(frozen=True)
class ParsedConfig:
    """A validated configuration ready to run."""

    name: str
    cells: Sequence[CellTechnology]
    capacities_bytes: Sequence[int]
    node_nm: int
    sram_node_nm: int
    optimization_targets: Sequence[OptimizationTarget]
    access_bits: int
    bits_per_cell: int
    traffic: Sequence[TrafficPattern]
    output_csv: Optional[str] = None
    workers: int = 1
    cache_dir: Optional[str] = None
    trace_cache_dir: Optional[str] = None
    on_error: str = "raise"
    seed: Optional[int] = None
    point_shard_index: int = 0
    point_shard_count: int = 1

    def runtime_options(self, progress=None) -> RuntimeOptions:
        """The sweep's runtime section as shared :class:`RuntimeOptions`."""
        return RuntimeOptions(
            workers=self.workers,
            cache_dir=self.cache_dir,
            trace_cache_dir=self.trace_cache_dir,
            on_error=self.on_error,
            progress=progress,
            seed=self.seed,
            point_shard_index=self.point_shard_index,
            point_shard_count=self.point_shard_count,
        )


@dataclass(frozen=True)
class StudyConfig:
    """A validated registered-study configuration ready to run."""

    study: str
    params: Mapping[str, Any]
    runtime: RuntimeOptions
    output_csv: Optional[str] = None
    report_md: Optional[str] = None


@dataclass(frozen=True)
class SuiteConfig:
    """A validated suite-run configuration (sharded/incremental summary).

    ``point_shard_index`` / ``point_shard_count`` are ``None`` when the
    suite section leaves intra-study sharding to the runtime section.
    """

    only: Optional[Sequence[str]]
    output_dir: str
    shard_index: int
    shard_count: int
    incremental: bool
    runtime: RuntimeOptions
    point_shard_index: Optional[int] = None
    point_shard_count: Optional[int] = None


@dataclass(frozen=True)
class ServiceConfig:
    """A validated serving configuration (``config/service.json``).

    ``workers`` bounds concurrently *running* studies (each may fan out
    further over its own process pool via ``runtime.workers``);
    ``rate_limit_rps``/``rate_limit_burst`` parameterize the per-client
    submit token bucket (``rps <= 0`` disables limiting);
    ``warm_studies`` names registry studies the warm-keeper pre-computes
    whenever their fingerprints change; ``job_retries`` bounds how many
    times a job failing with a *transient* infrastructure error (broken
    pool, injected chaos) is re-attempted before the failure is recorded.
    """

    host: str = "127.0.0.1"
    port: int = 8177
    workers: int = 2
    rate_limit_rps: float = 20.0
    rate_limit_burst: int = 40
    warm_studies: tuple = ()
    warm_interval_s: float = 300.0
    drain_timeout_s: float = 30.0
    job_retries: int = 2
    runtime: RuntimeOptions = RuntimeOptions()


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise ConfigError(f"{context}: missing required key {key!r}")
    return mapping[key]


def _parse_cells(section: Mapping[str, Any]) -> list[CellTechnology]:
    cells: list[CellTechnology] = []
    technologies = section.get("technologies", [])
    flavors = section.get("flavors", ["optimistic", "pessimistic"])
    for flavor in flavors:
        if flavor not in _VALID_FLAVORS:
            raise ConfigError(f"cells.flavors: unknown flavor {flavor!r}")
    for tech_name in technologies:
        tech = TechnologyClass.from_string(str(tech_name))
        tent = tentpoles_for(tech)
        for flavor, cell in tent.labelled():
            if flavor in flavors:
                cells.append(cell)
    if section.get("include_sram", False):
        cells.append(sram_cell(int(section.get("sram_node_nm", 16))))
    for custom in section.get("custom", []):
        cells.append(_parse_custom_cell(custom))
    if not cells:
        raise ConfigError("cells: configuration selects no cells")
    return cells


def _parse_custom_cell(raw: Mapping[str, Any]) -> CellTechnology:
    data = dict(raw)
    name = _require(data, "name", "cells.custom")
    tech = TechnologyClass.from_string(str(_require(data, "tech_class", "cells.custom")))
    data.pop("name")
    data.pop("tech_class")
    try:
        return CellTechnology(name=str(name), tech_class=tech, **data)
    except TypeError as exc:
        raise ConfigError(f"cells.custom[{name}]: {exc}") from exc


def _parse_traffic(section: Optional[Mapping[str, Any]]) -> list[TrafficPattern]:
    if not section:
        return []
    kind = str(_require(section, "kind", "traffic"))
    if kind == "generic":
        reads = section.get("reads_per_second") or log_spaced(
            float(section.get("min_reads", 1e5)),
            float(section.get("max_reads", 1e9)),
            int(section.get("points", 5)),
        )
        writes = section.get("writes_per_second") or log_spaced(
            float(section.get("min_writes", 1e4)),
            float(section.get("max_writes", 1e7)),
            int(section.get("points", 5)),
        )
        return generic_sweep(
            [float(r) for r in reads],
            [float(w) for w in writes],
            access_bytes=int(section.get("access_bytes", 8)),
        )
    if kind == "graph-generic":
        return graph_envelope_sweep(points_per_axis=int(section.get("points", 4)))
    if kind == "graph-kernels":
        return [facebook_bfs_traffic(), wikipedia_bfs_traffic(),
                *graph_kernel_suite()]
    if kind == "spec2017":
        return spec2017_suite()
    if kind == "dnn-continuous":
        buffer_mb = float(section.get("buffer_mb", 2))
        return continuous_scenarios(mb(buffer_mb))
    if kind == "dnn-intermittent":
        workload_name = str(section.get("workload", "resnet26"))
        try:
            workload = DNN_WORKLOADS[workload_name]
        except KeyError:
            raise ConfigError(
                f"traffic: unknown DNN workload {workload_name!r} "
                f"(known: {sorted(DNN_WORKLOADS)})"
            ) from None
        capacity = mb(float(section.get("capacity_mb", 8)))
        model = NVDLAPerformanceModel(capacity)
        rate = float(section.get("inferences_per_second", 1.0))
        return [model.intermittent_traffic(workload, rate)]
    raise ConfigError(f"traffic: unknown kind {kind!r}")


def parse_config(raw: Mapping[str, Any]) -> ParsedConfig:
    """Validate a raw config dict."""
    if not isinstance(raw, Mapping):
        raise ConfigError("config root must be an object")
    name = str(raw.get("name", "unnamed-sweep"))
    cells = _parse_cells(_require(raw, "cells", "config"))

    system = raw.get("system", {})
    capacities_mb = system.get("capacities_mb", [4])
    if not capacities_mb:
        raise ConfigError("system.capacities_mb must be non-empty")
    capacities = [mb(float(c)) for c in capacities_mb]
    targets = [
        OptimizationTarget.from_string(str(t))
        for t in system.get("optimization_targets", ["ReadEDP"])
    ]
    if not targets:
        raise ConfigError("system.optimization_targets must be non-empty")

    bits = int(system.get("bits_per_cell", 1))
    if bits < 1:
        raise ConfigError("system.bits_per_cell must be >= 1")

    runtime = _parse_runtime(raw.get("runtime", {}))

    return ParsedConfig(
        name=name,
        cells=cells,
        capacities_bytes=capacities,
        node_nm=int(system.get("node_nm", 22)),
        sram_node_nm=int(system.get("sram_node_nm", 16)),
        optimization_targets=targets,
        access_bits=int(system.get("access_bits", 64)),
        bits_per_cell=bits,
        traffic=_parse_traffic(raw.get("traffic")),
        output_csv=raw.get("output_csv"),
        workers=runtime.workers,
        cache_dir=runtime.cache_dir,
        trace_cache_dir=runtime.trace_cache_dir,
        on_error=runtime.on_error,
        seed=runtime.seed,
        point_shard_index=runtime.point_shard_index,
        point_shard_count=runtime.point_shard_count,
    )


def _validate_point_shard(index: int, count: int, context: str) -> None:
    if count < 1:
        raise ConfigError(f"{context}.point_shard_count must be >= 1")
    if not 0 <= index < count:
        raise ConfigError(
            f"{context}.point_shard_index must be in [0, {count}), got {index}"
        )


def _parse_runtime(section: Any) -> RuntimeOptions:
    """Validate a ``runtime`` section into :class:`RuntimeOptions`."""
    if not isinstance(section, Mapping):
        raise ConfigError("runtime section must be an object")
    workers = int(section.get("workers", 1))
    if workers < 1:
        raise ConfigError("runtime.workers must be >= 1")
    on_error = str(section.get("on_error", "raise"))
    if on_error not in ("raise", "skip"):
        raise ConfigError("runtime.on_error must be 'raise' or 'skip'")
    cache_dir = section.get("cache_dir")
    trace_cache_dir = section.get("trace_cache_dir")
    seed = section.get("seed")
    point_shard_index = int(section.get("point_shard_index", 0))
    point_shard_count = int(section.get("point_shard_count", 1))
    _validate_point_shard(point_shard_index, point_shard_count, "runtime")
    retry_section = section.get("retry")
    retry = None
    if retry_section is not None:
        retry = RetryPolicy.from_mapping(retry_section)
    chaos_section = section.get("chaos")
    chaos = None
    if chaos_section is not None:
        chaos = ChaosOptions.from_mapping(chaos_section)
    schedule = section.get("schedule", "fingerprint")
    if schedule not in ("fingerprint", "balanced"):
        raise ConfigError("runtime.schedule must be 'fingerprint' or 'balanced'")
    queue_dir = section.get("queue_dir")
    queue_batch = int(section.get("queue_batch", 4))
    if queue_batch < 1:
        raise ConfigError("runtime.queue_batch must be >= 1")
    queue_lease_s = float(section.get("queue_lease_s", 30.0))
    if queue_lease_s <= 0:
        raise ConfigError("runtime.queue_lease_s must be > 0")
    return RuntimeOptions(
        workers=workers,
        cache_dir=None if cache_dir is None else str(cache_dir),
        trace_cache_dir=None if trace_cache_dir is None else str(trace_cache_dir),
        on_error=on_error,
        seed=None if seed is None else int(seed),
        point_shard_index=point_shard_index,
        point_shard_count=point_shard_count,
        retry=retry,
        chaos=chaos,
        schedule=schedule,
        queue_dir=None if queue_dir is None else str(queue_dir),
        queue_batch=queue_batch,
        queue_lease_s=queue_lease_s,
    )


def is_study_config(raw: Mapping[str, Any]) -> bool:
    """Does this raw config describe a registered study (vs. a raw sweep)?"""
    return isinstance(raw, Mapping) and "study" in raw


def is_suite_config(raw: Mapping[str, Any]) -> bool:
    """Does this raw config describe a (sharded) suite run?"""
    return isinstance(raw, Mapping) and "suite" in raw


def is_service_config(raw: Mapping[str, Any]) -> bool:
    """Does this raw config describe a serving deployment?"""
    return isinstance(raw, Mapping) and "service" in raw


def parse_service_config(raw: Mapping[str, Any]) -> ServiceConfig:
    """Validate a raw service config dict (``{"service": {...}, "runtime": {...}}``)."""
    if not isinstance(raw, Mapping):
        raise ConfigError("config root must be an object")
    section = _require(raw, "service", "config")
    if not isinstance(section, Mapping):
        raise ConfigError("service section must be an object")
    port = int(section.get("port", 8177))
    if not 0 <= port <= 65535:
        raise ConfigError(f"service.port must be in [0, 65535], got {port}")
    workers = int(section.get("workers", 2))
    if workers < 1:
        raise ConfigError("service.workers must be >= 1")
    rate_limit_rps = float(section.get("rate_limit_rps", 20.0))
    rate_limit_burst = int(section.get("rate_limit_burst", 40))
    if rate_limit_rps > 0 and rate_limit_burst < 1:
        raise ConfigError("service.rate_limit_burst must be >= 1")
    warm_studies = section.get("warm_studies", [])
    if not isinstance(warm_studies, Sequence) or isinstance(warm_studies, str):
        raise ConfigError("service.warm_studies must be a list of study names")
    if warm_studies:
        # Imported lazily, exactly like parse_study_config: service parsing
        # should not drag the engine stack into sweep-only usage.
        from repro.errors import ReproError
        from repro.studies.pipeline import get_study

        try:
            for name in warm_studies:
                get_study(str(name))
        except ReproError as exc:
            raise ConfigError(str(exc)) from None
    warm_interval_s = float(section.get("warm_interval_s", 300.0))
    if warm_interval_s <= 0:
        raise ConfigError("service.warm_interval_s must be > 0")
    drain_timeout_s = float(section.get("drain_timeout_s", 30.0))
    if drain_timeout_s < 0:
        raise ConfigError("service.drain_timeout_s must be >= 0")
    job_retries = int(section.get("job_retries", 2))
    if job_retries < 0:
        raise ConfigError("service.job_retries must be >= 0")
    return ServiceConfig(
        host=str(section.get("host", "127.0.0.1")),
        port=port,
        workers=workers,
        rate_limit_rps=rate_limit_rps,
        rate_limit_burst=rate_limit_burst,
        warm_studies=tuple(str(name) for name in warm_studies),
        warm_interval_s=warm_interval_s,
        drain_timeout_s=drain_timeout_s,
        job_retries=job_retries,
        runtime=_parse_runtime(raw.get("runtime", {})),
    )


def parse_suite_config(raw: Mapping[str, Any]) -> SuiteConfig:
    """Validate a raw suite-run config dict."""
    if not isinstance(raw, Mapping):
        raise ConfigError("config root must be an object")
    section = _require(raw, "suite", "config")
    if not isinstance(section, Mapping):
        raise ConfigError("suite section must be an object")
    only = section.get("only")
    if only is not None:
        if not isinstance(only, Sequence) or isinstance(only, str):
            raise ConfigError("suite.only must be a list of study names")
        # Imported lazily, exactly like parse_study_config: suite parsing
        # should not drag the engine stack into sweep-only usage.
        from repro.errors import ReproError
        from repro.studies.pipeline import get_study

        try:
            for name in only:
                get_study(str(name))
        except ReproError as exc:
            raise ConfigError(str(exc)) from None
        only = tuple(str(name) for name in only)
    shard_index = int(section.get("shard_index", 0))
    shard_count = int(section.get("shard_count", 1))
    if shard_count < 1:
        raise ConfigError("suite.shard_count must be >= 1")
    if not 0 <= shard_index < shard_count:
        raise ConfigError(
            f"suite.shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    point_shard_index = section.get("point_shard_index")
    point_shard_count = section.get("point_shard_count")
    if point_shard_index is not None or point_shard_count is not None:
        point_shard_index = int(point_shard_index or 0)
        point_shard_count = int(
            point_shard_count if point_shard_count is not None else 1
        )
        _validate_point_shard(point_shard_index, point_shard_count, "suite")
    return SuiteConfig(
        only=only,
        output_dir=str(section.get("output_dir", "output")),
        shard_index=shard_index,
        shard_count=shard_count,
        incremental=bool(section.get("incremental", True)),
        runtime=_parse_runtime(raw.get("runtime", {})),
        point_shard_index=point_shard_index,
        point_shard_count=point_shard_count,
    )


def parse_study_config(raw: Mapping[str, Any]) -> StudyConfig:
    """Validate a raw registered-study config dict."""
    if not isinstance(raw, Mapping):
        raise ConfigError("config root must be an object")
    study = str(_require(raw, "study", "config"))
    # Imported lazily: the study registry imports the engine stack, which
    # plain sweep parsing never needs.  The registry owns the membership
    # check (and its error message); we only retype it for config callers.
    from repro.errors import ReproError
    from repro.studies.pipeline import get_study

    try:
        get_study(study)
    except ReproError as exc:
        raise ConfigError(str(exc)) from None
    params = raw.get("params", {})
    if not isinstance(params, Mapping):
        raise ConfigError("params section must be an object")
    output_csv = raw.get("output_csv")
    report_md = raw.get("report_md")
    return StudyConfig(
        study=study,
        params=dict(params),
        runtime=_parse_runtime(raw.get("runtime", {})),
        output_csv=None if output_csv is None else str(output_csv),
        report_md=None if report_md is None else str(report_md),
    )
