"""Command-line entry point: ``nvmexplorer <config.json>``.

Mirrors the paper's ``python run.py config/<name>.json`` workflow: runs the
sweep, prints a summary (and optionally the full markdown table or an ASCII
dashboard), and writes the CSV if the config asks for one.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config.loader import run_config
from repro.errors import ReproError
from repro.viz.dashboard import summary_dashboard


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nvmexplorer",
        description="Cross-stack eNVM design space exploration (paper reproduction).",
    )
    parser.add_argument("config", help="path to a JSON sweep configuration")
    parser.add_argument(
        "--table", action="store_true", help="print the full result table (markdown)"
    )
    parser.add_argument(
        "--dashboard", action="store_true", help="print ASCII dashboard views"
    )
    parser.add_argument(
        "--csv", metavar="PATH", help="write results as CSV (overrides config)"
    )
    parser.add_argument(
        "--workers", type=int, metavar="N",
        help="parallel sweep worker processes (overrides config runtime.workers)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH",
        help="persistent characterization cache (overrides config runtime.cache_dir)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed/cached/failed sweep point",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    progress = (
        (lambda event: print(event.describe(), file=sys.stderr))
        if args.progress
        else None
    )
    try:
        table = run_config(
            args.config,
            workers=args.workers,
            cache_dir=args.cache_dir,
            progress=progress,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{len(table)} result rows across columns: {', '.join(table.columns)}")
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.table:
        print(table.to_markdown())
    if args.dashboard:
        print(summary_dashboard(table))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
