"""Write-buffering what-if analysis (Section V-D, Figure 14).

A small, fast write buffer (SRAM or STT) in front of an eNVM can

* **mask write latency** — the application sees the buffer's latency while
  the buffer drains to the eNVM in the background, and
* **reduce write traffic** — in-place updates coalesce multiple writes to
  the same address before they reach the eNVM, which also extends lifetime.

Rather than simulate cycle-accurately, the paper (and this module) asks the
analytical what-if question: *if* buffering masked X% of write latency and
coalescing removed Y% of write traffic, which additional eNVMs become
viable?  :func:`coalescing_factor` additionally estimates Y for a given
buffer size from an address stream via :mod:`repro.cachesim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.metrics import SystemEvaluation, evaluate
from repro.errors import EvaluationError
from repro.nvsim.result import ArrayCharacterization
from repro.traffic.base import TrafficPattern


@dataclass(frozen=True)
class WriteBufferConfig:
    """One write-buffering scenario.

    ``mask_fraction`` of the eNVM's write latency is hidden from the
    application; ``traffic_reduction`` of the write accesses never reach
    the eNVM (coalesced in the buffer).
    """

    mask_fraction: float = 0.0
    traffic_reduction: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.mask_fraction <= 1.0:
            raise EvaluationError("mask_fraction must be in [0, 1]")
        if not 0.0 <= self.traffic_reduction < 1.0:
            raise EvaluationError("traffic_reduction must be in [0, 1)")
        if not self.label:
            object.__setattr__(
                self,
                "label",
                f"mask={self.mask_fraction:.0%},reduce={self.traffic_reduction:.0%}",
            )


#: The scenarios Figure 14 sweeps: masking and coalescing as separate axes,
#: plus their combination.
DEFAULT_SCENARIOS: tuple[WriteBufferConfig, ...] = (
    WriteBufferConfig(0.0, 0.0, label="no-buffer"),
    WriteBufferConfig(1.0, 0.0, label="mask-only"),
    WriteBufferConfig(0.0, 0.25, label="reduce25"),
    WriteBufferConfig(0.0, 0.50, label="reduce50"),
    WriteBufferConfig(1.0, 0.50, label="mask+reduce50"),
)


def buffered_traffic(
    traffic: TrafficPattern, config: WriteBufferConfig
) -> TrafficPattern:
    """The eNVM-visible traffic once the buffer coalesces writes."""
    reduced = traffic.scaled(write_factor=1.0 - config.traffic_reduction)
    return reduced.renamed(f"{traffic.name}+wb[{config.label}]")


def evaluate_with_buffer(
    array: ArrayCharacterization,
    traffic: TrafficPattern,
    config: WriteBufferConfig,
) -> SystemEvaluation:
    """Evaluate an array behind a write buffer."""
    return evaluate(
        array,
        buffered_traffic(traffic, config),
        write_latency_mask=config.mask_fraction,
    )


def sweep_buffer_scenarios(
    arrays: Iterable[ArrayCharacterization],
    traffic: TrafficPattern,
    scenarios: Sequence[WriteBufferConfig] = DEFAULT_SCENARIOS,
) -> list[tuple[WriteBufferConfig, SystemEvaluation]]:
    """Every (scenario, array) evaluation for one workload."""
    out = []
    for config in scenarios:
        for array in arrays:
            out.append((config, evaluate_with_buffer(array, traffic, config)))
    return out


def coalescing_factor(
    addresses,
    buffer_lines: int,
    line_bytes: int = 64,
) -> float:
    """Measured write-traffic reduction for a buffer of ``buffer_lines``.

    Replays a write-address stream (any integer sequence or array) through
    a small fully-associative write-back buffer on the vectorized batch
    engine (:func:`repro.cachesim.batch.simulate_batch`) and reports the
    fraction of writes absorbed by in-place updates.
    """
    import numpy as np

    from repro.cachesim.batch import simulate_batch
    from repro.cachesim.cache import CacheConfig

    if buffer_lines <= 0:
        raise EvaluationError("buffer must have at least one line")
    addresses = np.asarray(addresses, dtype=np.int64)
    total_writes = int(addresses.size)
    if total_writes == 0:
        return 0.0
    config = CacheConfig(
        capacity_bytes=buffer_lines * line_bytes,
        line_bytes=line_bytes,
        associativity=buffer_lines,  # fully associative
    )
    result = simulate_batch(
        config, addresses, np.ones(total_writes, dtype=bool))
    # Writes that reached the backing store = dirty evictions (+ dirty lines
    # still resident would eventually drain; count them too).
    drained = result.stats.dirty_evictions + result.dirty_lines
    return max(0.0, 1.0 - drained / total_writes)
