"""Intermittent-operation energy model (Sections IV-A2 and Figure 7).

The accelerator wakes up per inference, runs for the workload's inference
window, and powers down.  Energy per day:

``E(N) = N * (E_access + P_leak * t_active + E_wake) + P_sleep * t_sleep``

* ``E_access`` — dynamic energy of the inference's memory accesses.
* ``P_leak * t_active`` — array leakage during the awake window.
* ``E_wake`` — restoring state on wake-up: zero for eNVMs (non-volatility
  is the whole point); for SRAM the weights must be reloaded from DRAM.
* ``P_sleep`` — the deep-sleep rail (power gates + wake logic, proportional
  to die area), or retention leakage for volatile memories that keep data.

The interplay of the fixed daily sleep term (favoring *dense* technologies,
small die) against the per-inference dynamic term (favoring *low
read-energy* technologies) produces the FeFET-to-STT crossover of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.nvsim.result import ArrayCharacterization
from repro.traffic.dnn import DNNWorkload, NVDLAPerformanceModel
from repro.units import SECONDS_PER_DAY

#: Energy to fetch one byte from off-chip DRAM (pJ/byte scale: ~20 pJ/byte).
DRAM_ENERGY_PER_BYTE = 20e-12
#: DRAM streaming bandwidth used for the reload-latency estimate, B/s.
DRAM_BANDWIDTH = 12.8e9


@dataclass(frozen=True)
class IntermittentEvaluation:
    """Energy accounting for one array running one workload intermittently."""

    array: ArrayCharacterization
    workload: DNNWorkload
    inferences_per_day: float

    energy_per_inference: float  # J, incl. wake cost and active leakage
    wake_energy: float  # J per wake-up (0 for eNVM)
    sleep_power: float  # W while powered down
    energy_per_day: float  # J

    @property
    def label(self) -> str:
        return f"{self.array.cell.name} x {self.workload.name}"


def wake_energy(array: ArrayCharacterization, workload: DNNWorkload) -> float:
    """Energy to make the weights available after power-on.

    Non-volatile arrays retain them; volatile arrays reload every weight
    byte from DRAM and pay the write energy to place it on-chip.
    """
    if array.cell.tech_class.is_nonvolatile:
        return 0.0
    reload_bytes = workload.weight_bytes
    writes = reload_bytes / array.access_bytes
    return reload_bytes * DRAM_ENERGY_PER_BYTE + writes * array.write_energy


def wake_latency(array: ArrayCharacterization, workload: DNNWorkload) -> float:
    """Time to restore weights on wake-up, seconds (0 for eNVM)."""
    if array.cell.tech_class.is_nonvolatile:
        return 0.0
    return workload.weight_bytes / DRAM_BANDWIDTH


def evaluate_intermittent(
    array: ArrayCharacterization,
    workload: DNNWorkload,
    inferences_per_day: float,
) -> IntermittentEvaluation:
    """Daily energy for wake-per-inference operation."""
    if inferences_per_day < 0:
        raise EvaluationError("inferences_per_day must be non-negative")

    model = NVDLAPerformanceModel(array.capacity_bytes, array.access_bytes)
    traffic = model.intermittent_traffic(workload, inferences_per_second=1.0)
    access_energy = (traffic.reads_per_task or 0.0) * array.read_energy

    active_window = workload.inference_seconds + wake_latency(array, workload)
    active_leak_energy = array.leakage_power * active_window
    e_wake = wake_energy(array, workload)
    per_inference = access_energy + active_leak_energy + e_wake

    active_per_day = min(SECONDS_PER_DAY, inferences_per_day * active_window)
    sleep_time = SECONDS_PER_DAY - active_per_day
    per_day = inferences_per_day * per_inference + array.sleep_power * sleep_time

    return IntermittentEvaluation(
        array=array,
        workload=workload,
        inferences_per_day=inferences_per_day,
        energy_per_inference=per_inference,
        wake_energy=e_wake,
        sleep_power=array.sleep_power,
        energy_per_day=per_day,
    )


def crossover_rate(
    a: IntermittentEvaluation, b: IntermittentEvaluation
) -> float:
    """Inferences/day at which arrays ``a`` and ``b`` cost the same energy.

    Returns ``inf`` when one dominates at every rate.  Used to locate the
    Figure 7 FeFET/STT crossover.
    """
    fixed_a = a.sleep_power * SECONDS_PER_DAY
    fixed_b = b.sleep_power * SECONDS_PER_DAY
    slope_a = a.energy_per_inference - a.sleep_power * _active_window(a)
    slope_b = b.energy_per_inference - b.sleep_power * _active_window(b)
    d_fixed = fixed_a - fixed_b
    d_slope = slope_b - slope_a
    # A positive crossover rate requires the one that costs more at rest to
    # win per-inference (signs of the differences must agree).
    if d_slope == 0 or (d_fixed > 0) != (d_slope > 0):
        return float("inf")
    return d_fixed / d_slope


def _active_window(ev: IntermittentEvaluation) -> float:
    return ev.workload.inference_seconds + wake_latency(ev.array, ev.workload)
