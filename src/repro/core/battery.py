"""Battery-life estimation for intermittent edge deployments.

Figure 7's caption presents "total memory energy ... as a proxy for device
battery life"; this module makes the proxy explicit: given a battery
capacity and the non-memory system power, how many days does each memory
candidate sustain at a given inference rate, and what inference budget does
a day of battery buy?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.intermittent import evaluate_intermittent
from repro.errors import EvaluationError
from repro.nvsim.result import ArrayCharacterization
from repro.traffic.dnn import DNNWorkload
from repro.units import SECONDS_PER_DAY

#: A small coin cell: ~3 V x 225 mAh.
COIN_CELL_JOULES = 2430.0
#: A compact LiPo: ~3.7 V x 1000 mAh.
LIPO_1AH_JOULES = 13_320.0


@dataclass(frozen=True)
class BatteryLifeEstimate:
    """Days of operation for one memory candidate."""

    array_label: str
    workload: str
    inferences_per_day: float
    battery_joules: float
    memory_energy_per_day: float
    system_energy_per_day: float
    days: float


def battery_life(
    array: ArrayCharacterization,
    workload: DNNWorkload,
    inferences_per_day: float,
    battery_joules: float = COIN_CELL_JOULES,
    system_power_active: float = 50e-3,
    system_power_sleep: float = 2e-6,
) -> BatteryLifeEstimate:
    """Days the battery sustains wake-per-inference operation.

    ``system_power_active``/``system_power_sleep`` cover the non-memory
    parts (compute, sensors, radios) so the memory's contribution can be
    judged in context.
    """
    if battery_joules <= 0:
        raise EvaluationError("battery capacity must be positive")
    if system_power_active < 0 or system_power_sleep < 0:
        raise EvaluationError("system power must be non-negative")
    memory = evaluate_intermittent(array, workload, inferences_per_day)
    active_seconds = min(
        SECONDS_PER_DAY, inferences_per_day * workload.inference_seconds
    )
    system_per_day = (
        system_power_active * active_seconds
        + system_power_sleep * (SECONDS_PER_DAY - active_seconds)
    )
    total_per_day = memory.energy_per_day + system_per_day
    return BatteryLifeEstimate(
        array_label=array.label,
        workload=workload.name,
        inferences_per_day=inferences_per_day,
        battery_joules=battery_joules,
        memory_energy_per_day=memory.energy_per_day,
        system_energy_per_day=system_per_day,
        days=battery_joules / total_per_day,
    )


def inference_budget(
    array: ArrayCharacterization,
    workload: DNNWorkload,
    battery_joules: float = COIN_CELL_JOULES,
    target_days: float = 365.0,
    system_power_active: float = 50e-3,
    system_power_sleep: float = 2e-6,
) -> float:
    """Max inferences/day sustaining ``target_days`` of battery life.

    Solves the linear daily-energy model for the rate; returns 0 when even
    an idle device cannot reach the target.
    """
    if target_days <= 0:
        raise EvaluationError("target_days must be positive")
    budget_per_day = battery_joules / target_days
    idle = evaluate_intermittent(array, workload, 0.0)
    fixed = idle.energy_per_day + system_power_sleep * SECONDS_PER_DAY
    if fixed >= budget_per_day:
        return 0.0
    one = evaluate_intermittent(array, workload, 1.0)
    per_inference = (
        one.energy_per_inference
        + (system_power_active - system_power_sleep) * workload.inference_seconds
    )
    if per_inference <= 0:
        return float("inf")
    return (budget_per_day - fixed) / per_inference
