"""The top-level DSE engine: cells x system configs x traffic -> results.

This is the programmatic equivalent of the paper's ``run.py`` sweep driver:
given cell definitions, array provisioning choices, and traffic patterns,
characterize every array once and evaluate every (array, traffic) pair,
producing a :class:`~repro.results.ResultTable` whose rows carry everything
the dashboards plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.cells.base import CellTechnology
from repro.core.metrics import SystemEvaluation, evaluate
from repro.errors import CharacterizationError
from repro.nvsim import characterize
from repro.nvsim.result import ArrayCharacterization, OptimizationTarget
from repro.results.table import ResultTable
from repro.traffic.base import TrafficPattern
from repro.units import to_mm2, to_ns, to_pj


@dataclass(frozen=True)
class SweepSpec:
    """One design sweep: the cross product the engine evaluates."""

    cells: Sequence[CellTechnology]
    capacities_bytes: Sequence[int]
    traffic: Sequence[TrafficPattern] = ()
    node_nm: int = 22
    sram_node_nm: int = 16
    optimization_targets: Sequence[OptimizationTarget] = (
        OptimizationTarget.READ_EDP,
    )
    access_bits: int = 64
    bits_per_cell: int = 1

    def __post_init__(self) -> None:
        if not self.cells:
            raise CharacterizationError("sweep needs at least one cell")
        if not self.capacities_bytes:
            raise CharacterizationError("sweep needs at least one capacity")


def _flavor(cell: CellTechnology) -> str:
    name = cell.name.lower()
    for tag in ("optimistic", "pessimistic", "reference", "back-gated"):
        if tag in name:
            return tag
    return "custom"


def array_record(array: ArrayCharacterization) -> dict:
    """Flatten an array characterization into a table row."""
    return {
        "cell": array.cell.name,
        "tech": array.cell.tech_class.value,
        "flavor": _flavor(array.cell),
        "capacity_mb": array.capacity_bytes / (1024 * 1024),
        "node_nm": array.node_nm,
        "bits_per_cell": array.bits_per_cell,
        "target": array.optimization_target.value,
        "area_mm2": to_mm2(array.area),
        "area_efficiency": array.area_efficiency,
        "density_mbit_mm2": array.density_mbit_per_mm2,
        "read_latency_ns": to_ns(array.read_latency),
        "write_latency_ns": to_ns(array.write_latency),
        "read_energy_pj": to_pj(array.read_energy),
        "write_energy_pj": to_pj(array.write_energy),
        "read_energy_per_bit_pj": to_pj(array.read_energy_per_bit),
        "write_energy_per_bit_pj": to_pj(array.write_energy_per_bit),
        "leakage_mw": array.leakage_power * 1e3,
        "sleep_uw": array.sleep_power * 1e6,
        "read_bw_gbps": array.read_bandwidth / 1e9,
        "write_bw_gbps": array.write_bandwidth / 1e9,
    }


def evaluation_record(ev: SystemEvaluation) -> dict:
    """Flatten a system evaluation into a table row."""
    row = array_record(ev.array)
    row.update(
        {
            "workload": ev.traffic.name,
            "reads_per_s": ev.traffic.reads_per_second,
            "writes_per_s": ev.traffic.writes_per_second,
            "total_power_mw": ev.total_power * 1e3,
            "dynamic_power_mw": ev.dynamic_power * 1e3,
            "static_power_mw": ev.leakage_power * 1e3,
            "memory_latency_s_per_s": ev.memory_latency_per_second,
            "slowdown": ev.slowdown,
            "feasible": ev.feasible,
            "lifetime_years": ev.lifetime_years,
            "energy_per_task_uj": (
                None if ev.energy_per_task is None else ev.energy_per_task * 1e6
            ),
        }
    )
    for key, value in ev.traffic.metadata.items():
        row.setdefault(key, value)
    return row


class DSEEngine:
    """Runs sweeps and caches array characterizations along the way."""

    def __init__(self) -> None:
        self._array_cache: dict[tuple, ArrayCharacterization] = {}

    def characterize(
        self,
        cell: CellTechnology,
        capacity_bytes: int,
        node_nm: int,
        target: OptimizationTarget,
        access_bits: int,
        bits_per_cell: int,
    ) -> ArrayCharacterization:
        key = (cell, capacity_bytes, node_nm, target, access_bits, bits_per_cell)
        if key not in self._array_cache:
            self._array_cache[key] = characterize(
                cell,
                capacity_bytes,
                node_nm=node_nm,
                optimization_target=target,
                access_bits=access_bits,
                bits_per_cell=bits_per_cell,
            )
        return self._array_cache[key]

    def arrays(self, spec: SweepSpec) -> list[ArrayCharacterization]:
        """Characterize every (cell, capacity, target) of the sweep."""
        out = []
        for cell in spec.cells:
            node = spec.node_nm
            if not cell.tech_class.is_nonvolatile:
                node = spec.sram_node_nm
            for capacity in spec.capacities_bytes:
                for target in spec.optimization_targets:
                    out.append(
                        self.characterize(
                            cell, capacity, node, target,
                            spec.access_bits, spec.bits_per_cell,
                        )
                    )
        return out

    def run(self, spec: SweepSpec) -> ResultTable:
        """Run the full sweep.

        Without traffic the table holds array characterizations; with
        traffic it holds one row per (array, traffic) evaluation.
        """
        arrays = self.arrays(spec)
        table = ResultTable()
        if not spec.traffic:
            for array in arrays:
                table.append(array_record(array))
            return table
        for array in arrays:
            for traffic in spec.traffic:
                table.append(evaluation_record(evaluate(array, traffic)))
        return table
