"""The top-level DSE engine: cells x system configs x traffic -> results.

This is the programmatic equivalent of the paper's ``run.py`` sweep driver:
given cell definitions, array provisioning choices, and traffic patterns,
characterize every array once and evaluate every (array, traffic) pair,
producing a :class:`~repro.results.ResultTable` whose rows carry everything
the dashboards plot.

Execution is delegated to :mod:`repro.runtime`: ``workers>1`` fans
characterization and (array, traffic) evaluation out over a process pool,
``cache_dir`` persists characterizations across runs, and
``on_error="skip"`` reports failed points through telemetry instead of
aborting the sweep.  The defaults (serial, in-memory cache only, abort on
error) preserve the engine's historical behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.cells.base import CellTechnology
from repro.core.metrics import SystemEvaluation, evaluate
from repro.errors import CharacterizationError
from repro.nvsim import characterize
from repro.nvsim.result import ArrayCharacterization, OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.cache import CharacterizationCache
from repro.runtime.executor import (
    SweepPoint,
    characterize_points,
    parallel_map,
    sweep_points,
)
from repro.runtime.telemetry import COMPLETED, ProgressEvent, SweepTelemetry
from repro.traffic.base import TrafficPattern
from repro.units import to_mm2, to_ns, to_pj


@dataclass(frozen=True)
class SweepSpec:
    """One design sweep: the cross product the engine evaluates."""

    cells: Sequence[CellTechnology]
    capacities_bytes: Sequence[int]
    traffic: Sequence[TrafficPattern] = ()
    node_nm: int = 22
    sram_node_nm: int = 16
    optimization_targets: Sequence[OptimizationTarget] = (
        OptimizationTarget.READ_EDP,
    )
    access_bits: int = 64
    bits_per_cell: int = 1

    def __post_init__(self) -> None:
        if not self.cells:
            raise CharacterizationError("sweep needs at least one cell")
        if not self.capacities_bytes:
            raise CharacterizationError("sweep needs at least one capacity")


def _flavor(cell: CellTechnology) -> str:
    name = cell.name.lower()
    for tag in ("optimistic", "pessimistic", "reference", "back-gated"):
        if tag in name:
            return tag
    return "custom"


def array_record(array: ArrayCharacterization) -> dict:
    """Flatten an array characterization into a table row."""
    return {
        "cell": array.cell.name,
        "tech": array.cell.tech_class.value,
        "flavor": _flavor(array.cell),
        "capacity_mb": array.capacity_bytes / (1024 * 1024),
        "node_nm": array.node_nm,
        "bits_per_cell": array.bits_per_cell,
        "target": array.optimization_target.value,
        "area_mm2": to_mm2(array.area),
        "area_efficiency": array.area_efficiency,
        "density_mbit_mm2": array.density_mbit_per_mm2,
        "read_latency_ns": to_ns(array.read_latency),
        "write_latency_ns": to_ns(array.write_latency),
        "read_energy_pj": to_pj(array.read_energy),
        "write_energy_pj": to_pj(array.write_energy),
        "read_energy_per_bit_pj": to_pj(array.read_energy_per_bit),
        "write_energy_per_bit_pj": to_pj(array.write_energy_per_bit),
        "leakage_mw": array.leakage_power * 1e3,
        "sleep_uw": array.sleep_power * 1e6,
        "read_bw_gbps": array.read_bandwidth / 1e9,
        "write_bw_gbps": array.write_bandwidth / 1e9,
    }


def evaluation_record(ev: SystemEvaluation) -> dict:
    """Flatten a system evaluation into a table row."""
    row = array_record(ev.array)
    row.update(
        {
            "workload": ev.traffic.name,
            "reads_per_s": ev.traffic.reads_per_second,
            "writes_per_s": ev.traffic.writes_per_second,
            "total_power_mw": ev.total_power * 1e3,
            "dynamic_power_mw": ev.dynamic_power * 1e3,
            "static_power_mw": ev.leakage_power * 1e3,
            "memory_latency_s_per_s": ev.memory_latency_per_second,
            "slowdown": ev.slowdown,
            "feasible": ev.feasible,
            "lifetime_years": ev.lifetime_years,
            "energy_per_task_uj": (
                None if ev.energy_per_task is None else ev.energy_per_task * 1e6
            ),
        }
    )
    for key, value in ev.traffic.metadata.items():
        row.setdefault(key, value)
    return row


def _evaluation_rows(payload) -> list[dict]:
    """Pool worker: evaluate one array under every traffic pattern."""
    array, traffic = payload
    return [evaluation_record(evaluate(array, t)) for t in traffic]


class DSEEngine:
    """Runs sweeps and caches array characterizations along the way.

    Parameters
    ----------
    workers:
        Process-pool width for characterization and evaluation fan-out;
        1 (the default) runs everything serially in-process.
    cache_dir:
        Directory for the persistent characterization cache; ``None``
        keeps results in memory only.
    on_error:
        ``"raise"`` aborts the sweep on the first
        :class:`CharacterizationError` (historical behavior); ``"skip"``
        drops the failing point, records it in the run's telemetry, and
        keeps sweeping.
    progress:
        Optional callback receiving one
        :class:`~repro.runtime.telemetry.ProgressEvent` per sweep point.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        on_error: str = "raise",
        progress=None,
    ) -> None:
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}"
            )
        self.workers = max(1, int(workers))
        self.on_error = on_error
        self.progress = progress
        self.cache: Optional[CharacterizationCache] = (
            CharacterizationCache(cache_dir) if cache_dir is not None else None
        )
        #: In-memory cache keyed by the stable point fingerprint (shared
        #: with the on-disk cache's addressing).
        self._array_cache: dict[str, ArrayCharacterization] = {}
        #: Telemetry of the most recent ``run``/``arrays`` call.
        self.last_telemetry: Optional[SweepTelemetry] = None

    def fingerprint(
        self,
        cell: CellTechnology,
        capacity_bytes: int,
        node_nm: int,
        target: OptimizationTarget,
        access_bits: int,
        bits_per_cell: int,
    ) -> str:
        """The stable cache key of one design point."""
        return SweepPoint(
            cell, capacity_bytes, node_nm, target, access_bits, bits_per_cell
        ).fingerprint()

    def characterize(
        self,
        cell: CellTechnology,
        capacity_bytes: int,
        node_nm: int,
        target: OptimizationTarget,
        access_bits: int,
        bits_per_cell: int,
    ) -> ArrayCharacterization:
        point = SweepPoint(
            cell, capacity_bytes, node_nm, target, access_bits, bits_per_cell
        )
        result = characterize_points(
            [point],
            workers=1,
            cache=self.cache,
            memory=self._array_cache,
            on_error="raise",
        )[0]
        assert result is not None  # on_error="raise" never returns None
        return result

    def _characterized(
        self, spec: SweepSpec, telemetry: SweepTelemetry
    ) -> list[ArrayCharacterization]:
        results = characterize_points(
            sweep_points(spec),
            workers=self.workers,
            cache=self.cache,
            memory=self._array_cache,
            on_error=self.on_error,
            telemetry=telemetry,
        )
        return [array for array in results if array is not None]

    def arrays(self, spec: SweepSpec) -> list[ArrayCharacterization]:
        """Characterize every (cell, capacity, target) of the sweep.

        Points that fail under ``on_error="skip"`` are omitted (see
        ``last_telemetry`` for what was dropped).
        """
        telemetry = SweepTelemetry(self.progress)
        self.last_telemetry = telemetry
        return self._characterized(spec, telemetry)

    def run(self, spec: SweepSpec) -> ResultTable:
        """Run the full sweep.

        Without traffic the table holds array characterizations; with
        traffic it holds one row per (array, traffic) evaluation.  Row
        order is deterministic and independent of ``workers``.
        """
        telemetry = SweepTelemetry(self.progress)
        self.last_telemetry = telemetry
        arrays = self._characterized(spec, telemetry)
        table = ResultTable()
        if not spec.traffic:
            for array in arrays:
                table.append(array_record(array))
            return table
        traffic = tuple(spec.traffic)
        jobs = [(array, traffic) for array in arrays]

        def _evaluated(index: int, rows) -> None:
            telemetry.emit(
                ProgressEvent(
                    COMPLETED, arrays[index].label, index, len(arrays),
                    phase="evaluate",
                )
            )

        row_chunks = parallel_map(
            _evaluation_rows, jobs, workers=self.workers, on_result=_evaluated
        )
        for rows in row_chunks:
            for row in rows:
                table.append(row)
        return table
