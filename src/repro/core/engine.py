"""The top-level DSE engine: cells x system configs x traffic -> results.

This is the programmatic equivalent of the paper's ``run.py`` sweep driver:
given cell definitions, array provisioning choices, and traffic patterns,
characterize every array once and evaluate every (array, traffic) pair,
producing a :class:`~repro.results.ResultTable` whose rows carry everything
the dashboards plot.

Execution is delegated to :mod:`repro.runtime`: ``workers>1`` fans
characterization and (array, traffic) evaluation out over a process pool,
``cache_dir`` persists characterizations across runs, and
``on_error="skip"`` reports failed points through telemetry instead of
aborting the sweep.  The defaults (serial, in-memory cache only, abort on
error) preserve the engine's historical behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.cells.base import CellTechnology
from repro.core.metrics import (  # noqa: F401  (re-exported for compatibility)
    SystemEvaluation,
    array_record,
    evaluate,
    evaluation_record,
)
from repro.errors import CharacterizationError
from repro.nvsim.result import ArrayCharacterization, OptimizationTarget
from repro.results.table import ResultTable
from repro.runtime.cache import CharacterizationCache, EvaluationCache
from repro.runtime.chaos import ChaosOptions
from repro.runtime.executor import (
    SweepPoint,
    characterize_points,
    evaluate_blocks,
    sweep_points,
)
from repro.runtime.resilience import RetryPolicy
from repro.runtime.options import (
    ARRAY_CACHE_SUBDIR,
    COST_CACHE_SUBDIR,
    EVALUATION_CACHE_SUBDIR,
    RuntimeOptions,
)
from repro.runtime.schedule import CostLedger, WorkQueue
from repro.runtime.shard import PointShard
from repro.runtime.telemetry import SweepTelemetry
from repro.traffic.base import TrafficPattern


@dataclass(frozen=True)
class SweepSpec:
    """One design sweep: the cross product the engine evaluates.

    ``point_shard`` optionally restricts this sweep to one deterministic
    slice of its fingerprinted point space (intra-study sharding across
    hosts); it overrides the engine's own selector for this sweep.
    """

    cells: Sequence[CellTechnology]
    capacities_bytes: Sequence[int]
    traffic: Sequence[TrafficPattern] = ()
    node_nm: int = 22
    sram_node_nm: int = 16
    optimization_targets: Sequence[OptimizationTarget] = (
        OptimizationTarget.READ_EDP,
    )
    access_bits: int = 64
    bits_per_cell: int = 1
    point_shard: Optional[PointShard] = None

    def __post_init__(self) -> None:
        if not self.cells:
            raise CharacterizationError("sweep needs at least one cell")
        if not self.capacities_bytes:
            raise CharacterizationError("sweep needs at least one capacity")


class DSEEngine:
    """Runs sweeps and caches array characterizations along the way.

    Parameters
    ----------
    workers:
        Process-pool width for characterization and evaluation fan-out;
        1 (the default) runs everything serially in-process.
    cache_dir:
        Root of the persistent cache layout (``arrays/`` holds
        characterizations, ``evaluations/`` holds (array x traffic)
        evaluation row blocks); ``None`` keeps results in memory only.
    on_error:
        ``"raise"`` aborts the sweep on the first
        :class:`CharacterizationError` (historical behavior); ``"skip"``
        drops the failing point, records it in the run's telemetry, and
        keeps sweeping.
    progress:
        Optional callback receiving one
        :class:`~repro.runtime.telemetry.ProgressEvent` per sweep point.
    point_shard:
        Optional :class:`~repro.runtime.shard.PointShard` restricting
        every sweep to this host's deterministic slice of the
        fingerprinted point space; points owned by other shards are
        reported as ``skipped`` telemetry and produce no rows.  A
        sweep's own ``SweepSpec.point_shard`` takes precedence.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        on_error: str = "raise",
        progress=None,
        point_shard: Optional[PointShard] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosOptions] = None,
        schedule: str = "fingerprint",
        queue: Optional[WorkQueue] = None,
    ) -> None:
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}"
            )
        if schedule not in ("fingerprint", "balanced"):
            raise ValueError(
                f"schedule must be 'fingerprint' or 'balanced', got {schedule!r}"
            )
        self.workers = max(1, int(workers))
        self.on_error = on_error
        self.progress = progress
        self.point_shard = point_shard
        self.retry = retry
        self.chaos = chaos
        self.schedule = schedule
        self.queue = queue
        self.cache: Optional[CharacterizationCache] = None
        self.eval_cache: Optional[EvaluationCache] = None
        #: Cost ledger of observed per-point wall-clock; always recording
        #: when a cache root exists, so balanced planning has data to
        #: learn from no matter which schedule produced it.
        self.cost_ledger: Optional[CostLedger] = None
        if cache_dir is not None:
            root = Path(cache_dir)
            self.cache = CharacterizationCache(root / ARRAY_CACHE_SUBDIR, chaos=chaos)
            self.eval_cache = EvaluationCache(
                root / EVALUATION_CACHE_SUBDIR, chaos=chaos
            )
            self.cost_ledger = CostLedger(root / COST_CACHE_SUBDIR)
        #: In-memory cache keyed by the stable point fingerprint (shared
        #: with the on-disk cache's addressing).
        self._array_cache: dict[str, ArrayCharacterization] = {}
        #: In-memory evaluation-block memo, keyed like the on-disk store.
        self._eval_memory: dict[str, list[dict]] = {}
        #: Telemetry of the most recent ``run``/``arrays`` call.
        self.last_telemetry: Optional[SweepTelemetry] = None

    @classmethod
    def from_options(cls, options: RuntimeOptions) -> "DSEEngine":
        """An engine configured from shared :class:`RuntimeOptions`."""
        queue = None
        if options.queue_dir is not None:
            # The point-shard index doubles as the consumer identity:
            # each queue consumer must run with a distinct index anyway
            # so its manifest slots into the merge as one shard.
            queue = WorkQueue(
                options.queue_dir,
                worker_id=str(options.point_shard_index),
                batch_size=options.queue_batch,
                lease_expiry_s=options.queue_lease_s,
            )
        return cls(
            workers=options.workers,
            cache_dir=options.cache_dir,
            on_error=options.on_error,
            progress=options.progress,
            point_shard=options.point_shard,
            retry=options.retry,
            chaos=options.chaos,
            schedule=options.schedule,
            queue=queue,
        )

    def fingerprint(
        self,
        cell: CellTechnology,
        capacity_bytes: int,
        node_nm: int,
        target: OptimizationTarget,
        access_bits: int,
        bits_per_cell: int,
    ) -> str:
        """The stable cache key of one design point."""
        return SweepPoint(
            cell, capacity_bytes, node_nm, target, access_bits, bits_per_cell
        ).fingerprint()

    def characterize(
        self,
        cell: CellTechnology,
        capacity_bytes: int,
        node_nm: int,
        target: OptimizationTarget,
        access_bits: int,
        bits_per_cell: int,
    ) -> ArrayCharacterization:
        point = SweepPoint(
            cell, capacity_bytes, node_nm, target, access_bits, bits_per_cell
        )
        result = characterize_points(
            [point],
            workers=1,
            cache=self.cache,
            memory=self._array_cache,
            on_error="raise",
            telemetry=SweepTelemetry(self.progress),
            ledger=self.cost_ledger,
        )[0]
        assert result is not None  # on_error="raise" never returns None
        return result

    def evaluate_blocks(
        self,
        arrays: Sequence[ArrayCharacterization],
        traffic: Sequence[TrafficPattern],
        rows_fn=None,
        extra=None,
        telemetry: Optional[SweepTelemetry] = None,
    ) -> list[list[dict]]:
        """Evaluate arrays under a traffic block through every cache layer.

        One list of flattened rows per array, in array order; blocks
        already present in the in-memory memo or the persistent
        evaluation cache are served without re-running the model.  See
        :func:`repro.runtime.executor.evaluate_blocks` for ``rows_fn`` /
        ``extra`` semantics.
        """
        return evaluate_blocks(
            arrays,
            traffic,
            rows_fn=rows_fn,
            extra=extra,
            workers=self.workers,
            cache=self.eval_cache,
            memory=self._eval_memory,
            telemetry=(
                telemetry if telemetry is not None else SweepTelemetry(self.progress)
            ),
            retry=self.retry,
            chaos=self.chaos,
            ledger=self.cost_ledger,
        )

    def _characterized(
        self, spec: SweepSpec, telemetry: SweepTelemetry
    ) -> list[ArrayCharacterization]:
        # Sharding applies once, at the characterization level: the
        # arrays that survive *are* this shard's slice, so downstream
        # evaluation must run them all (re-partitioning by evaluation
        # fingerprint would drop this shard's own work).
        results = characterize_points(
            sweep_points(spec),
            workers=self.workers,
            cache=self.cache,
            memory=self._array_cache,
            on_error=self.on_error,
            telemetry=telemetry,
            point_shard=(
                spec.point_shard if spec.point_shard is not None
                else self.point_shard
            ),
            retry=self.retry,
            chaos=self.chaos,
            ledger=self.cost_ledger,
            schedule=self.schedule,
            queue=self.queue,
        )
        return [array for array in results if array is not None]

    def arrays(self, spec: SweepSpec) -> list[ArrayCharacterization]:
        """Characterize every (cell, capacity, target) of the sweep.

        Points that fail under ``on_error="skip"`` — or that belong to
        another point shard — are omitted (see ``last_telemetry`` for
        what was dropped or skipped).
        """
        telemetry = SweepTelemetry(self.progress)
        self.last_telemetry = telemetry
        return self._characterized(spec, telemetry)

    def run(self, spec: SweepSpec) -> ResultTable:
        """Run the full sweep.

        Without traffic the table holds array characterizations; with
        traffic it holds one row per (array, traffic) evaluation.  Row
        order is deterministic and independent of ``workers``; under a
        point-shard selector the table holds exactly this shard's rows,
        in the same relative order as the single-host run.
        """
        telemetry = SweepTelemetry(self.progress)
        self.last_telemetry = telemetry
        arrays = self._characterized(spec, telemetry)
        table = ResultTable()
        if not spec.traffic:
            for array in arrays:
                table.append(array_record(array))
            return table
        row_blocks = self.evaluate_blocks(
            arrays, tuple(spec.traffic), telemetry=telemetry
        )
        for rows in row_blocks:
            if rows is None:  # block poisoned by exhausted transient retries
                continue
            for row in rows:
                table.append(row)
        return table
