"""Explicit two-level heterogeneous memory hierarchy evaluation.

Section V-D reasons about a write buffer analytically; this module makes
the hierarchy explicit so co-design studies can size it: a small fast
front array (SRAM or STT) absorbing a measured or assumed fraction of the
traffic, backed by a large eNVM array.  The evaluation composes the two
arrays' power/latency/lifetime into system-level numbers, which is the
"technologically-heterogeneous memory systems" direction the paper's
conclusion points at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import SystemEvaluation, evaluate
from repro.errors import EvaluationError
from repro.nvsim.result import ArrayCharacterization
from repro.traffic.base import TrafficPattern


@dataclass(frozen=True)
class HierarchyEvaluation:
    """Composed metrics of a front buffer + backing eNVM."""

    front: SystemEvaluation
    backing: SystemEvaluation
    total_power: float
    memory_latency_per_second: float
    lifetime_seconds: float | None

    @property
    def label(self) -> str:
        return (
            f"{self.front.array.cell.name}+{self.backing.array.cell.name}"
            f" x {self.backing.traffic.name}"
        )

    @property
    def lifetime_years(self) -> float | None:
        if self.lifetime_seconds is None:
            return None
        return self.lifetime_seconds / (365.25 * 86400.0)


def split_traffic(
    traffic: TrafficPattern,
    read_hit_rate: float,
    write_coalescing: float,
) -> tuple[TrafficPattern, TrafficPattern]:
    """(front traffic, backing traffic) under hit/coalescing fractions.

    The front absorbs its read hits and all writes (it is an explicitly
    managed buffer, not a lookup filter); the backing level sees the read
    misses plus the uncoalesced write-backs.
    """
    if not 0.0 <= read_hit_rate <= 1.0:
        raise EvaluationError("read_hit_rate must be in [0, 1]")
    if not 0.0 <= write_coalescing < 1.0:
        raise EvaluationError("write_coalescing must be in [0, 1)")
    front = traffic.scaled(read_factor=read_hit_rate).renamed(
        f"{traffic.name}@front"
    )
    backing = traffic.scaled(
        read_factor=1.0 - read_hit_rate,
        write_factor=1.0 - write_coalescing,
    ).renamed(f"{traffic.name}@backing")
    return front, backing


def evaluate_hierarchy(
    front_array: ArrayCharacterization,
    backing_array: ArrayCharacterization,
    traffic: TrafficPattern,
    read_hit_rate: float = 0.0,
    write_coalescing: float = 0.5,
) -> HierarchyEvaluation:
    """Evaluate a front buffer in front of a backing eNVM.

    The application's visible latency is the front's on hits plus the
    backing's on the residual traffic; power adds both levels; lifetime is
    the backing array's under its reduced write load (the front is assumed
    endurance-unlimited — size it with SRAM or STT).
    """
    if front_array.capacity_bytes >= backing_array.capacity_bytes:
        raise EvaluationError("front buffer should be smaller than the backing array")
    front_traffic, backing_traffic = split_traffic(
        traffic, read_hit_rate, write_coalescing
    )
    front_ev = evaluate(front_array, front_traffic)
    backing_ev = evaluate(backing_array, backing_traffic)
    total_power = front_ev.total_power + backing_ev.total_power
    latency = (
        front_ev.memory_latency_per_second + backing_ev.memory_latency_per_second
    )
    return HierarchyEvaluation(
        front=front_ev,
        backing=backing_ev,
        total_power=total_power,
        memory_latency_per_second=latency,
        lifetime_seconds=backing_ev.lifetime_seconds,
    )


def buffer_sizing_sweep(
    front_arrays: list[ArrayCharacterization],
    backing_array: ArrayCharacterization,
    traffic: TrafficPattern,
    coalescing_by_size: dict[int, float],
) -> list[HierarchyEvaluation]:
    """Evaluate several front-buffer sizes with measured coalescing factors.

    ``coalescing_by_size`` maps front capacity (bytes) to the write-traffic
    reduction it achieves (e.g. measured with
    :func:`repro.core.writebuffer.coalescing_factor`).
    """
    out = []
    for front in front_arrays:
        coalescing = coalescing_by_size.get(front.capacity_bytes)
        if coalescing is None:
            raise EvaluationError(
                f"no coalescing factor for front size {front.capacity_bytes}"
            )
        out.append(
            evaluate_hierarchy(
                front, backing_array, traffic, write_coalescing=coalescing
            )
        )
    return out
