"""Pareto-front utilities for multi-objective design exploration."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import EvaluationError


def pareto_front(
    records: Iterable[Mapping[str, Any]],
    objectives: Sequence[str],
) -> list[dict[str, Any]]:
    """Records not dominated on the given minimize-objectives.

    A record dominates another when it is no worse on every objective and
    strictly better on at least one.  Records missing an objective are
    excluded.
    """
    if not objectives:
        raise EvaluationError("need at least one objective")
    candidates = [
        dict(r)
        for r in records
        if all(r.get(obj) is not None for obj in objectives)
    ]

    def dominates(a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
        no_worse = all(a[o] <= b[o] for o in objectives)
        strictly = any(a[o] < b[o] for o in objectives)
        return no_worse and strictly

    front = []
    for record in candidates:
        if not any(dominates(other, record) for other in candidates):
            front.append(record)
    return front


def knee_point(
    front: Sequence[Mapping[str, Any]],
    objectives: Sequence[str],
) -> dict[str, Any]:
    """The balanced point of a Pareto front (min normalized distance to the
    per-objective minima)."""
    if not front:
        raise EvaluationError("empty Pareto front")
    mins = {o: min(r[o] for r in front) for o in objectives}
    maxs = {o: max(r[o] for r in front) for o in objectives}

    def distance(record: Mapping[str, Any]) -> float:
        total = 0.0
        for o in objectives:
            span = maxs[o] - mins[o]
            if span <= 0:
                continue
            total += ((record[o] - mins[o]) / span) ** 2
        return total

    return dict(min(front, key=distance))
