"""Retention-aware deployment checks and scrubbing (an extension study).

Several surveyed technologies retain data for far less than the 10-year
flash standard (RRAM down to ~1e3 s, FeFET/FeRAM down to ~1e5 s).  For the
intermittent use cases that is a real constraint: if the device sleeps
longer than the cell retains, the weights are gone — unless the system
wakes periodically to *scrub* (read and rewrite) the array.

This module answers the deployment question quantitatively:

* :func:`max_unpowered_interval` — the longest sleep the array tolerates
  (with a safety margin against the retention spec).
* :func:`scrub_power` — the average power of periodic scrubbing.
* :func:`deployment_check` — combine both with a wake-up schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import EvaluationError
from repro.nvsim.result import ArrayCharacterization

#: Scrub well before the retention spec expires.
DEFAULT_RETENTION_MARGIN = 0.1


def max_unpowered_interval(
    array: ArrayCharacterization,
    margin: float = DEFAULT_RETENTION_MARGIN,
) -> Optional[float]:
    """Longest tolerable unpowered interval, seconds.

    ``None`` means the limit is not retention-bound (SRAM/eDRAM return 0.0:
    they retain nothing unpowered).
    """
    if not 0.0 < margin <= 1.0:
        raise EvaluationError("margin must be in (0, 1]")
    retention = array.retention_seconds
    if not array.cell.tech_class.is_nonvolatile:
        return 0.0
    if retention is None:
        return None
    return retention * margin


def scrub_energy_per_pass(array: ArrayCharacterization) -> float:
    """Energy to read and rewrite the whole array once, joules."""
    accesses = array.capacity_bytes / array.access_bytes
    return accesses * (array.read_energy + array.write_energy)


def scrub_power(
    array: ArrayCharacterization,
    margin: float = DEFAULT_RETENTION_MARGIN,
) -> float:
    """Average power of scrubbing at the retention-driven period, watts.

    Zero when the array never needs scrubbing.
    """
    interval = max_unpowered_interval(array, margin)
    if interval is None:
        return 0.0
    if interval <= 0.0:
        raise EvaluationError(
            f"{array.cell.name} cannot retain data unpowered; scrubbing "
            "cannot help a volatile array"
        )
    return scrub_energy_per_pass(array) / interval


@dataclass(frozen=True)
class DeploymentCheck:
    """Whether a wake-up schedule is retention-safe, and at what cost."""

    array_label: str
    wake_interval_seconds: float
    retention_limited: bool
    needs_scrubbing: bool
    scrub_power_watts: float
    scrub_writes_per_second: float
    lifetime_impact_fraction: float  # scrub writes as fraction of endurance/s


def deployment_check(
    array: ArrayCharacterization,
    wake_interval_seconds: float,
    margin: float = DEFAULT_RETENTION_MARGIN,
) -> DeploymentCheck:
    """Check a sleep schedule against the array's retention.

    When the natural wake interval exceeds the retention limit, the device
    must add scrub wake-ups; the check reports their power cost and the
    endurance they consume.
    """
    if wake_interval_seconds <= 0:
        raise EvaluationError("wake interval must be positive")
    limit = max_unpowered_interval(array, margin)
    retention_limited = limit is not None
    needs_scrub = retention_limited and limit < wake_interval_seconds
    if limit == 0.0:
        # Volatile: retention can never be satisfied by scrubbing.
        return DeploymentCheck(
            array_label=array.label,
            wake_interval_seconds=wake_interval_seconds,
            retention_limited=True,
            needs_scrubbing=False,
            scrub_power_watts=float("inf"),
            scrub_writes_per_second=float("inf"),
            lifetime_impact_fraction=0.0,
        )
    power = scrub_power(array, margin) if needs_scrub else 0.0
    writes_per_second = (
        (array.capacity_bytes / array.access_bytes) / limit if needs_scrub else 0.0
    )
    endurance = array.endurance_cycles or float("inf")
    # Each scrub pass writes every cell once: per-cell write rate = 1/limit.
    lifetime_impact = (1.0 / limit) / endurance if needs_scrub else 0.0
    return DeploymentCheck(
        array_label=array.label,
        wake_interval_seconds=wake_interval_seconds,
        retention_limited=retention_limited,
        needs_scrubbing=needs_scrub,
        scrub_power_watts=power,
        scrub_writes_per_second=writes_per_second,
        lifetime_impact_fraction=lifetime_impact,
    )
