"""The cross-stack analytical model (Section II-B).

Combines an :class:`~repro.nvsim.ArrayCharacterization` with a
:class:`~repro.traffic.TrafficPattern` to produce the application-level
metrics every figure plots:

* **total memory power** — dynamic (rate x energy-per-access) plus array
  leakage plus a small capacity-proportional controller overhead;
* **total memory latency** — the paper's "long-pole, bandwidth driven"
  model: aggregate access latency per second of execution, spread over the
  array's bank-level concurrency.  A value above 1 s/s means the memory
  cannot keep up and the application slows down by that factor;
* **bandwidth feasibility** — whether demanded read/write bandwidth fits
  within what the array sustains;
* **memory lifetime** — cell endurance against the write rate under ideal
  wear levelling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import EvaluationError
from repro.nvsim.result import ArrayCharacterization
from repro.traffic.base import TrafficPattern
from repro.units import BITS_PER_BYTE, MB, SECONDS_PER_YEAR, to_mm2, to_ns, to_pj

#: Memory-controller / interface overhead, watts per byte of capacity
#: (0.4 mW per MB).  System-level cost the array model does not see.
CONTROLLER_POWER_PER_BYTE = 0.4e-3 / MB

#: Lifetime beyond which we report "effectively unlimited", seconds.
LIFETIME_CAP_SECONDS = 1000.0 * SECONDS_PER_YEAR


@dataclass(frozen=True)
class SystemEvaluation:
    """One (array, traffic) evaluation — a row of the paper's dashboards."""

    array: ArrayCharacterization
    traffic: TrafficPattern

    total_power: float  # W
    dynamic_power: float  # W
    leakage_power: float  # W (incl. controller overhead)
    memory_latency_per_second: float  # s of access latency per s of execution
    slowdown: float  # >= 1.0; 1.0 means the memory keeps up
    read_bandwidth_ok: bool
    write_bandwidth_ok: bool
    lifetime_seconds: Optional[float]  # None = unlimited (no endurance limit)
    energy_per_task: Optional[float]  # J, when the traffic has a task notion

    @property
    def feasible(self) -> bool:
        """Does the array meet the workload's bandwidth demand?"""
        return self.read_bandwidth_ok and self.write_bandwidth_ok

    @property
    def lifetime_years(self) -> Optional[float]:
        if self.lifetime_seconds is None:
            return None
        return self.lifetime_seconds / SECONDS_PER_YEAR

    @property
    def label(self) -> str:
        return f"{self.array.cell.name} x {self.traffic.name}"

    def meets_latency_target(self, seconds_per_second: float = 1.0) -> bool:
        """The paper's slowdown filter: aggregate latency under target."""
        return self.memory_latency_per_second <= seconds_per_second


def _access_scaling(array: ArrayCharacterization, traffic: TrafficPattern) -> float:
    """Accesses the array performs per application access.

    When the application moves more bytes per access than the array
    transfers per access, the array is accessed multiple times.
    """
    return max(1.0, traffic.access_bytes / array.access_bytes)


def evaluate(
    array: ArrayCharacterization,
    traffic: TrafficPattern,
    write_latency_mask: float = 0.0,
) -> SystemEvaluation:
    """Run the analytical model for one array under one traffic pattern.

    Parameters
    ----------
    write_latency_mask:
        Fraction of write latency hidden from the application (0 = none);
        used by the write-buffering study (Section V-D).  Energy is still
        paid in full.
    """
    if not 0.0 <= write_latency_mask <= 1.0:
        raise EvaluationError("write_latency_mask must be in [0, 1]")

    scale = _access_scaling(array, traffic)
    reads = traffic.reads_per_second * scale
    writes = traffic.writes_per_second * scale

    controller = CONTROLLER_POWER_PER_BYTE * array.capacity_bytes
    dynamic = reads * array.read_energy + writes * array.write_energy
    static = array.leakage_power + controller
    total_power = dynamic + static

    effective_write_latency = array.write_latency * (1.0 - write_latency_mask)
    concurrency = array.organization.concurrency
    latency_per_second = (
        reads * array.read_latency + writes * effective_write_latency
    ) / concurrency
    slowdown = max(1.0, latency_per_second)

    read_ok = traffic.read_bandwidth <= array.read_bandwidth
    write_ok = traffic.write_bandwidth <= (
        array.write_bandwidth / max(1e-12, 1.0 - write_latency_mask)
        if write_latency_mask > 0
        else array.write_bandwidth
    )

    lifetime = lifetime_seconds(array, traffic)

    energy_per_task = None
    if traffic.reads_per_task is not None or traffic.writes_per_task is not None:
        task_reads = (traffic.reads_per_task or 0.0) * scale
        task_writes = (traffic.writes_per_task or 0.0) * scale
        energy_per_task = (
            task_reads * array.read_energy + task_writes * array.write_energy
        )

    return SystemEvaluation(
        array=array,
        traffic=traffic,
        total_power=total_power,
        dynamic_power=dynamic,
        leakage_power=static,
        memory_latency_per_second=latency_per_second,
        slowdown=slowdown,
        read_bandwidth_ok=read_ok,
        write_bandwidth_ok=write_ok,
        lifetime_seconds=lifetime,
        energy_per_task=energy_per_task,
    )


def evaluate_many(
    array: ArrayCharacterization,
    traffic: Sequence[TrafficPattern],
    write_latency_mask: float = 0.0,
) -> list[SystemEvaluation]:
    """Evaluate one array under a whole block of traffic patterns.

    The batched unit of the evaluation layer: worker tasks and the
    persistent evaluation cache both operate on (array x traffic-block)
    granularity rather than one (array, traffic) pair at a time.
    """
    return [evaluate(array, t, write_latency_mask) for t in traffic]


# --- flattened result rows --------------------------------------------------


def _flavor(cell) -> str:
    name = cell.name.lower()
    for tag in ("optimistic", "pessimistic", "reference", "back-gated"):
        if tag in name:
            return tag
    return "custom"


def array_record(array: ArrayCharacterization) -> dict:
    """Flatten an array characterization into a table row."""
    return {
        "cell": array.cell.name,
        "tech": array.cell.tech_class.value,
        "flavor": _flavor(array.cell),
        "capacity_mb": array.capacity_bytes / (1024 * 1024),
        "node_nm": array.node_nm,
        "bits_per_cell": array.bits_per_cell,
        "target": array.optimization_target.value,
        "area_mm2": to_mm2(array.area),
        "area_efficiency": array.area_efficiency,
        "density_mbit_mm2": array.density_mbit_per_mm2,
        "read_latency_ns": to_ns(array.read_latency),
        "write_latency_ns": to_ns(array.write_latency),
        "read_energy_pj": to_pj(array.read_energy),
        "write_energy_pj": to_pj(array.write_energy),
        "read_energy_per_bit_pj": to_pj(array.read_energy_per_bit),
        "write_energy_per_bit_pj": to_pj(array.write_energy_per_bit),
        "leakage_mw": array.leakage_power * 1e3,
        "sleep_uw": array.sleep_power * 1e6,
        "read_bw_gbps": array.read_bandwidth / 1e9,
        "write_bw_gbps": array.write_bandwidth / 1e9,
    }


def evaluation_record(ev: SystemEvaluation) -> dict:
    """Flatten a system evaluation into a table row."""
    row = array_record(ev.array)
    row.update(
        {
            "workload": ev.traffic.name,
            "reads_per_s": ev.traffic.reads_per_second,
            "writes_per_s": ev.traffic.writes_per_second,
            "total_power_mw": ev.total_power * 1e3,
            "dynamic_power_mw": ev.dynamic_power * 1e3,
            "static_power_mw": ev.leakage_power * 1e3,
            "memory_latency_s_per_s": ev.memory_latency_per_second,
            "slowdown": ev.slowdown,
            "feasible": ev.feasible,
            "lifetime_years": ev.lifetime_years,
            "energy_per_task_uj": (
                None if ev.energy_per_task is None else ev.energy_per_task * 1e6
            ),
        }
    )
    for key, value in ev.traffic.metadata.items():
        row.setdefault(key, value)
    return row


def evaluation_rows(
    array: ArrayCharacterization,
    traffic: Sequence[TrafficPattern],
    extra: Any = None,
) -> list[dict]:
    """One flattened row per traffic pattern — the default block evaluator.

    This is the standard ``rows_fn`` of
    :func:`repro.runtime.executor.evaluate_blocks`; ``extra`` is unused
    here but part of the uniform signature specialized evaluators share.
    """
    del extra
    return [evaluation_record(ev) for ev in evaluate_many(array, traffic)]


def lifetime_seconds(
    array: ArrayCharacterization,
    traffic: TrafficPattern,
    wear_leveling_efficiency: float = 1.0,
) -> Optional[float]:
    """Projected memory lifetime under the traffic's write load.

    With ideal wear levelling every cell ages at the average rate:
    ``endurance / (write_bits_per_second / capacity_bits)``.  Returns None
    when the cell has no endurance limit (SRAM/eDRAM) or when the computed
    lifetime exceeds :data:`LIFETIME_CAP_SECONDS` (reported as unlimited).
    """
    if not 0.0 < wear_leveling_efficiency <= 1.0:
        raise EvaluationError("wear_leveling_efficiency must be in (0, 1]")
    endurance = array.endurance_cycles
    if endurance is None or math.isinf(endurance):
        return None
    write_bits = traffic.write_bits_per_second
    if write_bits <= 0:
        return None
    capacity_bits = array.capacity_bytes * BITS_PER_BYTE
    per_bit_write_rate = write_bits / (capacity_bits * wear_leveling_efficiency)
    lifetime = endurance / per_bit_write_rate
    if lifetime >= LIFETIME_CAP_SECONDS:
        return None
    return lifetime


def retention_ok(array: ArrayCharacterization, required_seconds: float) -> bool:
    """Can the array hold data unpowered for ``required_seconds``?"""
    retention = array.retention_seconds
    if retention is None:
        # Volatile memory retains nothing across power-off; while powered it
        # holds data indefinitely.  "Required retention" in the studies is
        # about unpowered intervals, so volatile memories fail any positive
        # requirement.
        return required_seconds <= 0.0
    return retention >= required_seconds
