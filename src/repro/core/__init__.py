"""Cross-stack evaluation: metrics, intermittent model, write buffers, DSE."""

from repro.core.engine import DSEEngine, SweepSpec, array_record, evaluation_record
from repro.core.intermittent import (
    IntermittentEvaluation,
    crossover_rate,
    evaluate_intermittent,
    wake_energy,
    wake_latency,
)
from repro.core.metrics import (
    CONTROLLER_POWER_PER_BYTE,
    SystemEvaluation,
    evaluate,
    lifetime_seconds,
    retention_ok,
)
from repro.core.battery import (
    COIN_CELL_JOULES,
    LIPO_1AH_JOULES,
    BatteryLifeEstimate,
    battery_life,
    inference_budget,
)
from repro.core.hierarchy import (
    HierarchyEvaluation,
    buffer_sizing_sweep,
    evaluate_hierarchy,
    split_traffic,
)
from repro.core.pareto import knee_point, pareto_front
from repro.core.retention import (
    DeploymentCheck,
    deployment_check,
    max_unpowered_interval,
    scrub_energy_per_pass,
    scrub_power,
)
from repro.core.writebuffer import (
    DEFAULT_SCENARIOS,
    WriteBufferConfig,
    buffered_traffic,
    coalescing_factor,
    evaluate_with_buffer,
    sweep_buffer_scenarios,
)

__all__ = [
    "DSEEngine",
    "SweepSpec",
    "array_record",
    "evaluation_record",
    "SystemEvaluation",
    "evaluate",
    "lifetime_seconds",
    "retention_ok",
    "CONTROLLER_POWER_PER_BYTE",
    "IntermittentEvaluation",
    "evaluate_intermittent",
    "crossover_rate",
    "wake_energy",
    "wake_latency",
    "WriteBufferConfig",
    "DEFAULT_SCENARIOS",
    "buffered_traffic",
    "evaluate_with_buffer",
    "sweep_buffer_scenarios",
    "coalescing_factor",
    "pareto_front",
    "knee_point",
    "HierarchyEvaluation",
    "evaluate_hierarchy",
    "split_traffic",
    "buffer_sizing_sweep",
    "DeploymentCheck",
    "deployment_check",
    "max_unpowered_interval",
    "scrub_power",
    "scrub_energy_per_pass",
    "BatteryLifeEstimate",
    "battery_life",
    "inference_budget",
    "COIN_CELL_JOULES",
    "LIPO_1AH_JOULES",
]
