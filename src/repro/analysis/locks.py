"""Rule ``lock-coverage``: shared telemetry mutates under its lock.

:class:`repro.runtime.telemetry.SweepTelemetry` is shared by worker
threads absorbing results, the service's SSE bridge, and status
endpoints reading counters mid-run; its docstring promises every
counter mutation happens under ``self._lock``.  That promise is easy to
silently break — a new counter bumped outside the lock races absorb()
and produces off-by-some manifests only under load.

This rule checks the promise statically: inside the configured class,
any mutation of ``self.<attr>`` — assignment, augmented assignment,
``setattr(self, ...)``, or an in-place container mutation like
``self.failures.append(...)`` — must sit under a ``with self._lock:``
block, or in a method whose docstring declares the convention
``"caller holds the lock"`` (the documented pattern for internal
helpers invoked from locked sections).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from repro.analysis.engine import (
    Finding,
    LintContext,
    ModuleInfo,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = ["LockCoverageRule"]

#: (module, class, lock attribute) triples to enforce.
DEFAULT_GUARDED_CLASSES: Tuple[Tuple[str, str, str], ...] = (
    ("repro.runtime.telemetry", "SweepTelemetry", "_lock"),
)

#: Method names that mutate a container in place.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
}

#: Docstring marker for helpers that rely on the caller's lock.
_LOCK_HELD_MARKER = "holds the lock"


def _holds_lock_by_convention(fn: ast.AST) -> bool:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    doc = ast.get_docstring(fn)
    return doc is not None and _LOCK_HELD_MARKER in doc.lower()


@register_rule
class LockCoverageRule(Rule):
    """Counter mutation outside ``with self._lock`` in guarded classes."""

    id = "lock-coverage"
    summary = (
        "shared-telemetry attributes may only mutate under the instance "
        "lock (or in a documented lock-held helper)"
    )

    def __init__(
        self,
        guarded: Sequence[Tuple[str, str, str]] = DEFAULT_GUARDED_CLASSES,
    ) -> None:
        self.guarded = tuple(guarded)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module_name, class_name, lock_attr in self.guarded:
            module = ctx.modules.get(module_name)
            if module is None:
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == class_name:
                    yield from self._check_class(ctx, module, node, lock_attr)

    # -- helpers -----------------------------------------------------------

    def _under_lock(self, module: ModuleInfo, node: ast.AST, lock_attr: str) -> bool:
        lock_chain = f"self.{lock_attr}"
        current = module.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    if dotted_name(item.context_expr) == lock_chain:
                        return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return _holds_lock_by_convention(current)
            current = module.parents.get(current)
        return False

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        """``self.X`` -> ``X`` (only for direct attributes of ``self``)."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _check_class(
        self,
        ctx: LintContext,
        module: ModuleInfo,
        cls: ast.ClassDef,
        lock_attr: str,
    ) -> Iterator[Finding]:
        for node in ast.walk(cls):
            mutated = self._mutation_target(node)
            if mutated is None:
                continue
            attr, verb = mutated
            if attr == lock_attr:
                continue
            if self._under_lock(module, node, lock_attr):
                continue
            yield ctx.finding(
                self.id,
                module,
                node,
                f"{verb} of self.{attr} in {cls.name} outside "
                f"`with self.{lock_attr}:` — shared telemetry must mutate "
                "under its lock (or in a helper documented as "
                "'caller holds the lock')",
            )

    def _mutation_target(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """``(attribute, kind-of-mutation)`` when this node mutates
        ``self.<attribute>``, else None."""
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = self._self_attr(target)
                if attr is not None:
                    return attr, "assignment"
        elif isinstance(node, ast.AugAssign):
            attr = self._self_attr(node.target)
            if attr is not None:
                return attr, "augmented assignment"
        elif isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain == "setattr" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id == "self":
                    return "<attr>", "setattr()"
            if (
                chain is not None
                and chain.startswith("self.")
                and chain.count(".") == 2
                and chain.split(".")[-1] in _MUTATOR_METHODS
            ):
                return chain.split(".")[1], "in-place mutation"
        return None
