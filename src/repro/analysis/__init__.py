"""Static analysis of the repo's own runtime invariants.

``nvmexplorer lint`` (and the tier-1 tests wrapping it) statically
enforce the contracts the runtime layers rely on but cannot cheaply
verify at run time:

=============== =======================================================
rule id         invariant
=============== =======================================================
determinism     no wall-clock / unseeded randomness / unordered
                filesystem- or set-iteration reachable from
                fingerprinted code paths (call-graph reachability)
schema-drift    cache-feeding module sets carry a pinned source digest
                next to their ``*_SCHEMA_TAG``; drift without a tag
                bump fails (``repro/analysis/drift_pins.json``)
atomic-write    persistent stores stage writes to a temp file and
                ``os.replace()`` them into place
lock-coverage   ``SweepTelemetry`` counters mutate only under
                ``with self._lock`` (or documented lock-held helpers)
except-safety   no bare ``except:``; interrupt handlers in
                runtime/service code must re-raise
=============== =======================================================

Waive a finding inline with ``# repro: allow[rule-id] reason`` (on the
flagged line, or alone on the line above); a waiver without a reason is
itself a finding.  Pre-existing debt lives in the committed baseline
(``repro/analysis/lint_baseline.json``) — a ratchet that only shrinks.
"""

from repro.analysis.engine import (
    Finding,
    LintContext,
    LintResult,
    Rule,
    default_rules,
    register_rule,
    registered_rules,
    run_lint,
)

__all__ = [
    "Finding",
    "LintContext",
    "LintResult",
    "Rule",
    "default_rules",
    "register_rule",
    "registered_rules",
    "run_lint",
]
