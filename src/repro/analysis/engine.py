"""Core of the invariant linter: parsed modules, findings, suppressions.

The analysis package statically enforces the contracts the runtime can
only check after the fact: fingerprinted code paths must be
deterministic, cache-feeding source must bump its schema tag when it
changes, persistent writes must go tmp + ``os.replace``, telemetry
counters must mutate under their lock, and runtime/service code must not
swallow interrupts.  Each contract is a :class:`Rule`; this module owns
everything the rules share:

* :class:`LintContext` — every module under the lint root parsed once
  (AST, source lines, parent links, inline suppressions);
* :class:`Finding` — one violation, anchored to a file/line and carrying
  the stripped source line as its *context* so baseline matching
  survives unrelated line drift;
* inline suppressions — ``# repro: allow[rule-id] reason`` on the
  flagged line (or alone on the line above) waives that rule there; a
  suppression without a reason is itself a finding;
* the rule registry — :func:`register_rule` + :func:`default_rules`.

Verdicts follow ``nvmexplorer fsck``'s convention: exit 0 when every
finding is suppressed or baselined, 1 when any violation stands.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Finding",
    "LintContext",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "Suppression",
    "default_rules",
    "register_rule",
    "run_lint",
]

#: ``# repro: allow[rule-id[,rule-id...]] reason`` — the inline waiver.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[a-z0-9\-]+(?:\s*,\s*[a-z0-9\-]+)*)\]"
    r"(?P<reason>.*)$"
)

#: Rule id of engine-emitted findings about the suppressions themselves.
SUPPRESSION_RULE_ID = "suppression"


@dataclass(frozen=True)
class Finding:
    """One invariant violation, anchored to a source line."""

    rule: str
    path: str  # relative to the lint root's parent (e.g. "repro/runtime/x.py")
    line: int
    col: int
    message: str
    context: str = ""  # the stripped source line — the baseline match key

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.context)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int  # line the comment sits on
    rules: Tuple[str, ...]
    reason: str

    def covers(self, rule: str) -> bool:
        return rule in self.rules


@dataclass
class ModuleInfo:
    """One parsed source module plus the derived lookups rules need."""

    name: str  # dotted module name, rooted at the lint root's dir name
    path: Path
    source: str
    lines: List[str]
    tree: ast.Module
    #: child AST node -> parent (statement ancestry for wrapper checks).
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: line number -> parsed suppression comment on that line.
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    #: lines that hold nothing but a suppression comment: they waive the
    #: *next* line instead of their own.
    comment_only: Dict[int, bool] = field(default_factory=dict)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppression_for(self, line: int, rule: str) -> Optional[Suppression]:
        """The waiver covering ``rule`` at ``line``, if any.

        A suppression applies to findings on its own line, or — when the
        comment is alone on its line — to the line directly below.
        """
        own = self.suppressions.get(line)
        if own is not None and own.covers(rule):
            return own
        above = self.suppressions.get(line - 1)
        if (
            above is not None
            and above.covers(rule)
            and self.comment_only.get(line - 1, False)
        ):
            return above
        return None


def _parse_suppressions(
    source: str,
) -> Tuple[Dict[int, Suppression], Dict[int, bool], List[Tuple[int, str]]]:
    """Extract suppression comments via the tokenizer (not string-matching).

    Returns ``(suppressions, comment_only, problems)`` where problems are
    ``(line, message)`` pairs for malformed waivers (missing reason).
    """
    suppressions: Dict[int, Suppression] = {}
    comment_only: Dict[int, bool] = {}
    problems: List[Tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions, comment_only, problems
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        rules = tuple(part.strip() for part in match.group("rules").split(",") if part.strip())
        reason = match.group("reason").strip()
        if not reason:
            message = (
                "suppression is missing a reason: write "
                "`# repro: allow[rule-id] why this is safe`"
            )
            problems.append((line, message))
        suppressions[line] = Suppression(line=line, rules=rules, reason=reason)
        # A comment token preceded only by whitespace waives the next line.
        comment_only[line] = token.line[: token.start[1]].strip() == ""
    return suppressions, comment_only, problems


def _link_parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


@dataclass
class LintContext:
    """Every module under one lint root, parsed once and shared by rules."""

    root: Path  # the package directory being linted (e.g. .../src/repro)
    modules: Dict[str, ModuleInfo]
    #: Parse/suppression problems discovered while loading, as findings.
    load_findings: List[Finding] = field(default_factory=list)

    @classmethod
    def load(cls, root: Union[str, Path]) -> "LintContext":
        root = Path(root).resolve()
        if not root.is_dir():
            raise FileNotFoundError(f"lint root {root} is not a directory")
        base = root.parent
        modules: Dict[str, ModuleInfo] = {}
        load_findings: List[Finding] = []
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(base)
            name = ".".join(rel.with_suffix("").parts)
            if name.endswith(".__init__"):
                name = name[: -len(".__init__")]
            source = path.read_text(encoding="utf-8")
            rel_str = rel.as_posix()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                load_findings.append(
                    Finding(
                        rule="parse",
                        path=rel_str,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"module does not parse: {exc.msg}",
                    )
                )
                continue
            suppressions, comment_only, problems = _parse_suppressions(source)
            lines = source.splitlines()
            info = ModuleInfo(
                name=name,
                path=path,
                source=source,
                lines=lines,
                tree=tree,
                parents=_link_parents(tree),
                suppressions=suppressions,
                comment_only=comment_only,
            )
            for line, message in problems:
                load_findings.append(
                    Finding(
                        rule=SUPPRESSION_RULE_ID,
                        path=rel_str,
                        line=line,
                        col=0,
                        message=message,
                        context=info.line_text(line),
                    )
                )
            modules[name] = info
        return cls(root=root, modules=modules, load_findings=load_findings)

    def rel(self, module: ModuleInfo) -> str:
        return module.path.relative_to(self.root.parent).as_posix()

    def finding(
        self,
        rule: str,
        module: ModuleInfo,
        node_or_line,
        message: str,
        col: Optional[int] = None,
    ) -> Finding:
        """Build a finding anchored at an AST node (or explicit line)."""
        if isinstance(node_or_line, int):
            line, column = node_or_line, col or 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            column = getattr(node_or_line, "col_offset", 0) if col is None else col
        return Finding(
            rule=rule,
            path=self.rel(module),
            line=line,
            col=column,
            message=message,
            context=module.line_text(line),
        )


class Rule:
    """One invariant check.  Subclasses set ``id``/``summary`` and yield
    findings from :meth:`check`."""

    id: str = ""
    summary: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


#: Registered rule classes, in registration (= documentation) order.
_RULE_REGISTRY: Dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the default set."""
    if not getattr(cls, "id", ""):
        raise ValueError(f"rule class {cls.__name__} has no id")
    _RULE_REGISTRY[cls.id] = cls
    return cls


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, default-configured."""
    # Imported here so registering modules never import the engine cyclically.
    from repro.analysis import (  # noqa: F401  (import-for-registration)
        determinism,
        drift,
        exceptions,
        iodiscipline,
        locks,
    )

    return [cls() for cls in _RULE_REGISTRY.values()]


def registered_rules() -> Dict[str, type]:
    """The rule registry (populated by :func:`default_rules`'s imports)."""
    default_rules()
    return dict(_RULE_REGISTRY)


@dataclass
class LintResult:
    """Everything one lint pass produced, before baseline filtering."""

    root: Path
    findings: List[Finding]  # active violations (not suppressed)
    suppressed: List[Tuple[Finding, Suppression]]
    unused_suppressions: List[Finding]  # informational, never fatal

    def to_dict(self) -> dict:
        return {
            "root": str(self.root),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [{**f.to_dict(), "reason": s.reason} for f, s in self.suppressed],
            "unused_suppressions": [f.to_dict() for f in self.unused_suppressions],
        }


def run_lint(
    root: Union[str, Path],
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint every module under ``root`` with the given (or default) rules.

    Findings carrying a matching inline suppression are set aside (with
    the waiver's reason); suppressions that waived nothing are reported
    informationally so stale ones get cleaned up.
    """
    ctx = LintContext.load(root)
    rules = default_rules() if rules is None else list(rules)
    raw: List[Finding] = list(ctx.load_findings)
    for rule in rules:
        raw.extend(rule.check(ctx))
    raw.sort(key=Finding.sort_key)

    by_path = {ctx.rel(info): info for info in ctx.modules.values()}
    active: List[Finding] = []
    suppressed: List[Tuple[Finding, Suppression]] = []
    used: Dict[Tuple[str, int], set] = {}
    for finding in raw:
        info = by_path.get(finding.path)
        waiver = (
            info.suppression_for(finding.line, finding.rule)
            if info is not None and finding.rule != SUPPRESSION_RULE_ID
            else None
        )
        if waiver is not None and waiver.reason:
            suppressed.append((finding, waiver))
            used.setdefault((finding.path, waiver.line), set()).add(finding.rule)
        else:
            active.append(finding)

    unused: List[Finding] = []
    for info in ctx.modules.values():
        path = ctx.rel(info)
        for line, waiver in sorted(info.suppressions.items()):
            if not waiver.reason:
                continue  # already an active finding
            covered = used.get((path, line), set())
            for rule_id in waiver.rules:
                if rule_id not in covered:
                    unused.append(
                        Finding(
                            rule=SUPPRESSION_RULE_ID,
                            path=path,
                            line=line,
                            col=0,
                            message=(
                                f"suppression for [{rule_id}] no longer waives "
                                "anything here; remove it"
                            ),
                            context=info.line_text(line),
                        )
                    )
    return LintResult(
        root=ctx.root,
        findings=active,
        suppressed=suppressed,
        unused_suppressions=unused,
    )


def iter_functions(
    module: ModuleInfo,
) -> Iterator[Tuple[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]]]:
    """``(qualname, node)`` for every function/method in one module.

    Qualnames are ``module.func`` / ``module.Class.method``; nested
    functions extend the chain.
    """

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                yield qual, child
                yield from walk(child, qual)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}.{child.name}")
            else:
                yield from walk(child, prefix)

    yield from walk(module.tree, module.name)


def enclosing_function(
    module: ModuleInfo, node: ast.AST
) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """The nearest function definition an AST node sits inside."""
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = module.parents.get(current)
    return None


def walk_scope(top_nodes: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements/expressions without descending into nested
    function or class definitions (those form their own scopes)."""
    stack: List[ast.AST] = list(top_nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a pure ``Name``/``Attribute`` chain as ``a.b.c`` (else None)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
