"""Best-effort project call graph for reachability-scoped rules.

The determinism rule must flag nondeterministic constructs anywhere
*reachable from* fingerprinted code, not just inside it — a
``time.time()`` three calls below ``characterize_points`` corrupts a
cache key just as surely as one inside it.  This module builds the
call graph that walk runs over:

* **Name resolution** follows each module's imports, so ``fp.point_
  fingerprint(...)`` and ``from ... import point_fingerprint`` both
  resolve to ``repro.runtime.fingerprint.point_fingerprint``.
* **Method calls** resolve exactly when the receiver is ``self``/``cls``
  (same class first); any other ``obj.method(...)`` falls back to
  class-hierarchy-analysis-without-types: an edge to *every* project
  method of that name.  That over-approximates — reachability may
  include code the runtime never calls — which is the right direction
  for a linter: false reachability costs a suppression with a written
  reason, missed reachability costs a corrupted cache.
* **Module-level code** is modelled as a ``<module>`` pseudo-function so
  import-time work participates.

Precision upgrades (type-informed receiver resolution) are tracked in
ROADMAP follow-ups; every resolution decision is local to this module.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.engine import LintContext, ModuleInfo, dotted_name, walk_scope

__all__ = ["CallGraph", "FunctionNode", "build_call_graph"]

#: Pseudo-function name holding a module's top-level statements.
MODULE_BODY = "<module>"


@dataclass
class FunctionNode:
    """One function/method (or module body) and its outgoing calls."""

    qualname: str  # repro.mod.Class.method / repro.mod.func / repro.mod.<module>
    module: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]
    #: Fully-resolved dotted targets of every call expression inside
    #: (project or external — external names drive banned-call checks).
    resolved_calls: List[Tuple[str, ast.Call]] = field(default_factory=list)
    #: Bare method names of calls whose receiver could not be resolved.
    unresolved_methods: List[Tuple[str, ast.Call]] = field(default_factory=list)


@dataclass
class CallGraph:
    """Function index + edges + reachability helpers over one context."""

    functions: Dict[str, FunctionNode]
    #: method name -> qualnames of every project method with that name
    #: (the CHA fallback table).
    methods_by_name: Dict[str, List[str]]

    def callees(self, qualname: str) -> Set[str]:
        """Project functions one hop from ``qualname`` (over-approximate)."""
        node = self.functions.get(qualname)
        if node is None:
            return set()
        out: Set[str] = set()
        for target, _ in node.resolved_calls:
            if target in self.functions:
                out.add(target)
            else:
                # Calling a class constructs it: edge into __init__.
                init = f"{target}.__init__"
                if init in self.functions:
                    out.add(init)
        for name, _ in node.unresolved_methods:
            out.update(self.methods_by_name.get(name, ()))
        return out

    def reachable_from(self, seeds: Iterable[str]) -> Dict[str, Optional[str]]:
        """BFS closure over callees; maps each reached qualname to its
        predecessor (None for seeds) so findings can explain the path."""
        origin: Dict[str, Optional[str]] = {}
        queue: deque = deque()
        for seed in seeds:
            if seed in self.functions and seed not in origin:
                origin[seed] = None
                queue.append(seed)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.callees(current)):
                if callee not in origin:
                    origin[callee] = current
                    queue.append(callee)
        return origin

    def chain(self, origin: Dict[str, Optional[str]], qualname: str) -> List[str]:
        """Seed-to-function path recorded by :meth:`reachable_from`."""
        path = [qualname]
        seen = {qualname}
        while True:
            parent = origin.get(path[-1])
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
        path.reverse()
        return path


def _import_bindings(module: ModuleInfo) -> Dict[str, str]:
    """Local name -> dotted target for every import in one module."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                bindings[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # Relative imports: resolve against this module's package.
                package_parts = module.name.split(".")
                # level=1 strips the module name itself, deeper levels walk up.
                base = package_parts[: len(package_parts) - max(node.level, 1)]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return bindings


def resolve_chain(chain: str, bindings: Dict[str, str]) -> str:
    """Expand a dotted call chain through the module's import bindings."""
    head, _, rest = chain.partition(".")
    target = bindings.get(head)
    if target is None:
        return chain
    return f"{target}.{rest}" if rest else target


def _enclosing_class(module: ModuleInfo, node: ast.AST) -> Optional[str]:
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current.name
        current = module.parents.get(current)
    return None


def _collect_calls(
    module: ModuleInfo,
    owner: FunctionNode,
    body_nodes: Iterable[ast.AST],
    bindings: Dict[str, str],
    class_name: Optional[str],
    local_functions: Set[str],
) -> None:
    for node in walk_scope(body_nodes):
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is None:
                continue
            head = chain.split(".", 1)[0]
            if head in ("self", "cls") and class_name is not None:
                method = chain.split(".")[-1]
                same_class = f"{module.name}.{class_name}.{method}"
                owner.resolved_calls.append((same_class, node))
                continue
            if head in bindings or "." not in chain:
                # Import-resolved (even when the binding is the identity,
                # e.g. `import time` -> time.time), or a bare name: local
                # function, builtin, or imported symbol.
                resolved = resolve_chain(chain, bindings)
                if "." not in resolved and resolved in local_functions:
                    resolved = f"{module.name}.{resolved}"
                owner.resolved_calls.append((resolved, node))
            else:
                # obj.method(...) with an unresolvable receiver — feed
                # the CHA fallback with the method name.
                owner.unresolved_methods.append((chain.split(".")[-1], node))


def build_call_graph(ctx: LintContext) -> CallGraph:
    """Index every function and its calls across the whole context."""
    functions: Dict[str, FunctionNode] = {}
    methods_by_name: Dict[str, List[str]] = {}

    for module in ctx.modules.values():
        bindings = _import_bindings(module)
        local_functions = {
            child.name
            for child in module.tree.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }

        # Module body pseudo-function: top-level statements minus defs.
        body = FunctionNode(
            qualname=f"{module.name}.{MODULE_BODY}",
            module=module.name,
            node=module.tree,
        )
        top_level = [
            child
            for child in module.tree.body
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        _collect_calls(module, body, top_level, bindings, None, local_functions)
        functions[body.qualname] = body

        def walk(scope: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(scope):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{child.name}"
                    fn = FunctionNode(qualname=qual, module=module.name, node=child)
                    _collect_calls(
                        module,
                        fn,
                        child.body,
                        bindings,
                        _enclosing_class(module, child),
                        local_functions,
                    )
                    functions[qual] = fn
                    cls = _enclosing_class(module, child)
                    if cls is not None:
                        methods_by_name.setdefault(child.name, []).append(qual)
                    walk(child, qual)
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}.{child.name}")
                else:
                    walk(child, prefix)

        walk(module.tree, module.name)

    for names in methods_by_name.values():
        names.sort()
    return CallGraph(functions=functions, methods_by_name=methods_by_name)
