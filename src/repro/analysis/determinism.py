"""Rule ``determinism``: fingerprinted code paths must be reproducible.

The entire cache substrate assumes that the same inputs produce the
same bytes: content fingerprints key persistent entries, manifests are
merged by exactly-once point accounting, and CI asserts warm runs are
byte-identical to cold ones.  Any wall-clock read, unseeded RNG draw,
filesystem-order iteration, or set-order iteration on a fingerprinted
path silently breaks all of that.

Scope is computed, not grepped: the rule seeds a call-graph walk
(:mod:`repro.analysis.callgraph`) with

* every function in the model packages (``repro.nvsim``,
  ``repro.cachesim``) and in ``repro.runtime.fingerprint`` itself, and
* every function that directly calls the fingerprint API — computing a
  cache key marks a function as feeding the cache substrate;

then flags banned constructs in everything transitively reachable.
Wall-clock uses that are genuinely required (e.g. lease expiry against
file mtimes) carry an inline ``# repro: allow[determinism] reason``.

``time.monotonic``/``perf_counter`` are deliberately allowed — duration
measurement does not influence cached content — as are seeded RNGs
(``random.Random(seed)``, ``np.random.default_rng(seed)``).  Directory
listings are fine once wrapped in an order-neutral consumer
(``sorted``/``len``/``set``/``min``...).
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Tuple

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.engine import (
    Finding,
    LintContext,
    ModuleInfo,
    Rule,
    dotted_name,
    register_rule,
    walk_scope,
)

__all__ = ["DeterminismRule"]

#: Packages whose every function is a reachability seed.
DEFAULT_ROOT_PACKAGES: Tuple[str, ...] = (
    "repro.nvsim",
    "repro.cachesim",
    "repro.runtime.fingerprint",
)

#: Calling anything from this module makes the caller a seed.
DEFAULT_FINGERPRINT_MODULE = "repro.runtime.fingerprint"

#: Fully-resolved call targets that read clocks or entropy.
BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "entropy read",
    "uuid.uuid1": "entropy/clock read",
    "uuid.uuid4": "entropy read",
    "secrets.token_bytes": "entropy read",
    "secrets.token_hex": "entropy read",
    "secrets.token_urlsafe": "entropy read",
}

#: Module-level :mod:`random` functions draw from the shared unseeded RNG.
_GLOBAL_RANDOM_FNS = (
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "getrandbits",
    "randbytes",
)
BANNED_CALLS.update({f"random.{fn}": "unseeded global RNG draw" for fn in _GLOBAL_RANDOM_FNS})
BANNED_CALLS.update(
    {f"numpy.random.{fn}": "unseeded global RNG draw" for fn in _GLOBAL_RANDOM_FNS}
)
BANNED_CALLS.update(
    {
        "numpy.random.rand": "unseeded global RNG draw",
        "numpy.random.randn": "unseeded global RNG draw",
        "numpy.random.permutation": "unseeded global RNG draw",
    }
)

#: Listing calls that yield entries in filesystem order.
LISTING_CALLS = {"os.listdir", "os.scandir"}
LISTING_METHODS = {"iterdir", "glob", "rglob"}

#: Wrapping a listing in one of these makes iteration order irrelevant.
ORDER_NEUTRAL_WRAPPERS = {"sorted", "len", "set", "frozenset", "any", "all", "max", "min", "next"}


def _is_setlike(node: ast.AST) -> bool:
    """Does this expression evaluate to a set (iteration order undefined)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        if chain in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return _is_setlike(node.left) or _is_setlike(node.right)
    return False


def _wrapped_order_neutral(module: ModuleInfo, node: ast.AST) -> bool:
    """Is ``node`` consumed (within its statement) by an order-neutral
    call like ``sorted(...)`` or ``len(...)``?"""
    current = module.parents.get(node)
    while current is not None and not isinstance(current, ast.stmt):
        if isinstance(current, ast.Call):
            chain = dotted_name(current.func)
            if chain in ORDER_NEUTRAL_WRAPPERS:
                return True
        current = module.parents.get(current)
    return False


@register_rule
class DeterminismRule(Rule):
    """No clocks, entropy, or unordered iteration on fingerprinted paths."""

    id = "determinism"
    summary = (
        "wall-clock, unseeded RNG, unsorted directory listing, and "
        "set-order iteration are banned in code reachable from "
        "fingerprinted paths"
    )

    def __init__(
        self,
        root_packages: Sequence[str] = DEFAULT_ROOT_PACKAGES,
        fingerprint_module: str = DEFAULT_FINGERPRINT_MODULE,
    ) -> None:
        self.root_packages = tuple(root_packages)
        self.fingerprint_module = fingerprint_module

    # -- seeding -----------------------------------------------------------

    def _is_root_module(self, module_name: str) -> bool:
        for pkg in self.root_packages:
            if module_name == pkg or module_name.startswith(pkg + "."):
                return True
        return False

    def _seeds(self, graph: CallGraph) -> list[str]:
        prefix = self.fingerprint_module + "."
        seeds = []
        for qualname, fn in graph.functions.items():
            if self._is_root_module(fn.module):
                seeds.append(qualname)
                continue
            if any(target.startswith(prefix) for target, _ in fn.resolved_calls):
                seeds.append(qualname)
        return sorted(seeds)

    # -- checking ----------------------------------------------------------

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        graph = build_call_graph(ctx)
        origin = graph.reachable_from(self._seeds(graph))
        modules_by_name = ctx.modules

        for qualname in sorted(origin):
            fn = graph.functions[qualname]
            module = modules_by_name.get(fn.module)
            if module is None:
                continue
            chain = graph.chain(origin, qualname)
            via = "" if len(chain) == 1 else f" (reachable from fingerprinted root {chain[0]})"
            yield from self._check_function(ctx, module, graph, qualname, via)

    def _check_function(
        self,
        ctx: LintContext,
        module: ModuleInfo,
        graph: CallGraph,
        qualname: str,
        via: str,
    ) -> Iterator[Finding]:
        fn = graph.functions[qualname]
        for target, call in fn.resolved_calls:
            reason = BANNED_CALLS.get(target)
            if reason is not None:
                yield ctx.finding(
                    self.id,
                    module,
                    call,
                    f"{target}() in {qualname} is nondeterministic ({reason}){via}",
                )
            elif target == "numpy.random.default_rng" and not (call.args or call.keywords):
                yield ctx.finding(
                    self.id,
                    module,
                    call,
                    f"numpy.random.default_rng() without a seed in {qualname} "
                    f"draws OS entropy{via}",
                )
            elif target in LISTING_CALLS and not _wrapped_order_neutral(module, call):
                yield ctx.finding(
                    self.id,
                    module,
                    call,
                    f"{target}() in {qualname} yields filesystem order — "
                    f"wrap in sorted(...){via}",
                )
        for method, call in fn.unresolved_methods:
            if method in LISTING_METHODS and not _wrapped_order_neutral(module, call):
                yield ctx.finding(
                    self.id,
                    module,
                    call,
                    f".{method}() in {qualname} yields filesystem order — "
                    f"wrap in sorted(...){via}",
                )
        yield from self._check_set_iteration(ctx, module, fn.node, qualname, via)

    def _check_set_iteration(
        self,
        ctx: LintContext,
        module: ModuleInfo,
        scope: ast.AST,
        qualname: str,
        via: str,
    ) -> Iterator[Finding]:
        own_body = [
            n
            for n in scope.body
            if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        for node in walk_scope(own_body):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_setlike(it) and not _wrapped_order_neutral(module, it):
                    yield ctx.finding(
                        self.id,
                        module,
                        it,
                        f"iteration over a set in {qualname} has undefined "
                        f"order — iterate sorted(...){via}",
                    )
