"""Rule ``schema-drift``: cache-feeding source may not change tag-silently.

The persistent caches are only safe because every schema tag versions
the code that produces its payloads: bump the tag and every stale entry
becomes unreachable; *forget* to bump it and a warm cache silently
serves results computed by old semantics.  Runtime can't detect the
forgotten bump — by construction the fingerprints still match.  This
rule makes it a PR-time failure:

* :data:`repro.runtime.fingerprint.SCHEMA_TAG_SOURCES` declares which
  modules feed each tag;
* ``repro/analysis/drift_pins.json`` (committed) pins each set's content
  digest next to the tag value it was pinned against;
* the rule recomputes the digests: a moved digest under an unmoved tag
  is the violation; a moved tag or module set just needs a re-pin
  (``nvmexplorer lint --update-pins``).

Tag values are read *statically* from the defining module's AST (a
``NAME = "literal"`` assignment), so the check works on any source tree
without importing it.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterator, Mapping, Optional, Tuple, Union

from repro.analysis.engine import Finding, LintContext, Rule, register_rule

__all__ = ["SchemaDriftRule", "compute_pins", "load_pins", "write_pins"]

PINS_SCHEMA = "drift-pins-v1"  # repro: allow[schema-drift] lint-tool file format, not a runtime cache payload

#: The committed pin file, shipped inside the package so the ratchet
#: travels with the source it describes.
DEFAULT_PINS_PATH = Path(__file__).resolve().parent / "drift_pins.json"

#: Names that look like cache schema tags; any assignment matching this
#: that the registry does not cover is itself a finding (a new cache
#: layer must opt into the ratchet).
_TAG_NAME_HINTS = ("SCHEMA_TAG", "_SCHEMA", "SCHEMA_")


def _looks_like_tag(name: str) -> bool:
    return name.isupper() and any(hint in name for hint in _TAG_NAME_HINTS)


def _static_tag_assignment(tree: ast.Module, name: str) -> Optional[Tuple[int, str]]:
    """``(line, value)`` of a module-level ``NAME = "literal"``."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        else:
            continue
        if (
            name in targets
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            return node.lineno, node.value.value
    return None


def _registry(ctx: LintContext) -> Mapping[str, tuple]:
    """The tag registry, parsed statically from the linted tree.

    Reads ``SCHEMA_TAG_SOURCES`` out of the fingerprint module's AST via
    ``ast.literal_eval``, falling back to the imported registry when the
    linted tree has none (e.g. fixture trees in tests).
    """
    module = ctx.modules.get("repro.runtime.fingerprint")
    if module is not None:
        for node in module.tree.body:
            value = None
            if isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names = [node.target.id]
                value = node.value
            else:
                continue
            if "SCHEMA_TAG_SOURCES" in names and value is not None:
                try:
                    parsed = ast.literal_eval(value)
                except (ValueError, SyntaxError):
                    continue
                if isinstance(parsed, dict):
                    return parsed
    from repro.runtime.fingerprint import SCHEMA_TAG_SOURCES

    return SCHEMA_TAG_SOURCES


def compute_pins(
    package_root: Union[str, Path],
    registry: Optional[Mapping[str, tuple]] = None,
) -> dict:
    """Recompute every tag's pin entry against one source tree.

    ``package_root`` is the directory *containing* the ``repro`` package
    (i.e. the lint root's parent).  Tag values come from the defining
    module's AST.
    """
    from repro.runtime.fingerprint import tag_source_digest

    if registry is None:
        from repro.runtime.fingerprint import SCHEMA_TAG_SOURCES as registry

    package_root = Path(package_root)
    pins: dict = {}
    for name in sorted(registry):
        defining_module, sources = registry[name]
        module_path = package_root / (Path(*defining_module.split(".")).as_posix() + ".py")
        tag_value = None
        if module_path.is_file():
            found = _static_tag_assignment(
                ast.parse(module_path.read_text(encoding="utf-8")), name
            )
            if found is not None:
                tag_value = found[1]
        pins[name] = {
            "tag": tag_value,
            "digest": tag_source_digest(tuple(sources), package_root),
            "sources": sorted(sources),
        }
    return pins


def load_pins(path: Union[str, Path]) -> Optional[dict]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != PINS_SCHEMA:
        return None
    pins = payload.get("pins")
    return pins if isinstance(pins, dict) else None


def write_pins(path: Union[str, Path], pins: dict) -> None:
    """Atomically (tmp + replace) persist recomputed pins."""
    from repro.runtime.cache import atomic_write_text

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path,
        json.dumps({"schema": PINS_SCHEMA, "pins": pins}, indent=2, sort_keys=True) + "\n",
    )


@register_rule
class SchemaDriftRule(Rule):
    """Pinned source digests must move together with their schema tags."""

    id = "schema-drift"
    summary = (
        "cache-feeding module sets are digest-pinned next to their "
        "schema tags; source drift without a tag bump fails"
    )

    def __init__(
        self,
        pins_path: Union[str, Path] = DEFAULT_PINS_PATH,
        registry: Optional[Mapping[str, tuple]] = None,
    ) -> None:
        self.pins_path = Path(pins_path)
        self.registry = registry

    def _anchor(self, ctx: LintContext, defining_module: str, name: str):
        """``(module_info, line)`` of the tag assignment, best effort."""
        module = ctx.modules.get(defining_module)
        if module is None:
            return None, 1
        found = _static_tag_assignment(module.tree, name)
        return module, (found[0] if found else 1)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        registry = self.registry if self.registry is not None else _registry(ctx)
        package_root = ctx.root.parent
        try:
            current = compute_pins(package_root, registry)
        except FileNotFoundError as exc:
            fingerprint = ctx.modules.get("repro.runtime.fingerprint")
            if fingerprint is not None:
                yield ctx.finding(
                    self.id,
                    fingerprint,
                    1,
                    f"schema-tag registry names missing source: {exc}",
                )
            return
        pinned = load_pins(self.pins_path)

        for name in sorted(registry):
            defining_module, _ = registry[name]
            module, line = self._anchor(ctx, defining_module, name)
            if module is None:
                continue
            entry = current[name]
            pin = (pinned or {}).get(name)
            if pin is None:
                yield ctx.finding(
                    self.id,
                    module,
                    line,
                    f"{name} has no pinned source digest — run "
                    "`nvmexplorer lint --update-pins` and commit "
                    f"{self.pins_path.name}",
                )
                continue
            tag_moved = entry["tag"] != pin.get("tag")
            sources_moved = sorted(entry["sources"]) != sorted(pin.get("sources", []))
            if tag_moved or sources_moved:
                what = "tag value" if tag_moved else "source module set"
                yield ctx.finding(
                    self.id,
                    module,
                    line,
                    f"{name} {what} changed since its pin — re-pin via "
                    "`nvmexplorer lint --update-pins` (a tag bump already "
                    "invalidated the cache; the pin just records it)",
                )
            elif entry["digest"] != pin.get("digest"):
                yield ctx.finding(
                    self.id,
                    module,
                    line,
                    f"source feeding {name} changed without a tag bump "
                    f"(digest {entry['digest'][:12]}… != pinned "
                    f"{str(pin.get('digest'))[:12]}…) — cached results may "
                    f"no longer match fresh runs; bump {name} if semantics "
                    "changed, or re-pin via `nvmexplorer lint --update-pins` "
                    "if not",
                )

        # A tag-looking constant the registry does not cover is a new
        # cache layer dodging the ratchet.
        for module in ctx.modules.values():
            for node in module.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and _looks_like_tag(target.id)
                        and target.id not in registry
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        yield ctx.finding(
                            self.id,
                            module,
                            node,
                            f"{target.id} looks like a cache schema tag but "
                            "is not covered by SCHEMA_TAG_SOURCES — add it "
                            "to the drift ratchet (repro.runtime."
                            "fingerprint) or rename it",
                        )
