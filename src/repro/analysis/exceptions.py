"""Rule ``except-safety``: runtime/service code must not eat interrupts.

The suite driver's resumability contract (SIGINT/SIGTERM land as
``KeyboardInterrupt``, partial manifests are written, exit code 130)
only works if no layer below it swallows the interrupt.  Two shapes
break it:

* a bare ``except:`` — catches ``KeyboardInterrupt`` and ``SystemExit``
  along with everything else;
* an ``except BaseException:`` / ``except KeyboardInterrupt:`` handler
  that never re-raises — cleanup handlers are fine (``tmp.unlink();
  raise`` is the house pattern), silent swallowing is not.

Scope is the runtime and service layers, where an eaten interrupt
corrupts the crash-recovery story; study/viz code may legitimately
catch broadly for reporting.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.engine import Finding, LintContext, Rule, register_rule

__all__ = ["ExceptSafetyRule"]

#: Package prefixes whose modules are checked.
DEFAULT_SCOPES = ("repro.runtime", "repro.service")

#: Exception names whose handlers must re-raise.
_INTERRUPT_NAMES = {"BaseException", "KeyboardInterrupt", "SystemExit"}


def _names_in_handler_type(node) -> set:
    """Exception class names an ``except`` clause catches (best effort)."""
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        out = set()
        for element in node.elts:
            out |= _names_in_handler_type(element)
        return out
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    return set()


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body (outside nested handlers) raise again?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@register_rule
class ExceptSafetyRule(Rule):
    """Bare excepts and swallowed interrupts in runtime/service code."""

    id = "except-safety"
    summary = (
        "no bare `except:`; BaseException/KeyboardInterrupt handlers in "
        "runtime/service code must re-raise"
    )

    def __init__(self, scopes: Sequence[str] = DEFAULT_SCOPES) -> None:
        self.scopes = tuple(scopes)

    def _in_scope(self, module_name: str) -> bool:
        for scope in self.scopes:
            if module_name == scope or module_name.startswith(scope + "."):
                return True
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.modules.values():
            if not self._in_scope(module.name):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield ctx.finding(
                        self.id,
                        module,
                        node,
                        "bare `except:` catches KeyboardInterrupt/SystemExit "
                        "— name the exceptions (or BaseException with a "
                        "re-raise)",
                    )
                    continue
                caught = _names_in_handler_type(node.type)
                if caught & _INTERRUPT_NAMES and not _reraises(node):
                    names = ", ".join(sorted(caught & _INTERRUPT_NAMES))
                    yield ctx.finding(
                        self.id,
                        module,
                        node,
                        f"handler catches {names} without re-raising — "
                        "interrupts must propagate for the resumable-"
                        "manifest contract (cleanup handlers end in "
                        "`raise`)",
                    )
