"""``nvmexplorer lint`` — run the invariant linter over a source tree.

Usage (via the package CLI)::

    nvmexplorer lint [ROOT] [--json] [--baseline PATH]
                     [--write-baseline] [--update-pins] [--list-rules]

``ROOT`` defaults to the installed ``repro`` package directory, so a
bare ``nvmexplorer lint`` checks the code that is actually on the
path.  Exit codes mirror ``nvmexplorer fsck``: 0 when the tree is clean
(every finding suppressed or baselined), 1 when violations stand, 2 on
usage errors.

The baseline (``repro/analysis/lint_baseline.json``, committed) is a
ratchet, not a dumping ground: entries match findings by
``(rule, path, stripped source line)`` so they survive unrelated line
drift, stale entries are reported (non-fatally) for pruning, and
``--write-baseline`` rewrites the file from the current findings.
``--update-pins`` re-pins the schema-tag source digests after a
reviewed change (see :mod:`repro.analysis.drift`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis import drift
from repro.analysis.engine import (
    Finding,
    LintResult,
    registered_rules,
    run_lint,
)

__all__ = ["main"]

BASELINE_SCHEMA = "lint-baseline-v1"  # repro: allow[schema-drift] lint-tool file format, not a runtime cache payload

#: The committed baseline, shipped inside the package like the pins.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "lint_baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package — what a bare ``lint`` checks."""
    return Path(__file__).resolve().parents[1]


def load_baseline(path: Path) -> Optional[List[dict]]:
    """The baseline entries, or None when the file is absent/invalid."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        return None
    entries = payload.get("findings")
    return entries if isinstance(entries, list) else None


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    entries = sorted(
        ({"rule": f.rule, "path": f.path, "context": f.context} for f in findings),
        key=lambda e: (e["path"], e["rule"], e["context"]),
    )
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    result: LintResult, entries: Optional[List[dict]]
) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split findings into (active, baselined) and report stale entries.

    Each baseline entry absorbs at most as many findings as it appears
    (duplicates in the file allow duplicates in the tree); entries that
    matched nothing come back as *stale* for pruning.
    """
    if not entries:
        return list(result.findings), [], []
    pool: dict = {}
    for entry in entries:
        key = (
            str(entry.get("rule", "")),
            str(entry.get("path", "")),
            str(entry.get("context", "")),
        )
        pool[key] = pool.get(key, 0) + 1
    active: List[Finding] = []
    baselined: List[Finding] = []
    for finding in result.findings:
        key = finding.baseline_key()
        if pool.get(key, 0) > 0:
            pool[key] -= 1
            baselined.append(finding)
        else:
            active.append(finding)
    stale = [
        {"rule": rule, "path": path, "context": context}
        for (rule, path, context), count in sorted(pool.items())
        if count > 0
        for _ in range(count)
    ]
    return active, baselined, stale


def _print_pretty(
    active: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[dict],
    result: LintResult,
    root: Path,
) -> None:
    for finding in active:
        print(finding.format())
    for finding in result.unused_suppressions:
        print(f"{finding.format()}  (informational)")
    for entry in stale:
        print(
            f"stale baseline entry: [{entry['rule']}] {entry['path']}: "
            f"{entry['context'][:60]!r}  (prune with --write-baseline)"
        )
    counted: Set[str] = {f.rule for f in active}
    print(
        f"lint: {root}: {len(active)} violation(s) "
        f"[{', '.join(sorted(counted)) if counted else '-'}], "
        f"{len(result.suppressed)} suppressed, {len(baselined)} baselined, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="nvmexplorer lint",
        description="statically check the repo's runtime invariants",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable report on stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: repro/analysis/lint_baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--update-pins",
        action="store_true",
        help="re-pin the schema-tag source digests (see [schema-drift])",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    try:
        args = parser.parse_args(list(argv) if argv is not None else None)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2

    if args.list_rules:
        for rule_id, cls in sorted(registered_rules().items()):
            print(f"{rule_id:16s} {cls.summary}")
        return 0

    root = Path(args.root).resolve() if args.root else default_root()
    if not root.is_dir():
        print(f"lint: root {root} is not a directory", file=sys.stderr)
        return 2

    if args.update_pins:
        pins = drift.compute_pins(root.parent)
        drift.write_pins(drift.DEFAULT_PINS_PATH, pins)
        print(
            f"lint: re-pinned {len(pins)} schema tag(s) -> "
            f"{drift.DEFAULT_PINS_PATH}"
        )

    try:
        result = run_lint(root)
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline).resolve() if args.baseline else DEFAULT_BASELINE_PATH
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"lint: wrote {len(result.findings)} baseline entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} -> {baseline_path}"
        )
        return 0

    entries = None if args.no_baseline else load_baseline(baseline_path)
    active, baselined, stale = apply_baseline(result, entries)

    if args.as_json:
        payload = {
            "root": str(root),
            "violations": [f.to_dict() for f in active],
            "baselined": [f.to_dict() for f in baselined],
            "suppressed": [{**f.to_dict(), "reason": s.reason} for f, s in result.suppressed],
            "unused_suppressions": [f.to_dict() for f in result.unused_suppressions],
            "stale_baseline": stale,
            "clean": not active,
        }
        print(json.dumps(payload, indent=2))
    else:
        _print_pretty(active, baselined, stale, result, root)
    return 0 if not active else 1


if __name__ == "__main__":
    raise SystemExit(main())
