"""Rule ``atomic-write``: persistent stores write tmp + ``os.replace``.

Every durable artifact in the cache/queue/manifest layer is written by
staging a unique temp file and atomically renaming it into place
(:func:`repro.runtime.cache._tmp_path_for` + ``os.replace``), so a
crashed writer can never leave a truncated entry that a later run (or
fsck) mistakes for data.  A bare ``open(path, "w")`` / ``write_text`` /
``write_bytes`` in those modules silently reintroduces the torn-write
window that PR 7's crash-recovery work closed.

The check is function-local: a write call is compliant when its
enclosing function also renames something into place (``os.replace`` /
``os.rename`` — the staged-directory pattern in the work queue counts)
or delegates to one of the atomic helpers.  Read-only opens and
explicit temp-staging writes therefore pass without annotation.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.callgraph import _import_bindings, resolve_chain
from repro.analysis.engine import (
    Finding,
    LintContext,
    ModuleInfo,
    Rule,
    dotted_name,
    enclosing_function,
    register_rule,
    walk_scope,
)

__all__ = ["AtomicWriteRule"]

#: Modules that own persistent state (caches, manifests, queue, stamps).
DEFAULT_PERSISTENCE_MODULES = (
    "repro.runtime.cache",
    "repro.runtime.shard",
    "repro.runtime.schedule",
    "repro.runtime.fsck",
    "repro.service.warm",
)

#: Calling any of these inside the function marks it atomic-compliant.
_RENAME_CALLS = {"os.replace", "os.rename"}
_ATOMIC_HELPERS = {"atomic_write_text", "atomic_write_json", "_write_json"}

_WRITE_METHODS = {"write_text", "write_bytes"}


def _open_write_mode(call: ast.Call) -> bool:
    """Is this ``open(...)`` call opening for writing?"""
    mode = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = call.args[1].value
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            mode = keyword.value.value
    return isinstance(mode, str) and any(c in mode for c in "wax+")


@register_rule
class AtomicWriteRule(Rule):
    """Bare writes in persistence modules bypass tmp + ``os.replace``."""

    id = "atomic-write"
    summary = (
        "persistent-store modules must stage writes to a temp file and "
        "os.replace() them into place"
    )

    def __init__(self, modules: Sequence[str] = DEFAULT_PERSISTENCE_MODULES) -> None:
        self.modules = tuple(modules)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for name in self.modules:
            module = ctx.modules.get(name)
            if module is None:
                continue
            yield from self._check_module(ctx, module)

    def _check_module(self, ctx: LintContext, module: ModuleInfo) -> Iterator[Finding]:
        bindings = _import_bindings(module)
        compliant_fns = set()  # functions that rename or call a helper
        writes = []  # (function-or-None, call node, description)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            resolved = resolve_chain(chain, bindings)
            owner = enclosing_function(module, node)
            leaf = chain.split(".")[-1]
            if resolved in _RENAME_CALLS or leaf in _ATOMIC_HELPERS:
                compliant_fns.add(owner)
            elif leaf in _WRITE_METHODS and "." in chain:
                writes.append((owner, node, f".{leaf}()"))
            elif resolved == "open" and _open_write_mode(node):
                writes.append((owner, node, 'open(..., "w")'))

        for owner, call, description in writes:
            if owner in compliant_fns:
                continue
            where = owner.name if owner is not None else "module level"
            yield ctx.finding(
                self.id,
                module,
                call,
                f"bare {description} in {where} bypasses the tmp + "
                "os.replace discipline — stage to a temp path "
                "(_tmp_path_for) and os.replace() it into place, or use an "
                "atomic_write_* helper",
            )
