"""The eNVM survey database (Section III-A).

The paper compiles 122 ISSCC / IEDM / VLSI publications from 2016-2020 into
a per-technology database of reported cell and array characteristics.  This
module reproduces that database: a set of curated entries for the
publications the paper cites with specific numbers, plus deterministic
synthesized entries that fill out each technology class to the surveyed
publication counts, sampled inside the curated electrical envelopes
(:mod:`repro.cells.envelopes`).

The database drives three artifacts:

* Figure 1 — publication counts per technology per year
  (:func:`publication_counts`).
* Table I — per-technology parameter ranges (:func:`parameter_ranges`).
* The tentpole construction — density extremes per technology
  (:mod:`repro.cells.tentpole`).
"""

from __future__ import annotations

import math
import random
from functools import lru_cache
from typing import Iterable, Optional, Sequence

from repro.cells.base import SurveyEntry, TechnologyClass, TechnologyRange
from repro.cells.envelopes import ENVELOPES, ElectricalEnvelope

VENUES: tuple[str, ...] = ("ISSCC", "IEDM", "VLSI")
SURVEY_YEARS: tuple[int, ...] = (2016, 2017, 2018, 2019, 2020)

#: Publication counts per technology per survey year.  The totals (122) and
#: the shape — RRAM and STT dominant and steady, ferroelectric technologies
#: (FeFET/FeRAM) growing — reproduce Figure 1.
PUBLICATION_COUNTS: dict[TechnologyClass, dict[int, int]] = {
    TechnologyClass.RRAM: {2016: 9, 2017: 8, 2018: 7, 2019: 8, 2020: 8},
    TechnologyClass.STT: {2016: 7, 2017: 6, 2018: 7, 2019: 8, 2020: 7},
    TechnologyClass.PCM: {2016: 3, 2017: 4, 2018: 2, 2019: 2, 2020: 3},
    TechnologyClass.FEFET: {2016: 2, 2017: 3, 2018: 2, 2019: 4, 2020: 6},
    TechnologyClass.SOT: {2016: 1, 2017: 1, 2018: 1, 2019: 2, 2020: 2},
    TechnologyClass.FERAM: {2016: 0, 2017: 1, 2018: 1, 2019: 1, 2020: 2},
    TechnologyClass.CTT: {2016: 1, 2017: 1, 2018: 1, 2019: 1, 2020: 0},
}

_SEED = 0x5EED_E0F2

# --- curated entries: the publications the paper cites with numbers -------

def _curated_entries() -> list[SurveyEntry]:
    ns, us, ms = 1e-9, 1e-6, 1e-3
    mb = 8 * 1024 * 1024  # megabyte in bits... (capacities reported in Mb)
    mbit = 1024 * 1024
    return [
        # STT
        SurveyEntry(
            name="isscc2018-stt-1mb-2.8ns", tech_class=TechnologyClass.STT,
            year=2018, venue="ISSCC", node_nm=28, area_f2=40.0,
            read_latency=2.8 * ns, write_latency=10 * ns,
            read_energy_pj=0.3, write_energy_pj=1.2,
            endurance_cycles=1e12, retention_seconds=1e8,
            capacity_bits=1 * mbit, notes="single-cap offset-cancelled SA",
        ),
        SurveyEntry(
            name="isscc2020-stt-32mb-10ns", tech_class=TechnologyClass.STT,
            year=2020, venue="ISSCC", node_nm=22, area_f2=30.0,
            read_latency=10 * ns, write_latency=50 * ns,
            endurance_cycles=1e6, retention_seconds=10 * 365 * 86400.0,
            capacity_bits=32 * mbit, notes="embedded, 150C retention",
        ),
        SurveyEntry(
            name="iedm2019-stt-2ns-llc", tech_class=TechnologyClass.STT,
            year=2019, venue="IEDM", node_nm=22, area_f2=14.0,
            write_latency=2 * ns, write_energy_pj=0.6,
            endurance_cycles=1e15, notes="reliable 2ns writing for LLC",
        ),
        SurveyEntry(
            name="iedm2019-stt-1gb-28nm", tech_class=TechnologyClass.STT,
            year=2019, venue="IEDM", node_nm=28, area_f2=25.0,
            read_latency=19 * ns, write_latency=200 * ns,
            endurance_cycles=1e10, capacity_bits=1024 * mbit,
        ),
        SurveyEntry(
            name="vlsi2020-stt-14.7mb-mm2", tech_class=TechnologyClass.STT,
            year=2020, venue="VLSI", node_nm=28, area_f2=20.0,
            read_latency=5 * ns, notes="current-starved read path",
        ),
        SurveyEntry(
            name="iedm2016-stt-4gb-compact", tech_class=TechnologyClass.STT,
            year=2016, venue="IEDM", node_nm=90, area_f2=75.0,
            write_latency=30 * ns, endurance_cycles=1e10,
            capacity_bits=4096 * mbit, notes="worst-case density corner",
        ),
        # RRAM
        SurveyEntry(
            name="isscc2018-rram-n40-reference", tech_class=TechnologyClass.RRAM,
            year=2018, venue="ISSCC", node_nm=40, area_f2=30.0,
            read_latency=5 * ns, write_latency=100 * ns,
            read_energy_pj=0.2, write_energy_pj=2.0,
            read_voltage=0.3, write_voltage=2.0,
            endurance_cycles=1e5, retention_seconds=1e8,
            capacity_bits=int(256e3 * 44),
            notes="the paper's industry reference RRAM cell [29]",
        ),
        SurveyEntry(
            name="vlsi2019-rram-22ffl", tech_class=TechnologyClass.RRAM,
            year=2019, venue="VLSI", node_nm=22, area_f2=53.0,
            write_latency=10 * us, endurance_cycles=1e4,
            notes="least-dense surveyed RRAM (pessimistic corner)",
        ),
        SurveyEntry(
            name="isscc2019-rram-3.6mb-finfet", tech_class=TechnologyClass.RRAM,
            year=2019, venue="ISSCC", node_nm=22, area_f2=16.0,
            read_latency=5 * ns, notes="10.1 Mb/mm2, 5 ns sensing at 0.7 V",
        ),
        SurveyEntry(
            name="vlsi2016-rram-sub5nm-vertical", tech_class=TechnologyClass.RRAM,
            year=2016, venue="VLSI", node_nm=16, area_f2=4.0,
            write_latency=5 * ns, endurance_cycles=1e6,
            notes="densest surveyed RRAM (optimistic corner)",
        ),
        SurveyEntry(
            name="iedm2019-rram-1t4r-mlc", tech_class=TechnologyClass.RRAM,
            year=2019, venue="IEDM", node_nm=28, area_f2=24.0,
            mlc_demonstrated=True, notes="multiple bits per cell, gradual set",
        ),
        # PCM
        SurveyEntry(
            name="iedm2018-pcm-16mb-28nm-fdsoi", tech_class=TechnologyClass.PCM,
            year=2018, venue="IEDM", node_nm=28, area_f2=25.0,
            read_latency=15 * ns, write_latency=300 * ns,
            endurance_cycles=1e9, retention_seconds=1e10,
            capacity_bits=16 * mbit, notes="automotive micro-controller ePCM",
        ),
        SurveyEntry(
            name="iedm2016-pcm-128mb-doped", tech_class=TechnologyClass.PCM,
            year=2016, venue="IEDM", node_nm=40, area_f2=40.0,
            write_latency=30 * us, endurance_cycles=1e5,
            capacity_bits=128 * mbit, notes="pessimistic density + write corner",
        ),
        SurveyEntry(
            name="iedm2018-pcm-40nm-logic", tech_class=TechnologyClass.PCM,
            year=2018, venue="IEDM", node_nm=40, area_f2=28.0,
            read_latency=40 * ns, write_latency=1 * us,
        ),
        SurveyEntry(
            name="vlsi2020-pcm-mlc-crosspoint", tech_class=TechnologyClass.PCM,
            year=2020, venue="VLSI", node_nm=28, area_f2=25.0,
            mlc_demonstrated=True, notes="no-verification MLC OTS-PCM",
        ),
        # FeFET
        SurveyEntry(
            name="iedm2017-fefet-22fdsoi", tech_class=TechnologyClass.FEFET,
            year=2017, venue="IEDM", node_nm=22, area_f2=2.0,
            write_latency=100 * ns, endurance_cycles=1e5,
            notes="super-low-power embedded FeFET; densest corner",
        ),
        SurveyEntry(
            name="iedm2016-fefet-28hkmg", tech_class=TechnologyClass.FEFET,
            year=2016, venue="IEDM", node_nm=28, area_f2=103.0,
            write_latency=1.3 * us, endurance_cycles=1e5,
            notes="least-dense FeFET corner",
        ),
        SurveyEntry(
            name="iedm2019-fefet-mlc-laminate", tech_class=TechnologyClass.FEFET,
            year=2019, venue="IEDM", node_nm=28, area_f2=40.0,
            mlc_demonstrated=True, notes="laminated HSO/HZO MLC FeFET",
        ),
        SurveyEntry(
            name="vlsi2020-fefet-variation-model", tech_class=TechnologyClass.FEFET,
            year=2020, venue="VLSI", node_nm=22, area_f2=16.0,
            notes="comprehensive variability model (drives MLC fault rates)",
        ),
        # SOT
        SurveyEntry(
            name="vlsi2016-sot-subns", tech_class=TechnologyClass.SOT,
            year=2016, venue="VLSI", node_nm=1000, area_f2=20.0,
            write_latency=0.35 * ns, notes="sub-ns three-terminal switching",
        ),
        SurveyEntry(
            name="iedm2019-sot-field-free", tech_class=TechnologyClass.SOT,
            year=2019, venue="IEDM", node_nm=55, area_f2=53.0,
            write_latency=0.35 * ns, endurance_cycles=1e12,
        ),
        # CTT
        SurveyEntry(
            name="vlsi2019-ctt-14nm-finfet", tech_class=TechnologyClass.CTT,
            year=2019, venue="VLSI", node_nm=14, area_f2=4.0,
            write_latency=60 * ms, endurance_cycles=1e6,
            notes="logic transistors as MTP memory",
        ),
        SurveyEntry(
            name="iedm2016-ctt-secure-mtp", tech_class=TechnologyClass.CTT,
            year=2016, venue="IEDM", node_nm=16, area_f2=12.0,
            write_latency=2.6, endurance_cycles=1e4,
        ),
        # FeRAM
        SurveyEntry(
            name="vlsi2020-feram-1t1c-hzo", tech_class=TechnologyClass.FERAM,
            year=2020, venue="VLSI", node_nm=40, area_f2=15.0,
            read_latency=14 * ns, write_latency=14 * ns,
            endurance_cycles=1e11, retention_seconds=1e5,
            notes="SoC-compatible HZO FeRAM",
        ),
        SurveyEntry(
            name="iedm2017-feram-si-doped", tech_class=TechnologyClass.FERAM,
            year=2017, venue="IEDM", node_nm=130, area_f2=40.0,
            write_latency=1 * us, endurance_cycles=1e10,
        ),
    ]


def _log_interp(lo: float, hi: float, t: float) -> float:
    """Log-space interpolation between two positive bounds."""
    if lo <= 0 or hi <= 0:
        return lo + (hi - lo) * t
    return math.exp(math.log(lo) + (math.log(hi) - math.log(lo)) * t)


def _sample_entry(
    rng: random.Random,
    tech: TechnologyClass,
    env: ElectricalEnvelope,
    year: int,
    index: int,
) -> SurveyEntry:
    """Synthesize one survey entry inside the technology's envelope.

    Position ``t`` in [0, 1] slides from the optimistic to the pessimistic
    corner; individual parameters get independent jitter so entries are not
    perfectly correlated (real publications trade parameters off against
    each other).  Roughly a quarter of secondary fields are left unreported
    to exercise the tentpole fill logic, like the grey cells of Table I.
    """
    t = rng.random()

    def corner(param: str, jitter: float = 0.25) -> float:
        opt, pess = getattr(env, param)
        tj = min(1.0, max(0.0, t + rng.uniform(-jitter, jitter)))
        return _log_interp(opt, pess, tj)

    venue = rng.choice(VENUES)
    node_lo, node_hi = env.node_range_nm
    node = int(round(_log_interp(node_lo, node_hi, rng.random())))

    area = corner("area_f2")
    read_pulse = corner("read_pulse")
    write_pulse = max(corner("set_pulse"), corner("reset_pulse"))
    read_v = corner("read_voltage")
    read_i = corner("read_current")
    write_v = corner("write_voltage")
    write_i = 0.5 * (corner("set_current") + corner("reset_current"))

    def maybe(value: float, p_report: float = 0.75) -> Optional[float]:
        return value if rng.random() < p_report else None

    return SurveyEntry(
        name=f"{venue.lower()}{year}-{tech.value.lower()}-{index:02d}",
        tech_class=tech,
        year=year,
        venue=venue,
        node_nm=node,
        area_f2=area,
        read_latency=maybe(read_pulse * 2.0),
        write_latency=maybe(write_pulse),
        read_energy_pj=maybe(read_v * read_i * read_pulse / 1e-12, 0.6),
        write_energy_pj=maybe(write_v * write_i * write_pulse / 1e-12, 0.6),
        read_voltage=maybe(read_v, 0.6),
        write_voltage=maybe(write_v, 0.6),
        read_current=maybe(read_i, 0.5),
        set_current=maybe(write_i, 0.5),
        reset_current=maybe(write_i, 0.5),
        endurance_cycles=maybe(corner("endurance_cycles"), 0.7),
        retention_seconds=maybe(corner("retention_seconds"), 0.7),
        mlc_demonstrated=env.mlc_capable and rng.random() < 0.2,
        capacity_bits=maybe(2 ** rng.randint(16, 27), 0.5),
        notes="synthesized survey entry",
    )


@lru_cache(maxsize=1)
def all_entries() -> tuple[SurveyEntry, ...]:
    """The full survey database: curated + synthesized entries.

    Deterministic: the same tuple is returned on every call (and across
    processes), so tentpoles and Table I ranges are reproducible.
    """
    curated = _curated_entries()
    counts_used: dict[tuple[TechnologyClass, int], int] = {}
    for entry in curated:
        key = (entry.tech_class, entry.year)
        counts_used[key] = counts_used.get(key, 0) + 1

    rng = random.Random(_SEED)
    generated: list[SurveyEntry] = []
    for tech, per_year in PUBLICATION_COUNTS.items():
        env = ENVELOPES[tech]
        for year, total in per_year.items():
            have = counts_used.get((tech, year), 0)
            for index in range(have, total):
                generated.append(_sample_entry(rng, tech, env, year, index))
    return tuple(curated + generated)


def survey_entries(
    tech: Optional[TechnologyClass] = None,
    years: Optional[Iterable[int]] = None,
    venues: Optional[Iterable[str]] = None,
) -> list[SurveyEntry]:
    """Filter the survey database by technology, year, and venue."""
    entries: Sequence[SurveyEntry] = all_entries()
    if tech is not None:
        entries = [e for e in entries if e.tech_class == tech]
    if years is not None:
        wanted_years = set(years)
        entries = [e for e in entries if e.year in wanted_years]
    if venues is not None:
        wanted_venues = {v.upper() for v in venues}
        entries = [e for e in entries if e.venue in wanted_venues]
    return list(entries)


def publication_counts() -> dict[TechnologyClass, dict[int, int]]:
    """Publications per technology per year, computed from the database.

    This regenerates Figure 1 and, by construction, matches
    :data:`PUBLICATION_COUNTS`.
    """
    counts: dict[TechnologyClass, dict[int, int]] = {}
    for entry in all_entries():
        per_year = counts.setdefault(entry.tech_class, {y: 0 for y in SURVEY_YEARS})
        per_year[entry.year] += 1
    return counts


_RANGE_FIELDS: tuple[str, ...] = (
    "area_f2",
    "node_nm",
    "read_latency",
    "write_latency",
    "read_energy_pj",
    "write_energy_pj",
    "endurance_cycles",
    "retention_seconds",
)


def parameter_ranges(tech: TechnologyClass) -> dict[str, TechnologyRange]:
    """Reported min/max per parameter for one technology (a Table I column).

    Parameters nobody reported are absent from the result — those are the
    grey cells of Table I.
    """
    ranges: dict[str, TechnologyRange] = {}
    entries = survey_entries(tech=tech)
    for field_name in _RANGE_FIELDS:
        values = [
            getattr(e, field_name)
            for e in entries
            if getattr(e, field_name) is not None
        ]
        if values:
            ranges[field_name] = TechnologyRange(
                parameter=field_name,
                minimum=float(min(values)),
                maximum=float(max(values)),
                n_reported=len(values),
            )
    return ranges


def total_publications() -> int:
    """Total surveyed publications (the paper surveys 122)."""
    return len(all_entries())
