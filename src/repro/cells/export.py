"""Cell and survey-database import/export.

The artifact ships its cell database as files users can extend; this module
provides the equivalent round-trip: cells to/from plain dicts (JSON-ready)
and the survey database to CSV, so externally curated definitions can flow
into sweeps and survey snapshots can be diffed across releases.
"""

from __future__ import annotations

import csv
import io
from dataclasses import asdict, fields
from typing import Any, Iterable, Mapping, Optional

from repro.cells.base import AccessDevice, CellTechnology, SurveyEntry, TechnologyClass
from repro.cells.database import all_entries
from repro.errors import CellDefinitionError

_CELL_FIELDS = {f.name for f in fields(CellTechnology)}


def cell_to_dict(cell: CellTechnology) -> dict[str, Any]:
    """A JSON-serializable representation of a cell definition."""
    data = asdict(cell)
    data["tech_class"] = cell.tech_class.value
    data["access_device"] = cell.access_device.value
    return data


def cell_from_dict(data: Mapping[str, Any]) -> CellTechnology:
    """Rebuild a cell from :func:`cell_to_dict` output (or hand-written JSON).

    Unknown keys are rejected so typos in user files fail loudly.
    """
    payload = dict(data)
    unknown = set(payload) - _CELL_FIELDS
    if unknown:
        raise CellDefinitionError(f"unknown cell fields: {sorted(unknown)}")
    if "tech_class" not in payload or "name" not in payload:
        raise CellDefinitionError("cell definitions need 'name' and 'tech_class'")
    payload["tech_class"] = TechnologyClass.from_string(str(payload["tech_class"]))
    if "access_device" in payload and not isinstance(
        payload["access_device"], AccessDevice
    ):
        raw = str(payload["access_device"])
        try:
            payload["access_device"] = AccessDevice(raw)
        except ValueError:
            raise CellDefinitionError(f"unknown access device: {raw!r}") from None
    try:
        return CellTechnology(**payload)
    except TypeError as exc:
        raise CellDefinitionError(str(exc)) from exc


def cells_roundtrip(cells: Iterable[CellTechnology]) -> list[CellTechnology]:
    """Serialize and rebuild (used by tests; also a handy sanity check)."""
    return [cell_from_dict(cell_to_dict(c)) for c in cells]


_SURVEY_COLUMNS = [f.name for f in fields(SurveyEntry)]


def survey_to_csv(entries: Optional[Iterable[SurveyEntry]] = None) -> str:
    """The survey database as CSV (one row per publication)."""
    rows = entries if entries is not None else all_entries()
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_SURVEY_COLUMNS)
    writer.writeheader()
    for entry in rows:
        record = asdict(entry)
        record["tech_class"] = entry.tech_class.value
        writer.writerow(record)
    return buffer.getvalue()


def survey_from_csv(text: str) -> list[SurveyEntry]:
    """Parse a survey CSV back into entries."""
    reader = csv.DictReader(io.StringIO(text))
    entries = []
    for row in reader:
        kwargs: dict[str, Any] = {}
        for key, value in row.items():
            if key not in _SURVEY_COLUMNS:
                raise CellDefinitionError(f"unknown survey column: {key!r}")
            if value in ("", None):
                kwargs[key] = None
                continue
            if key == "tech_class":
                kwargs[key] = TechnologyClass.from_string(value)
            elif key in ("name", "venue", "notes"):
                kwargs[key] = value
            elif key == "mlc_demonstrated":
                kwargs[key] = value == "True"
            elif key in ("year", "node_nm"):
                kwargs[key] = int(float(value))
            else:
                kwargs[key] = float(value)
        entries.append(SurveyEntry(**kwargs))
    return entries
