"""Per-technology cell-level electrical envelopes.

The survey database stores what publications *report* (latency, energy,
density); the array characterizer needs *cell-level electricals* (voltages,
currents, pulse widths, resistance states).  This module holds curated
best-case / worst-case corners for those electricals per technology class,
assembled from the device behaviour the paper describes (Section III-A,
Table I) and the cited device literature:

* PCM — joule-heating writes: highest write energy, long SET pulses;
  pessimistic cells also read slowly (high-resistance sensing).
* STT — lowest read energy/latency among eNVMs, moderate 2-200 ns writes,
  essentially unlimited endurance at the optimistic end.
* SOT — three-terminal MRAM: sub-ns writes at low current, but immature
  (no advanced-node array demonstrations; excluded from validated studies).
* RRAM — fast, low-energy reads and writes, but the worst endurance.
* CTT — charge-trap logic transistors: dense and read-competitive but
  with millisecond-to-second programming.
* FeRAM — destructive 1T1C reads, field-driven (femtojoule) writes.
* FeFET — the densest option with femtojoule field-driven writes, but
  higher read energy (boosted gate sensing) and 100 ns - 1.3 us writes.

Each parameter is stored as ``(optimistic, pessimistic)``.  "Optimistic"
always means lowest power / highest efficiency / best speed / best
reliability, matching the paper's tentpole construction rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cells.base import AccessDevice, TechnologyClass
from repro.errors import UnknownTechnologyError


@dataclass(frozen=True)
class ElectricalEnvelope:
    """(optimistic, pessimistic) corners for one technology's electricals."""

    area_f2: tuple[float, float]
    read_voltage: tuple[float, float]
    read_current: tuple[float, float]
    read_pulse: tuple[float, float]
    write_voltage: tuple[float, float]
    set_current: tuple[float, float]
    reset_current: tuple[float, float]
    set_pulse: tuple[float, float]
    reset_pulse: tuple[float, float]
    r_on: tuple[float, float]
    r_off: tuple[float, float]
    endurance_cycles: tuple[float, float]
    retention_seconds: tuple[float, float]
    node_range_nm: tuple[int, int]
    mlc_capable: bool
    max_bits_per_cell: int
    access_device: AccessDevice
    aspect_ratio: float = 1.0

    def optimistic(self, param: str) -> float:
        return getattr(self, param)[0]

    def pessimistic(self, param: str) -> float:
        return getattr(self, param)[1]


_NS = 1e-9
_US = 1e-6
_MS = 1e-3
_UA = 1e-6
_NA = 1e-9
_K = 1e3
_MEG = 1e6

ENVELOPES: Mapping[TechnologyClass, ElectricalEnvelope] = {
    TechnologyClass.PCM: ElectricalEnvelope(
        area_f2=(25.0, 40.0),
        read_voltage=(0.3, 1.0),
        read_current=(25 * _UA, 8 * _UA),
        read_pulse=(1.5 * _NS, 300 * _NS),
        # Optimistic writes reflect the low-power inter-granular-switching
        # PCM demonstrations; pessimistic SET pulses run to ~10 us.
        write_voltage=(1.6, 2.8),
        set_current=(40 * _UA, 180 * _UA),
        reset_current=(80 * _UA, 350 * _UA),
        set_pulse=(30 * _NS, 12 * _US),
        reset_pulse=(20 * _NS, 150 * _NS),
        r_on=(8 * _K, 30 * _K),
        r_off=(200 * _K, 2 * _MEG),
        endurance_cycles=(1e9, 1e5),
        retention_seconds=(1e10, 1e8),
        node_range_nm=(28, 120),
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.CMOS,
    ),
    TechnologyClass.STT: ElectricalEnvelope(
        area_f2=(14.0, 75.0),
        read_voltage=(0.15, 0.35),
        read_current=(30 * _UA, 12 * _UA),
        read_pulse=(1.0 * _NS, 8 * _NS),
        # Sub-2ns switching has been demonstrated for LLC-targeted STT
        # (nucleation/propagation-optimized MTJs); pessimistic writes sit
        # above 100 ns.
        write_voltage=(0.45, 0.8),
        set_current=(60 * _UA, 90 * _UA),
        reset_current=(60 * _UA, 100 * _UA),
        set_pulse=(1.5 * _NS, 120 * _NS),
        reset_pulse=(1.5 * _NS, 150 * _NS),
        r_on=(2.5 * _K, 5 * _K),
        r_off=(6 * _K, 12 * _K),
        endurance_cycles=(1e15, 1e10),
        retention_seconds=(3e8, 1e8),
        node_range_nm=(22, 90),
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.CMOS,
    ),
    TechnologyClass.SOT: ElectricalEnvelope(
        area_f2=(20.0, 53.0),
        read_voltage=(0.15, 0.3),
        read_current=(28 * _UA, 12 * _UA),
        read_pulse=(1.2 * _NS, 9 * _NS),
        write_voltage=(0.3, 0.7),
        set_current=(30 * _UA, 120 * _UA),
        reset_current=(30 * _UA, 120 * _UA),
        set_pulse=(0.35 * _NS, 15 * _NS),
        reset_pulse=(0.35 * _NS, 17 * _NS),
        r_on=(3 * _K, 6 * _K),
        r_off=(7 * _K, 14 * _K),
        endurance_cycles=(1e12, 1e10),
        retention_seconds=(3e8, 1e8),
        node_range_nm=(55, 1000),
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.CMOS,
    ),
    TechnologyClass.RRAM: ElectricalEnvelope(
        area_f2=(4.0, 53.0),
        # RRAM sensing runs at ~0.5 V with tens of microamps of reference
        # current — cheap, but not as cheap per bit as STT's 0.15 V TMR
        # readout, which is what hands STT the highest-traffic regimes.
        read_voltage=(0.6, 0.7),
        read_current=(75 * _UA, 8 * _UA),
        read_pulse=(2.5 * _NS, 11 * _NS),
        write_voltage=(1.0, 2.5),
        set_current=(50 * _UA, 200 * _UA),
        reset_current=(60 * _UA, 220 * _UA),
        set_pulse=(2 * _NS, 1 * _US),
        reset_pulse=(2 * _NS, 1 * _US),
        r_on=(5 * _K, 25 * _K),
        r_off=(120 * _K, 2 * _MEG),
        endurance_cycles=(1e6, 1e4),
        retention_seconds=(1e8, 1e3),
        node_range_nm=(16, 130),
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.CMOS,
    ),
    TechnologyClass.CTT: ElectricalEnvelope(
        area_f2=(4.0, 12.0),
        # Charge-trap cells read like FeFETs: boosted-gate channel sensing,
        # so reads are energetic relative to the resistive technologies.
        read_voltage=(1.4, 1.8),
        read_current=(60 * _UA, 10 * _UA),
        read_pulse=(3.3 * _NS, 2 * _US),
        write_voltage=(1.6, 2.2),
        # Charge-trap programming is gate-stress driven: currents are
        # nanoamps even though pulses run to seconds.
        set_current=(50 * _NA, 200 * _NA),
        reset_current=(50 * _NA, 200 * _NA),
        set_pulse=(60 * _MS, 2.6),
        reset_pulse=(60 * _MS, 2.6),
        r_on=(20 * _K, 60 * _K),
        r_off=(300 * _K, 3 * _MEG),
        endurance_cycles=(1e6, 1e4),
        retention_seconds=(1e8, 1e7),
        node_range_nm=(14, 16),
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.TRANSISTOR_CELL,
    ),
    TechnologyClass.FERAM: ElectricalEnvelope(
        area_f2=(15.0, 40.0),
        read_voltage=(0.8, 1.4),
        read_current=(8 * _UA, 3 * _UA),
        read_pulse=(5 * _NS, 20 * _NS),
        write_voltage=(1.8, 3.0),
        set_current=(0.8 * _UA, 2.5 * _UA),
        reset_current=(0.8 * _UA, 2.5 * _UA),
        set_pulse=(14 * _NS, 1 * _US),
        reset_pulse=(14 * _NS, 1 * _US),
        r_on=(30 * _K, 80 * _K),
        r_off=(400 * _K, 3 * _MEG),
        endurance_cycles=(1e14, 1e10),
        retention_seconds=(1e8, 1e5),
        node_range_nm=(40, 130),
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.GAIN_CELL,
    ),
    TechnologyClass.FEFET: ElectricalEnvelope(
        area_f2=(2.0, 103.0),
        # FeFET reads are fast (the channel drives real current once the
        # boosted gate is up) but energetic: 2 V gate swings at ~200 uA.
        # Their weakness is the 100 ns - 1.3 us program pulse, not reads.
        read_voltage=(2.0, 2.4),
        read_current=(200 * _UA, 30 * _UA),
        read_pulse=(2 * _NS, 14 * _NS),
        write_voltage=(3.0, 4.2),
        set_current=(0.3 * _UA, 1.2 * _UA),
        reset_current=(0.3 * _UA, 1.2 * _UA),
        set_pulse=(100 * _NS, 1.3 * _US),
        reset_pulse=(100 * _NS, 1.3 * _US),
        r_on=(25 * _K, 70 * _K),
        r_off=(500 * _K, 5 * _MEG),
        endurance_cycles=(1e10, 1e5),
        retention_seconds=(1e8, 1e5),
        node_range_nm=(22, 45),
        mlc_capable=True,
        max_bits_per_cell=3,
        access_device=AccessDevice.TRANSISTOR_CELL,
    ),
}


def envelope_for(tech: TechnologyClass) -> ElectricalEnvelope:
    """Return the electrical envelope for ``tech``.

    Raises :class:`UnknownTechnologyError` for classes without an eNVM
    envelope (SRAM/eDRAM have dedicated preset builders instead).
    """
    try:
        return ENVELOPES[tech]
    except KeyError:
        raise UnknownTechnologyError(
            f"no electrical envelope for {tech.value}; "
            "SRAM/eDRAM use repro.cells.presets"
        ) from None


#: Technologies with enough published array-level data to pass the paper's
#: validation exercise (Section III-C).  SOT is modelled but excluded from
#: the case studies, exactly as in the paper.
VALIDATED_TECHNOLOGIES: tuple[TechnologyClass, ...] = (
    TechnologyClass.PCM,
    TechnologyClass.STT,
    TechnologyClass.RRAM,
    TechnologyClass.CTT,
    TechnologyClass.FERAM,
    TechnologyClass.FEFET,
)

#: The subset the paper's case studies actually plot (Sections IV-V).
STUDY_TECHNOLOGIES: tuple[TechnologyClass, ...] = (
    TechnologyClass.PCM,
    TechnologyClass.STT,
    TechnologyClass.RRAM,
    TechnologyClass.FEFET,
)
