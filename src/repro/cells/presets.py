"""Named preset cells: SRAM/eDRAM baselines and specific published devices.

These are the fixed comparison points the paper's studies use:

* :func:`sram_cell` — the 6T SRAM baseline (16 nm in Figure 3/5, matching
  "the characteristics of 16nm SRAM as a comparison point").
* :func:`edram_cell` — the eDRAM scratchpad of the Graphicionado-style graph
  accelerator baseline (Section IV-B).
* :func:`reference_rram` — the mature industry RRAM reference, parameters
  from the N40 embedded RRAM macro the paper cites as [29].
* :func:`back_gated_fefet` — the early-development back-gated FeFET of the
  co-design study (Section V-A, cited as [121]): ~10 ns programming pulse,
  ~1e12 endurance, slightly larger cell and read energy than the best
  standard FeFET.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cells.base import AccessDevice, CellTechnology, TechnologyClass

#: Per-node 6T SRAM bit-cell standby leakage, watts.  Roughly flat across
#: nodes (FinFET nodes claw back what voltage scaling loses); the absolute
#: magnitude makes a 2 MB 16 nm array leak tens of milliwatts, which is what
#: lets eNVMs win the continuous-operation studies by ~4x.
_SRAM_CELL_LEAKAGE: dict[int, float] = {
    7: 0.40e-9,
    10: 0.45e-9,
    14: 0.48e-9,
    16: 0.50e-9,
    22: 0.60e-9,
    28: 0.70e-9,
    32: 0.75e-9,
    40: 0.83e-9,
    45: 0.88e-9,
    65: 1.05e-9,
    90: 1.25e-9,
    130: 1.50e-9,
}


@lru_cache(maxsize=None)
def sram_cell(node_nm: int = 16) -> CellTechnology:
    """The 6T SRAM baseline cell at ``node_nm``."""
    leakage = _SRAM_CELL_LEAKAGE.get(node_nm, 0.75e-9)
    return CellTechnology(
        name=f"SRAM-{node_nm}nm",
        tech_class=TechnologyClass.SRAM,
        area_f2=146.0,
        native_node_nm=node_nm,
        read_voltage=0.1,  # differential bitline swing
        read_current=40e-6,
        read_pulse=0.2e-9,
        write_voltage=0.8,
        set_current=60e-6,
        reset_current=60e-6,
        set_pulse=0.2e-9,
        reset_pulse=0.2e-9,
        r_on=5e3,
        r_off=10e3,
        endurance_cycles=None,
        retention_seconds=None,
        mlc_capable=False,
        max_bits_per_cell=1,
        cell_leakage=leakage,
        access_device=AccessDevice.SRAM6T,
        source="6T SRAM baseline",
    )


@lru_cache(maxsize=None)
def edram_cell(node_nm: int = 32) -> CellTechnology:
    """A 1T1C eDRAM cell, used for the graph accelerator's scratchpad."""
    return CellTechnology(
        name=f"eDRAM-{node_nm}nm",
        tech_class=TechnologyClass.EDRAM,
        area_f2=60.0,
        native_node_nm=node_nm,
        read_voltage=0.2,
        read_current=25e-6,
        read_pulse=0.8e-9,
        write_voltage=1.0,
        set_current=40e-6,
        reset_current=40e-6,
        set_pulse=0.8e-9,
        reset_pulse=0.8e-9,
        r_on=8e3,
        r_off=16e3,
        endurance_cycles=None,
        retention_seconds=40e-6,  # must be refreshed
        refresh_interval=40e-6,
        mlc_capable=False,
        max_bits_per_cell=1,
        cell_leakage=0.25e-9,
        access_device=AccessDevice.GAIN_CELL,
        source="1T1C eDRAM scratchpad baseline",
    )


@lru_cache(maxsize=None)
def reference_rram() -> CellTechnology:
    """The mature industry RRAM reference cell (the paper's [29])."""
    return CellTechnology(
        name="RRAM-reference",
        tech_class=TechnologyClass.RRAM,
        area_f2=30.0,
        native_node_nm=40,
        read_voltage=0.3,
        read_current=12e-6,
        read_pulse=5e-9,
        write_voltage=2.0,
        set_current=120e-6,
        reset_current=150e-6,
        set_pulse=100e-9,
        reset_pulse=100e-9,
        r_on=10e3,
        r_off=500e3,
        endurance_cycles=1e5,
        retention_seconds=1e8,
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.CMOS,
        source="N40 256kx44 embedded RRAM macro (ISSCC 2018)",
    )


@lru_cache(maxsize=None)
def back_gated_fefet() -> CellTechnology:
    """Back-gated FeFET (Section V-A co-design study).

    Compared to the optimistic standard FeFET: ~10 ns programming pulse
    (vs. 100 ns), projected 1e12 endurance (vs. 1e10), a slightly larger
    cell (6 F^2 vs. 2 F^2) and slightly higher read energy — exactly the
    trade the paper reports for this device.
    """
    return CellTechnology(
        name="FeFET-back-gated",
        tech_class=TechnologyClass.FEFET,
        area_f2=6.0,
        native_node_nm=22,
        read_voltage=1.4,
        read_current=50e-6,
        read_pulse=2.5e-9,
        write_voltage=3.2,
        set_current=0.4e-6,
        reset_current=0.4e-6,
        set_pulse=10e-9,
        reset_pulse=10e-9,
        r_on=25e3,
        r_off=500e3,
        endurance_cycles=1e12,
        retention_seconds=1e8,
        mlc_capable=True,
        max_bits_per_cell=2,
        access_device=AccessDevice.TRANSISTOR_CELL,
        source="channel-last back-gated FeFET (IEDM 2020)",
    )
