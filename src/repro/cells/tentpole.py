"""Tentpole construction (Section III-B).

Comparing technologies at wildly different maturity levels is the paper's
central methodological problem.  Its answer: per technology class, build two
fixed cell definitions that bound the space —

* **optimistic** — the *densest* published cell (best Mb/F^2), with every
  unreported parameter filled with the *best* value (lowest power, highest
  efficiency, best reliability) seen across the class, and
* **pessimistic** — the *least dense* published cell filled with the *worst*
  values.

Array-level results produced from these two cells cover the range of
published fabricated arrays (validated in Section III-C and reproduced by
``benchmarks/test_fig04_validation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.cells import database
from repro.cells.base import CellTechnology, SurveyEntry, TechnologyClass
from repro.cells.envelopes import ENVELOPES, envelope_for
from repro.errors import CellDefinitionError


@dataclass(frozen=True)
class TentpoleSet:
    """The bounding cells for one technology class."""

    tech_class: TechnologyClass
    optimistic: CellTechnology
    pessimistic: CellTechnology
    reference: Optional[CellTechnology] = None

    def __iter__(self):
        yield self.optimistic
        yield self.pessimistic
        if self.reference is not None:
            yield self.reference

    def labelled(self) -> list[tuple[str, CellTechnology]]:
        """(flavor, cell) pairs, for plotting/tabulating."""
        pairs = [("optimistic", self.optimistic), ("pessimistic", self.pessimistic)]
        if self.reference is not None:
            pairs.append(("reference", self.reference))
        return pairs


def _density_extremes(
    entries: list[SurveyEntry],
) -> tuple[SurveyEntry, SurveyEntry]:
    """(densest, least dense) entries, by reported bits per F^2."""
    with_density = [e for e in entries if e.density_bits_per_f2() is not None]
    if not with_density:
        raise CellDefinitionError("no survey entries report cell area")
    densest = max(with_density, key=lambda e: e.density_bits_per_f2())
    sparsest = min(with_density, key=lambda e: e.density_bits_per_f2())
    return densest, sparsest


def _survey_extreme(
    entries: list[SurveyEntry], field_name: str, best: bool
) -> Optional[float]:
    """Best/worst reported value of ``field_name`` across ``entries``."""
    values = [
        getattr(e, field_name) for e in entries if getattr(e, field_name) is not None
    ]
    if not values:
        return None
    # For endurance/retention, "best" means the maximum.
    return max(values) if best else min(values)


def build_tentpole_cell(
    tech: TechnologyClass, *, optimistic: bool
) -> CellTechnology:
    """Construct one tentpole cell for ``tech``.

    Cell area comes from the survey's density extreme; reliability comes from
    the survey's reported extremes (falling back to the electrical envelope);
    electrical parameters (voltages, currents, pulses, resistances) come from
    the curated envelope corner, since publications rarely report them
    completely.
    """
    env = envelope_for(tech)
    entries = database.survey_entries(tech=tech)
    densest, sparsest = _density_extremes(entries)
    anchor = densest if optimistic else sparsest

    def corner(param: str) -> float:
        return env.optimistic(param) if optimistic else env.pessimistic(param)

    endurance = _survey_extreme(entries, "endurance_cycles", best=optimistic)
    retention = _survey_extreme(entries, "retention_seconds", best=optimistic)

    flavor = "optimistic" if optimistic else "pessimistic"
    return CellTechnology(
        name=f"{tech.value}-{flavor}",
        tech_class=tech,
        area_f2=float(anchor.area_f2),
        native_node_nm=int(anchor.node_nm or env.node_range_nm[0]),
        read_voltage=corner("read_voltage"),
        read_current=corner("read_current"),
        read_pulse=corner("read_pulse"),
        write_voltage=corner("write_voltage"),
        set_current=corner("set_current"),
        reset_current=corner("reset_current"),
        set_pulse=corner("set_pulse"),
        reset_pulse=corner("reset_pulse"),
        r_on=corner("r_on"),
        r_off=corner("r_off"),
        endurance_cycles=endurance if endurance is not None else corner("endurance_cycles"),
        retention_seconds=retention if retention is not None else corner("retention_seconds"),
        mlc_capable=env.mlc_capable,
        max_bits_per_cell=env.max_bits_per_cell,
        access_device=env.access_device,
        aspect_ratio=env.aspect_ratio,
        source=f"tentpole({flavor}) anchored at {anchor.name}",
    )


@lru_cache(maxsize=None)
def tentpoles_for(tech: TechnologyClass) -> TentpoleSet:
    """The cached tentpole set for one technology class."""
    from repro.cells.presets import reference_rram  # local import: avoid cycle

    reference = reference_rram() if tech is TechnologyClass.RRAM else None
    return TentpoleSet(
        tech_class=tech,
        optimistic=build_tentpole_cell(tech, optimistic=True),
        pessimistic=build_tentpole_cell(tech, optimistic=False),
        reference=reference,
    )


def all_tentpoles(
    technologies: Optional[tuple[TechnologyClass, ...]] = None,
) -> dict[TechnologyClass, TentpoleSet]:
    """Tentpole sets for every (or the given) eNVM technology class."""
    techs = technologies if technologies is not None else tuple(ENVELOPES)
    return {tech: tentpoles_for(tech) for tech in techs}


def study_cells(
    technologies: Optional[tuple[TechnologyClass, ...]] = None,
    include_reference: bool = True,
) -> list[CellTechnology]:
    """Flat list of every tentpole (and reference) cell for the case studies."""
    cells: list[CellTechnology] = []
    for tent in all_tentpoles(technologies).values():
        cells.append(tent.optimistic)
        cells.append(tent.pessimistic)
        if include_reference and tent.reference is not None:
            cells.append(tent.reference)
    return cells
