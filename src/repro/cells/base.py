"""Core cell-technology data model.

A :class:`CellTechnology` captures everything the array characterizer needs
to know about one memory cell: geometry, read/write electrical behaviour,
reliability (endurance, retention), and multi-level-cell capability.  The
survey database (:mod:`repro.cells.database`) stores one
:class:`SurveyEntry` per surveyed publication; the tentpole builder
(:mod:`repro.cells.tentpole`) condenses a technology class's entries into
fixed optimistic / pessimistic :class:`CellTechnology` instances, mirroring
Section III-B of the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import CellDefinitionError


class TechnologyClass(enum.Enum):
    """The memory technology families surveyed in the paper (Table I)."""

    SRAM = "SRAM"
    EDRAM = "eDRAM"
    PCM = "PCM"
    STT = "STT"
    SOT = "SOT"
    RRAM = "RRAM"
    CTT = "CTT"
    FERAM = "FeRAM"
    FEFET = "FeFET"

    @property
    def is_nonvolatile(self) -> bool:
        return self not in (TechnologyClass.SRAM, TechnologyClass.EDRAM)

    @classmethod
    def from_string(cls, name: str) -> "TechnologyClass":
        """Parse a technology name case-insensitively (``"stt"`` -> STT)."""
        normalized = name.strip().lower().replace("-ram", "").replace("_", "")
        aliases = {
            "sram": cls.SRAM,
            "edram": cls.EDRAM,
            "pcm": cls.PCM,
            "pcram": cls.PCM,
            "stt": cls.STT,
            "sttmram": cls.STT,
            "mram": cls.STT,
            "sot": cls.SOT,
            "sotmram": cls.SOT,
            "rram": cls.RRAM,
            "reram": cls.RRAM,
            "ctt": cls.CTT,
            "feram": cls.FERAM,
            "fefet": cls.FEFET,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise CellDefinitionError(f"unknown technology class: {name!r}") from None


class AccessDevice(enum.Enum):
    """How a storage element is selected within the array."""

    CMOS = "CMOS"  # 1T1R-style access transistor
    NONE = "none"  # crosspoint / selector-less
    SRAM6T = "6T"  # six-transistor SRAM cell
    TRANSISTOR_CELL = "FET"  # the cell *is* a transistor (FeFET, CTT)
    GAIN_CELL = "1T1C"  # eDRAM gain cell


@dataclass(frozen=True)
class CellTechnology:
    """A fixed memory cell definition.

    All values are in base SI units (seconds, volts, amperes, joules);
    ``area_f2`` is in units of ``F^2`` where ``F`` is the feature size of the
    process node the array is implemented in.

    ``None`` for ``endurance_cycles`` / ``retention_seconds`` means
    "effectively unlimited" (SRAM) — the evaluation engine treats it as
    infinite.
    """

    name: str
    tech_class: TechnologyClass
    area_f2: float
    aspect_ratio: float = 1.0
    #: Native node of the definition, nm (informational; arrays may rescale).
    native_node_nm: int = 22

    # --- read path ---
    read_voltage: float = 0.2
    read_current: float = 10e-6
    read_pulse: float = 1e-9
    #: Low/high resistance states for resistive technologies (ohms).
    r_on: float = 10e3
    r_off: float = 100e3

    # --- write path ---
    write_voltage: float = 1.0
    set_current: float = 50e-6
    reset_current: float = 50e-6
    set_pulse: float = 10e-9
    reset_pulse: float = 10e-9

    # --- reliability ---
    endurance_cycles: Optional[float] = 1e8
    retention_seconds: Optional[float] = 1e8

    # --- MLC ---
    mlc_capable: bool = True
    max_bits_per_cell: int = 2

    # --- volatility ---
    #: Standby leakage per cell in watts (SRAM / eDRAM only).
    cell_leakage: float = 0.0
    #: Refresh interval for eDRAM-style cells, seconds (None = no refresh).
    refresh_interval: Optional[float] = None

    access_device: AccessDevice = AccessDevice.CMOS
    #: Free-form provenance note ("ISSCC 2018", "SPICE model", ...).
    source: str = ""

    def __post_init__(self) -> None:
        if self.area_f2 <= 0:
            raise CellDefinitionError(f"{self.name}: cell area must be positive")
        if self.aspect_ratio <= 0:
            raise CellDefinitionError(f"{self.name}: aspect ratio must be positive")
        for attr in (
            "read_voltage",
            "read_current",
            "read_pulse",
            "write_voltage",
            "set_current",
            "reset_current",
            "set_pulse",
            "reset_pulse",
            "r_on",
            "r_off",
        ):
            if getattr(self, attr) <= 0:
                raise CellDefinitionError(f"{self.name}: {attr} must be positive")
        if self.r_off < self.r_on:
            raise CellDefinitionError(f"{self.name}: r_off must be >= r_on")
        if self.endurance_cycles is not None and self.endurance_cycles <= 0:
            raise CellDefinitionError(f"{self.name}: endurance must be positive")
        if self.retention_seconds is not None and self.retention_seconds <= 0:
            raise CellDefinitionError(f"{self.name}: retention must be positive")
        if self.max_bits_per_cell < 1:
            raise CellDefinitionError(f"{self.name}: max_bits_per_cell must be >= 1")
        if not self.mlc_capable and self.max_bits_per_cell > 1:
            object.__setattr__(self, "max_bits_per_cell", 1)

    # --- derived electrical quantities -----------------------------------

    @property
    def is_volatile(self) -> bool:
        return not self.tech_class.is_nonvolatile

    @property
    def write_pulse(self) -> float:
        """Worst-case programming pulse, seconds (max of set/reset)."""
        return max(self.set_pulse, self.reset_pulse)

    @property
    def set_energy_per_bit(self) -> float:
        """Energy to program one cell to the SET state, joules."""
        return self.write_voltage * self.set_current * self.set_pulse

    @property
    def reset_energy_per_bit(self) -> float:
        """Energy to program one cell to the RESET state, joules."""
        return self.write_voltage * self.reset_current * self.reset_pulse

    @property
    def write_energy_per_bit(self) -> float:
        """Average cell programming energy, joules (mean of set/reset)."""
        return 0.5 * (self.set_energy_per_bit + self.reset_energy_per_bit)

    @property
    def read_energy_per_bit(self) -> float:
        """Cell-level sensing energy, joules."""
        return self.read_voltage * self.read_current * self.read_pulse

    def cell_area(self, feature_size: float) -> float:
        """Physical cell area in m^2 at the given feature size (meters)."""
        return self.area_f2 * feature_size * feature_size

    def cell_dimensions(self, feature_size: float) -> tuple[float, float]:
        """(width, height) of the cell in meters, honoring the aspect ratio."""
        area = self.cell_area(feature_size)
        width = math.sqrt(area * self.aspect_ratio)
        height = area / width
        return width, height

    def density_bits_per_f2(self, bits_per_cell: int = 1) -> float:
        """Storage density in bits per F^2 (the tentpole ranking metric)."""
        if bits_per_cell > self.max_bits_per_cell:
            raise CellDefinitionError(
                f"{self.name}: {bits_per_cell} bits/cell exceeds max "
                f"{self.max_bits_per_cell}"
            )
        return bits_per_cell / self.area_f2

    def with_bits_per_cell(self, bits: int) -> "CellTechnology":
        """Validate that this cell supports ``bits`` levels and return self.

        MLC handling lives in the array model; this is a guard for callers.
        """
        if bits > self.max_bits_per_cell:
            raise CellDefinitionError(
                f"{self.name} supports at most {self.max_bits_per_cell} bits/cell"
            )
        return self

    def renamed(self, name: str) -> "CellTechnology":
        """Copy of this definition under a new name."""
        return replace(self, name=name)


@dataclass(frozen=True)
class SurveyEntry:
    """One surveyed publication's reported cell / array data.

    ``None`` fields are parameters the publication did not report (the grey
    cells of Table I); the tentpole builder fills them from the rest of the
    technology class.
    """

    name: str
    tech_class: TechnologyClass
    year: int
    venue: str  # "ISSCC" | "IEDM" | "VLSI"
    node_nm: Optional[int] = None
    area_f2: Optional[float] = None
    read_latency: Optional[float] = None  # seconds, cell+array reported
    write_latency: Optional[float] = None  # seconds
    read_energy_pj: Optional[float] = None  # per-bit, pJ as reported
    write_energy_pj: Optional[float] = None
    read_voltage: Optional[float] = None
    write_voltage: Optional[float] = None
    read_current: Optional[float] = None
    set_current: Optional[float] = None
    reset_current: Optional[float] = None
    endurance_cycles: Optional[float] = None
    retention_seconds: Optional[float] = None
    mlc_demonstrated: bool = False
    capacity_bits: Optional[float] = None
    notes: str = ""

    def density_bits_per_f2(self) -> Optional[float]:
        """Reported storage density, or None if the area was not reported."""
        if self.area_f2 is None:
            return None
        bits = 2.0 if self.mlc_demonstrated else 1.0
        return bits / self.area_f2


@dataclass(frozen=True)
class TechnologyRange:
    """Min/max envelope of a parameter across a technology class.

    Used to regenerate Table I and to sanity-check tentpole construction.
    """

    parameter: str
    minimum: float
    maximum: float
    n_reported: int = 0

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        return self.minimum - tolerance <= value <= self.maximum + tolerance


# Parameters where a *smaller* value is "better" (optimistic).  Everything
# not listed here is better when larger (endurance, retention, density).
LOWER_IS_BETTER: frozenset[str] = frozenset(
    {
        "area_f2",
        "read_latency",
        "write_latency",
        "read_energy_pj",
        "write_energy_pj",
        "read_pulse",
        "set_pulse",
        "reset_pulse",
        "read_voltage",
        "write_voltage",
        "read_current",
        "set_current",
        "reset_current",
    }
)

HIGHER_IS_BETTER: frozenset[str] = frozenset(
    {"endurance_cycles", "retention_seconds", "capacity_bits"}
)
