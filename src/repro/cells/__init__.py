"""Cell technology substrate: survey database, tentpoles, and presets."""

from repro.cells.base import (
    AccessDevice,
    CellTechnology,
    SurveyEntry,
    TechnologyClass,
    TechnologyRange,
)
from repro.cells.database import (
    PUBLICATION_COUNTS,
    SURVEY_YEARS,
    all_entries,
    parameter_ranges,
    publication_counts,
    survey_entries,
    total_publications,
)
from repro.cells.envelopes import (
    ENVELOPES,
    STUDY_TECHNOLOGIES,
    VALIDATED_TECHNOLOGIES,
    ElectricalEnvelope,
    envelope_for,
)
from repro.cells.export import (
    cell_from_dict,
    cell_to_dict,
    survey_from_csv,
    survey_to_csv,
)
from repro.cells.presets import (
    back_gated_fefet,
    edram_cell,
    reference_rram,
    sram_cell,
)
from repro.cells.tentpole import (
    TentpoleSet,
    all_tentpoles,
    build_tentpole_cell,
    study_cells,
    tentpoles_for,
)

__all__ = [
    "AccessDevice",
    "CellTechnology",
    "SurveyEntry",
    "TechnologyClass",
    "TechnologyRange",
    "ElectricalEnvelope",
    "ENVELOPES",
    "envelope_for",
    "STUDY_TECHNOLOGIES",
    "VALIDATED_TECHNOLOGIES",
    "PUBLICATION_COUNTS",
    "SURVEY_YEARS",
    "all_entries",
    "survey_entries",
    "publication_counts",
    "parameter_ranges",
    "total_publications",
    "sram_cell",
    "edram_cell",
    "reference_rram",
    "back_gated_fefet",
    "TentpoleSet",
    "tentpoles_for",
    "all_tentpoles",
    "build_tentpole_cell",
    "study_cells",
    "cell_to_dict",
    "cell_from_dict",
    "survey_to_csv",
    "survey_from_csv",
]
