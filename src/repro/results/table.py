"""A small column-oriented results table.

pandas is not available offline, so the framework carries its own result
container: a list of records with pandas-ish verbs (filter, sort, group_by,
select, aggregate) plus CSV/markdown export.  Every study returns one of
these; the visualization layer and benches consume them.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import ReproError


class ResultTable:
    """An immutable-ish table of records (dicts with shared keys)."""

    def __init__(self, records: Iterable[Mapping[str, Any]] = ()) -> None:
        self._records: list[dict[str, Any]] = [dict(r) for r in records]

    # --- basics -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._records)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self._records[index]

    def __bool__(self) -> bool:
        return bool(self._records)

    @property
    def columns(self) -> list[str]:
        """Union of keys across records, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self._records:
            for key in record:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, name: str, default: Any = None) -> list[Any]:
        """All values of one column."""
        return [r.get(name, default) for r in self._records]

    def append(self, record: Mapping[str, Any]) -> None:
        self._records.append(dict(record))

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        for record in records:
            self.append(record)

    # --- verbs ---------------------------------------------------------------

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "ResultTable":
        return ResultTable(r for r in self._records if predicate(r))

    def where(self, **equals: Any) -> "ResultTable":
        """Filter on column equality: ``table.where(tech="STT", flavor="optimistic")``."""
        def match(record: dict[str, Any]) -> bool:
            return all(record.get(k) == v for k, v in equals.items())
        return self.filter(match)

    def select(self, *columns: str) -> "ResultTable":
        return ResultTable({c: r.get(c) for c in columns} for r in self._records)

    def sort_by(self, column: str, reverse: bool = False) -> "ResultTable":
        def key(record: dict[str, Any]):
            value = record.get(column)
            # Sort missing values last.
            return (value is None, value)
        return ResultTable(sorted(self._records, key=key, reverse=reverse))

    def group_by(self, *columns: str) -> dict[tuple, "ResultTable"]:
        groups: dict[tuple, ResultTable] = {}
        for record in self._records:
            key = tuple(record.get(c) for c in columns)
            groups.setdefault(key, ResultTable()).append(record)
        return groups

    def min_by(self, column: str) -> dict[str, Any]:
        """The record minimizing ``column`` (None values excluded)."""
        candidates = [r for r in self._records if r.get(column) is not None]
        if not candidates:
            raise ReproError(f"no records with column {column!r}")
        return min(candidates, key=lambda r: r[column])

    def max_by(self, column: str) -> dict[str, Any]:
        candidates = [r for r in self._records if r.get(column) is not None]
        if not candidates:
            raise ReproError(f"no records with column {column!r}")
        return max(candidates, key=lambda r: r[column])

    def aggregate(
        self, column: str, func: Callable[[Sequence[float]], float]
    ) -> float:
        values = [r[column] for r in self._records if r.get(column) is not None]
        if not values:
            raise ReproError(f"no values to aggregate in column {column!r}")
        return func(values)

    def unique(self, column: str) -> list[Any]:
        seen: dict[Any, None] = {}
        for record in self._records:
            if column in record:
                seen.setdefault(record[column], None)
        return list(seen)

    def concat(self, other: "ResultTable") -> "ResultTable":
        return ResultTable([*self._records, *other._records])

    def with_column(
        self, name: str, func: Callable[[dict[str, Any]], Any]
    ) -> "ResultTable":
        """A copy with a derived column appended."""
        out = []
        for record in self._records:
            new = dict(record)
            new[name] = func(record)
            out.append(new)
        return ResultTable(out)

    # --- export ----------------------------------------------------------------

    def to_csv(self, path: Optional[str] = None) -> str:
        """Render as CSV; write to ``path`` when given."""
        columns = self.columns
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for record in self._records:
            writer.writerow({c: record.get(c, "") for c in columns})
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def to_markdown(self, float_format: str = "{:.4g}") -> str:
        """Render as a GitHub-flavored markdown table."""
        columns = self.columns
        if not columns:
            return "(empty table)"

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return "" if value is None else str(value)

        header = "| " + " | ".join(columns) + " |"
        rule = "|" + "|".join("---" for _ in columns) + "|"
        rows = [
            "| " + " | ".join(fmt(r.get(c)) for c in columns) + " |"
            for r in self._records
        ]
        return "\n".join([header, rule, *rows])

    @classmethod
    def from_csv(cls, text: str) -> "ResultTable":
        """Parse a CSV string, converting numeric-looking fields."""
        reader = csv.DictReader(io.StringIO(text))
        records = []
        for row in reader:
            parsed: dict[str, Any] = {}
            for key, value in row.items():
                parsed[key] = _coerce(value)
            records.append(parsed)
        return cls(records)


def _coerce(value: Optional[str]) -> Any:
    if value is None or value == "":
        return None
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    if value in ("True", "False"):
        return value == "True"
    return value
