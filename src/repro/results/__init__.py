"""Results handling: tables, filters, export."""

from repro.results.table import ResultTable

__all__ = ["ResultTable"]
