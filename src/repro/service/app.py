"""The DSE service application: routing, lifecycle, graceful shutdown.

:class:`ReproService` ties the pieces together — the stdlib HTTP layer
(:mod:`repro.service.http`), the coalescing job manager
(:mod:`repro.service.jobs`), the per-client rate limiter
(:mod:`repro.service.ratelimit`), and the warm-keeper
(:mod:`repro.service.warm`) — behind a small JSON API:

========  =============================  =======================================
method    path                           semantics
========  =============================  =======================================
GET       ``/healthz``                   liveness + draining flag
GET       ``/v1/studies``                the study registry
POST      ``/v1/submit``                 submit a study/sweep request
                                         (rate-limited; 202 queued/running,
                                         200 already finished, 429 throttled,
                                         503 draining)
GET       ``/v1/jobs``                   all job statuses
GET       ``/v1/jobs/{id}``              one job's status (volatile view)
GET       ``/v1/jobs/{id}/result``       the stable result document
                                         (409 until done; byte-identical
                                         across cold/warm/restart)
GET       ``/v1/jobs/{id}/events``       server-sent progress events
                                         (replay + live, terminal ``done``)
GET       ``/v1/stats``                  manager / limiter / warm-keeper stats
POST      ``/v1/shutdown``               request graceful shutdown
========  =============================  =======================================

Shutdown — whether from ``/v1/shutdown``, SIGINT, or SIGTERM — always
takes the same drain path: stop accepting submissions (503), close the
listener, cancel the warm-keeper, wait up to ``drain_timeout_s`` for
in-flight jobs, then tear down the worker pool and end every open event
stream.
"""

from __future__ import annotations

import asyncio
import logging
import signal
from typing import Optional

from repro.config.schema import ServiceConfig
from repro.errors import ReproError
from repro.service.http import (
    HttpError,
    HttpRequest,
    error_response,
    json_response,
    read_request,
    render_json,
    response_bytes,
    sse_event,
    sse_headers,
)
from repro.service.jobs import DONE, FAILED, Job, JobManager
from repro.service.ratelimit import RateLimiter
from repro.service.requests import resolve_request
from repro.service.warm import WarmKeeper
from repro.studies.pipeline import REGISTRY

logger = logging.getLogger("repro.service")


class ReproService:
    """One serving instance; ``start()`` binds, ``shutdown()`` drains."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.manager = JobManager(
            runtime=self.config.runtime,
            workers=self.config.workers,
            job_retries=self.config.job_retries,
        )
        self.limiter = RateLimiter(
            self.config.rate_limit_rps, self.config.rate_limit_burst
        )
        self.warm_keeper = WarmKeeper(
            self.manager,
            self.config.warm_studies,
            cache_dir=self.config.runtime.cache_dir,
            interval_s=self.config.warm_interval_s,
        )
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._warm_task: Optional[asyncio.Task] = None
        self._shutdown_requested = asyncio.Event()
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start workers, bind the listener, launch the warm-keeper.

        With ``port=0`` the OS picks a free port; :attr:`port` is
        updated to the bound one (the in-process test hook).
        """
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.warm_studies:
            self._warm_task = asyncio.get_running_loop().create_task(
                self.warm_keeper.run_forever(), name="repro-service-warm"
            )
        logger.info("serving on %s:%d", self.host, self.port)

    def request_shutdown(self) -> None:
        """Signal :meth:`serve_until_shutdown` to drain and exit."""
        self.draining = True
        self._shutdown_requested.set()

    async def shutdown(self) -> bool:
        """Graceful drain; returns ``True`` when all jobs finished in time."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._warm_task is not None:
            self._warm_task.cancel()
            try:
                await self._warm_task
            except asyncio.CancelledError:
                pass
            self._warm_task = None
        drained = await self.manager.drain(self.config.drain_timeout_s)
        logger.info("shutdown complete (drained=%s)", drained)
        return drained

    async def serve_until_shutdown(self) -> bool:
        """Run until :meth:`request_shutdown` (or a signal), then drain."""
        await self._shutdown_requested.wait()
        return await self.shutdown()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                peername = writer.get_extra_info("peername")
                request.peer = peername[0] if peername else ""
                await self._route(request, writer)
            except HttpError as exc:
                writer.write(error_response(exc))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception:
                logger.exception("request handling failed")
                writer.write(
                    error_response(HttpError(500, "internal server error"))
                )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to tell it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: HttpRequest, writer) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            writer.write(json_response(200, {
                "status": "draining" if self.draining else "ok",
            }))
            return
        if path == "/v1/studies" and method == "GET":
            writer.write(json_response(200, {"studies": [
                {
                    "name": spec.name,
                    "figure": spec.figure,
                    "description": spec.description,
                    "params": dict(spec.params),
                }
                for spec in REGISTRY.values()
            ]}))
            return
        if path == "/v1/submit" and method == "POST":
            writer.write(self._submit(request))
            return
        if path == "/v1/jobs" and method == "GET":
            writer.write(json_response(200, {
                "jobs": [job.status() for job in self.manager.jobs.values()],
            }))
            return
        if path.startswith("/v1/jobs/"):
            await self._route_job(request, path, writer)
            return
        if path == "/v1/stats" and method == "GET":
            writer.write(json_response(200, self.stats()))
            return
        if path == "/v1/shutdown" and method == "POST":
            writer.write(json_response(200, {"status": "draining"}))
            await writer.drain()
            self.request_shutdown()
            return
        raise HttpError(404, f"no route for {method} {path}")

    def _submit(self, request: HttpRequest) -> bytes:
        client_id = request.headers.get("x-client-id") or request.peer
        allowed, retry_after = self.limiter.check(client_id)
        if not allowed:
            raise HttpError(
                429, "rate limit exceeded for this client",
                retry_after=retry_after,
            )
        if self.draining or not self.manager.accepting:
            raise HttpError(503, "service is draining; not accepting submissions")
        try:
            query = resolve_request(request.json())
        except ReproError as exc:
            raise HttpError(400, str(exc)) from None
        job, mode = self.manager.submit(query)
        status = 200 if job.finished else 202
        return json_response(status, {"job": job.status(), "submission": mode})

    async def _route_job(self, request: HttpRequest, path: str, writer) -> None:
        if request.method != "GET":
            raise HttpError(405, f"{request.method} not allowed here")
        parts = path.split("/")  # ["", "v1", "jobs", "<id>", ...]
        job = self.manager.get(parts[3])
        if job is None:
            raise HttpError(404, f"unknown job {parts[3]!r}")
        tail = parts[4:]
        if not tail:
            writer.write(json_response(200, job.status()))
            return
        if tail == ["result"]:
            writer.write(self._result(job))
            return
        if tail == ["events"]:
            await self._stream_events(job, writer)
            return
        raise HttpError(404, f"no route for GET {path}")

    def _result(self, job: Job) -> bytes:
        if job.state == FAILED:
            raise HttpError(409, f"job {job.id} failed: {job.error}")
        if job.state != DONE:
            raise HttpError(
                409, f"job {job.id} is {job.state}; result not available yet"
            )
        return response_bytes(200, render_json(job.result_payload()))

    async def _stream_events(self, job: Job, writer) -> None:
        writer.write(sse_headers())
        await writer.drain()
        async for payload in self.manager.stream(job):
            writer.write(sse_event(payload, event="progress"))
            await writer.drain()
        writer.write(sse_event(job.status(), event="done"))
        await writer.drain()

    def stats(self) -> dict:
        return {
            "draining": self.draining,
            "manager": self.manager.stats(),
            "rate_limiter": self.limiter.stats(),
            "warm_keeper": self.warm_keeper.stats(),
        }


async def serve(config: Optional[ServiceConfig] = None) -> int:
    """Run a service until SIGINT/SIGTERM (or ``POST /v1/shutdown``).

    Returns a process exit code: 0 on a clean drain, 1 when the drain
    timed out with jobs still in flight.
    """
    service = ReproService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for signame in ("SIGINT", "SIGTERM"):
        if hasattr(signal, signame):
            try:
                loop.add_signal_handler(
                    getattr(signal, signame), service.request_shutdown
                )
                installed.append(getattr(signal, signame))
            except (NotImplementedError, RuntimeError):
                pass  # platform/embedding without loop signal support
    try:
        drained = await service.serve_until_shutdown()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    return 0 if drained else 1
