"""Supervised job execution with request coalescing and progress fan-out.

The :class:`JobManager` is the service's core: submissions become
:class:`Job` records keyed by their content fingerprint, a fixed pool of
asyncio workers drains the queue, and each job's blocking study/sweep
runs on an :class:`~repro.runtime.aio.AsyncStudyRunner` thread with its
telemetry bridged back onto the event loop.

**Coalescing and memoization are the same mechanism.**  The fingerprint
covers everything that determines the result (inputs + cache schema tags
+ source revision), so the fingerprint→job map serves three cases with
one lookup:

* an identical request while the original is queued/running attaches to
  the in-flight job (``"coalesced"`` — the pending-futures pattern, with
  the job's ``done`` event as the shared future);
* an identical request after success returns the finished job
  (``"memo"`` — zero fresh work, byte-identical result);
* a request whose twin *failed* starts over — failures are not sticky.

Progress events append to the job's replayable event log and fan out to
any number of subscriber queues (the SSE endpoint's feed).  All manager
state is touched only on the event loop — worker threads reach it solely
through the :class:`~repro.runtime.aio.TelemetryBridge` — so there is no
lock here at all.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from typing import AsyncIterator, Callable, Optional, Tuple

from repro.runtime.aio import AsyncStudyRunner, TelemetryBridge
from repro.runtime.options import RuntimeOptions, ensure_runtime
from repro.runtime.resilience import classify_error
from repro.runtime.telemetry import ProgressEvent, SweepTelemetry
from repro.service.requests import ServiceQuery
from repro.studies.pipeline import StudyOutcome

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Sentinel pushed to subscriber queues when a job reaches a terminal state.
_STREAM_END = None


class Job:
    """One fingerprinted unit of work and everything observed about it."""

    def __init__(
        self,
        job_id: str,
        query: ServiceQuery,
        fingerprint: str,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.id = job_id
        self.query = query
        self.fingerprint = fingerprint
        self.state = QUEUED
        self.submissions = 1  # how many client submissions share this job
        self.created_s = clock()
        self.telemetry = SweepTelemetry()
        self.events: list[dict] = []  # replayable SSE payloads
        self.outcome: Optional[StudyOutcome] = None
        self.error: Optional[str] = None
        self.retries = 0  # whole-job re-attempts after transient failures
        self.elapsed_s = 0.0
        self.done = asyncio.Event()
        self.subscribers: list[asyncio.Queue] = []

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def status(self) -> dict:
        """The volatile job view (the status endpoint's payload).

        Everything that differs between a cold computation and a warm
        cache hit — telemetry, timings, event counts — lives here, NOT
        in :meth:`result_payload`.
        """
        return {
            "id": self.id,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "request": self.query.describe(),
            "submissions": self.submissions,
            "events": len(self.events),
            "telemetry": self.telemetry.counters(),
            "fresh_work": self.telemetry.fresh_work,
            "retries": self.retries,
            "elapsed_s": round(self.elapsed_s, 6),
            "error": self.error,
        }

    def result_payload(self) -> dict:
        """The *stable* result view: inputs + table, nothing volatile.

        Deliberately excludes telemetry, timings, and job bookkeeping so
        a warm re-submission renders byte-identically to the original
        cold computation (the service's reproducibility guarantee).
        """
        if self.outcome is None or self.outcome.table is None:
            raise RuntimeError(f"job {self.id} has no result")
        table = self.outcome.table
        return {
            "name": self.query.name,
            "kind": self.query.kind,
            "fingerprint": self.fingerprint,
            "row_count": len(table),
            "columns": list(table.columns),
            "rows": [dict(row) for row in table],
            "csv": table.to_csv(),
        }


class JobManager:
    """Fingerprint-keyed job store + bounded asyncio worker pool."""

    def __init__(
        self,
        runtime: Optional[RuntimeOptions] = None,
        workers: int = 2,
        job_retries: int = 2,
        clock: Callable[[], float] = time.time,
    ):
        self.runtime = ensure_runtime(runtime)
        self.workers = max(1, int(workers))
        #: Injectable wall clock (tests freeze it; the linter's
        #: determinism rule bans bare time.time() on fingerprinted
        #: paths, and an injected clock keeps job records replayable).
        self.clock = clock
        #: Re-attempts granted to a job failing with a *transient*
        #: infrastructure error (broken pool, injected chaos) before the
        #: failure is recorded; deterministic failures never retry.
        self.job_retries = max(0, int(job_retries))
        self.jobs: dict[str, Job] = {}  # by job id, insertion-ordered
        self._by_key: dict[str, Job] = {}  # by fingerprint
        self._queue: Optional[asyncio.Queue] = None
        self._runner: Optional[AsyncStudyRunner] = None
        self._worker_tasks: list[asyncio.Task] = []
        self._next_id = 0
        self.accepting = True

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool (requires a running event loop)."""
        if self._queue is not None:
            raise RuntimeError("JobManager already started")
        self._queue = asyncio.Queue()
        self._runner = AsyncStudyRunner(workers=self.workers)
        loop = asyncio.get_running_loop()
        self._worker_tasks = [
            loop.create_task(self._worker(), name=f"repro-service-worker-{i}")
            for i in range(self.workers)
        ]

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop intake, wait for in-flight, tear down.

        Returns ``True`` when every accepted job reached a terminal
        state within ``timeout`` (``None`` waits forever).  Either way
        the worker tasks are cancelled, the thread pool is shut down,
        and every open event stream is terminated.
        """
        self.accepting = False
        pending = [job.done.wait() for job in self.jobs.values() if not job.finished]
        drained = True
        if pending:
            try:
                await asyncio.wait_for(asyncio.gather(*pending), timeout)
            except asyncio.TimeoutError:
                drained = False
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._worker_tasks = []
        if self._runner is not None and not self._runner.closed:
            # In-flight threads (if the timeout expired) finish on their
            # own; nothing queued survives.
            self._runner.shutdown(wait=False, cancel_pending=True)
        for job in self.jobs.values():
            for queue in list(job.subscribers):
                queue.put_nowait(_STREAM_END)
        return drained

    # -- submission --------------------------------------------------------

    def submit(self, query: ServiceQuery) -> Tuple[Job, str]:
        """Submit a query; returns ``(job, "created"|"coalesced"|"memo")``.

        Identical in-flight fingerprints share one computation; finished
        successful fingerprints are served as memo hits; failed ones are
        retried under a fresh job.
        """
        if self._queue is None:
            raise RuntimeError("JobManager not started")
        if not self.accepting:
            raise RuntimeError("JobManager is draining")
        key = query.fingerprint()
        existing = self._by_key.get(key)
        if existing is not None:
            if existing.state == FAILED:
                del self._by_key[key]  # retry failures under a new job
            else:
                existing.submissions += 1
                return existing, ("memo" if existing.finished else "coalesced")
        self._next_id += 1
        job = Job(f"job-{self._next_id:06d}", query, key, clock=self.clock)
        self.jobs[job.id] = job
        self._by_key[key] = job
        self._queue.put_nowait(job)
        return job, "created"

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    # -- execution ---------------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        assert self._runner is not None
        job.state = RUNNING
        start = time.perf_counter()
        attempt = 0
        while True:
            attempt += 1
            bridge = TelemetryBridge(lambda event: self._on_event(job, event))
            try:
                outcome = await self._runner.call(
                    job.query.run, replace(self.runtime, progress=bridge.callback)
                )
            except asyncio.CancelledError:
                job.error = "cancelled during shutdown"
                self._finish(job, FAILED, time.perf_counter() - start)
                bridge.close()
                raise
            except Exception as exc:
                bridge.close()
                # Transient infrastructure faults (broken pool, injected
                # chaos) get a bounded re-attempt instead of memoizing
                # the failure; deterministic errors fail immediately.
                if (
                    classify_error(exc) == "transient"
                    and attempt <= self.job_retries
                ):
                    job.retries += 1
                    await asyncio.sleep(min(0.05 * (2 ** (attempt - 1)), 1.0))
                    continue
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish(job, FAILED, time.perf_counter() - start)
                return
            bridge.close()
            break
        elapsed = time.perf_counter() - start
        job.outcome = outcome
        job.telemetry.absorb(outcome.telemetry)
        if outcome.ok and outcome.table is not None:
            self._finish(job, DONE, elapsed)
        else:
            job.error = outcome.error or "study produced no table"
            self._finish(job, FAILED, elapsed)

    def _finish(self, job: Job, state: str, elapsed: float) -> None:
        job.state = state
        job.elapsed_s = elapsed
        job.done.set()
        for queue in list(job.subscribers):
            queue.put_nowait(_STREAM_END)

    def _on_event(self, job: Job, event: ProgressEvent) -> None:
        """Runs on the event loop (via the bridge) — no locking needed."""
        payload = event.to_dict()
        job.events.append(payload)
        for queue in list(job.subscribers):
            queue.put_nowait(payload)

    # -- observation -------------------------------------------------------

    async def stream(self, job: Job) -> AsyncIterator[dict]:
        """Yield the job's progress events: full replay, then live.

        Terminates when the job reaches a terminal state (late
        subscribers to a finished job get the replay and an immediate
        end).  The caller renders the frames (SSE or otherwise).
        """
        # Snapshot + subscribe with no await in between: _on_event also
        # runs on the loop, so nothing can interleave and every event
        # lands in exactly one of replay/queue.
        replay = list(job.events)
        if job.finished:
            for payload in replay:
                yield payload
            return
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        try:
            for payload in replay:
                yield payload
            while True:
                payload = await queue.get()
                if payload is _STREAM_END:
                    return
                yield payload
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)

    def stats(self) -> dict:
        states: dict[str, int] = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        submissions = 0
        fresh_work = 0
        poisoned = 0
        corrupt = 0
        point_retries = 0
        job_retries = 0
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
            submissions += job.submissions
            telemetry = job.telemetry
            fresh_work += telemetry.fresh_work
            poisoned += telemetry.poisoned + telemetry.eval_poisoned
            corrupt += (
                telemetry.corrupt + telemetry.eval_corrupt
                + telemetry.trace_corrupt
            )
            point_retries += telemetry.retried
            job_retries += job.retries
        return {
            "jobs": len(self.jobs),
            "states": states,
            "submissions": submissions,
            "coalesced": submissions - len(self.jobs),
            "fresh_work": fresh_work,
            "poisoned": poisoned,
            "corrupt": corrupt,
            "point_retries": point_retries,
            "job_retries": job_retries,
            "workers": self.workers,
            "accepting": self.accepting,
        }
