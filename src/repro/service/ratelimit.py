"""Per-client token-bucket rate limiting for the submit endpoint.

A characterization sweep is orders of magnitude more expensive than the
HTTP request that triggers it, so the service bounds how fast any one
client can *submit* (reads are uncapped).  Classic token bucket: each
client's bucket holds up to ``burst`` tokens, refills at ``rps`` tokens
per second, and a submission spends one token.  An empty bucket means
HTTP 429 plus a ``Retry-After`` hint of when the next token lands.

Buckets are keyed by client identity — the ``X-Client-Id`` header when
the client sends one, the peer address otherwise — and live purely in
memory: a service restart forgives everyone, which is the behavior a
lab-scale service wants.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple


class TokenBucket:
    """One client's bucket: ``capacity`` tokens refilled at ``fill_rate``/s."""

    def __init__(
        self,
        capacity: float,
        fill_rate: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if fill_rate <= 0:
            raise ValueError(f"fill_rate must be > 0, got {fill_rate!r}")
        self.capacity = float(capacity)
        self.fill_rate = float(fill_rate)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.fill_rate)

    def take(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """Try to spend ``tokens``.

        Returns ``(True, 0.0)`` on success, else ``(False, wait_s)``
        where ``wait_s`` is how long until the deficit refills.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True, 0.0
        return False, (tokens - self._tokens) / self.fill_rate


class RateLimiter:
    """Token buckets keyed by client id.  ``rps <= 0`` disables limiting."""

    def __init__(
        self,
        rps: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rps = float(rps)
        self.burst = max(1, int(burst))
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.allowed_total = 0
        self.rejected_total = 0
        self.pruned_total = 0
        self._last_prune = clock()

    @property
    def enabled(self) -> bool:
        return self.rps > 0

    @property
    def _refill_horizon_s(self) -> float:
        """How long an untouched bucket takes to refill completely."""
        return self.burst / self.rps

    def _prune(self, now: float) -> None:
        """Drop buckets idle past a full refill.

        An idle bucket refills to capacity after ``burst / rps`` seconds,
        at which point its state is indistinguishable from a fresh
        bucket — keeping it only leaks memory as one-off clients
        accumulate.  Runs at most once per horizon, so the scan cost is
        amortized across submissions.
        """
        horizon = self._refill_horizon_s
        if now - self._last_prune < horizon:
            return
        self._last_prune = now
        stale = [
            key for key, bucket in self._buckets.items()
            if now - bucket._stamp >= horizon
        ]
        for key in stale:
            del self._buckets[key]
        self.pruned_total += len(stale)

    def check(self, client_id: Optional[str]) -> Tuple[bool, float]:
        """May ``client_id`` submit now?  Returns ``(allowed, retry_after_s)``."""
        if not self.enabled:
            self.allowed_total += 1
            return True, 0.0
        self._prune(self._clock())
        key = client_id or "anonymous"
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(self.burst, self.rps, clock=self._clock)
            self._buckets[key] = bucket
        allowed, retry_after = bucket.take()
        if allowed:
            self.allowed_total += 1
        else:
            self.rejected_total += 1
        return allowed, retry_after

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "rps": self.rps,
            "burst": self.burst,
            "clients": len(self._buckets),
            "allowed": self.allowed_total,
            "rejected": self.rejected_total,
            "pruned": self.pruned_total,
        }
