"""DSE-as-a-service: an asyncio HTTP/JSON front-end over the cache substrate.

The batch stack answers "run this study" by computing (or re-reading)
every sweep point through the persistent characterization / evaluation /
trace caches.  This package puts a long-lived server in front of that
substrate so *many* clients share one cache and one compute pool:

* :mod:`repro.service.requests` — submit payloads resolved into
  fingerprinted, runnable study/sweep queries;
* :mod:`repro.service.jobs` — the coalescing job manager (identical
  in-flight fingerprints share one computation; finished ones are memo
  hits) over a supervised worker pool;
* :mod:`repro.service.ratelimit` — per-client token-bucket submission
  limiting;
* :mod:`repro.service.warm` — background pre-computation of configured
  studies whenever their fingerprints (inputs, schema tags, source
  revision) change;
* :mod:`repro.service.http` — the dependency-free HTTP/SSE transport;
* :mod:`repro.service.app` — routing, lifecycle, graceful drain
  (:class:`ReproService`, :func:`serve`);
* :mod:`repro.service.client` — an asyncio client speaking the same
  dialect (used by the tests and ``examples/service_client.py``).

Start one from the CLI with ``nvmexplorer serve config/service.json``.
"""

from repro.service.app import ReproService, serve
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobManager
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.requests import (
    ServiceQuery,
    StudyQuery,
    SweepQuery,
    resolve_request,
)
from repro.service.warm import WarmKeeper

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "Job",
    "JobManager",
    "RateLimiter",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "ServiceQuery",
    "StudyQuery",
    "SweepQuery",
    "TokenBucket",
    "WarmKeeper",
    "resolve_request",
    "serve",
]
