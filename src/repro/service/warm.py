"""Warm-keeper: pre-compute configured studies when their inputs change.

A serving deployment wants its popular studies answered from cache, not
computed on the first unlucky client.  The warm-keeper watches the
*fingerprints* of a configured set of registry studies — which fold in
the cache schema tags and the source digest — and re-submits any study
whose fingerprint differs from the last warmed stamp.  Deploying a new
revision or bumping a cache schema therefore triggers one background
re-computation per study, after which every submission is a warm hit.

The stamp persists at ``<cache_dir>/service/warm_stamp.json`` so a
restarted service against an already-warm cache does nothing.  Without a
cache dir there is nothing durable to keep warm; the keeper still runs
(in-memory stamp), which keeps tests and ephemeral setups working.
"""

from __future__ import annotations

import asyncio
import json
import logging
from pathlib import Path
from typing import Optional, Sequence

from repro.runtime.cache import atomic_write_text
from repro.runtime.shard import schema_tags
from repro.service.jobs import DONE, JobManager
from repro.service.requests import resolve_request

logger = logging.getLogger("repro.service")

STAMP_RELPATH = Path("service") / "warm_stamp.json"


class WarmKeeper:
    """Keeps the configured studies' cache entries warm."""

    def __init__(
        self,
        manager: JobManager,
        studies: Sequence[str],
        cache_dir: Optional[str] = None,
        interval_s: float = 300.0,
    ) -> None:
        self.manager = manager
        self.studies = tuple(studies)
        self.interval_s = float(interval_s)
        self._stamp_path = (
            Path(cache_dir) / STAMP_RELPATH if cache_dir else None
        )
        self._memory_stamp: dict = {}
        self.runs = 0  # completed run_once passes
        self.warmed_total = 0

    # -- stamp persistence -------------------------------------------------

    def _load_stamp(self) -> dict:
        if self._stamp_path is None:
            return self._memory_stamp
        try:
            return json.loads(self._stamp_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def _store_stamp(self, stamp: dict) -> None:
        if self._stamp_path is None:
            self._memory_stamp = stamp
            return
        self._stamp_path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic: a warm pass killed mid-stamp must not leave a truncated
        # stamp that the next start misparses into "everything is cold".
        atomic_write_text(
            self._stamp_path, json.dumps(stamp, indent=2, sort_keys=True)
        )

    # -- warming -----------------------------------------------------------

    async def run_once(self) -> list[str]:
        """One warming pass; returns the names actually (re)computed.

        A study is re-submitted when its current request fingerprint
        differs from the stamped one — i.e. its params, the cache schema
        tags (:func:`~repro.runtime.shard.schema_tags`), or the source
        revision changed since the last warm.  Submissions go through
        the regular job manager, so concurrent client requests for the
        same study coalesce onto the warming computation.
        """
        stamp = self._load_stamp()
        stamped = stamp.get("fingerprints", {})
        current: dict[str, str] = {}
        warmed: list[str] = []
        for name in self.studies:
            query = resolve_request({"study": name})
            current[name] = query.fingerprint()
            if stamped.get(name) == current[name]:
                continue
            job, mode = self.manager.submit(query)
            await job.done.wait()
            if job.state == DONE:
                warmed.append(name)
                logger.info("warm-keeper: %s warmed (%s)", name, mode)
            else:
                # Leave the stamp un-advanced so the next pass retries.
                current[name] = stamped.get(name, "")
                logger.warning("warm-keeper: %s failed: %s", name, job.error)
        self._store_stamp({"schema_tags": schema_tags(), "fingerprints": current})
        self.runs += 1
        self.warmed_total += len(warmed)
        return warmed

    async def run_forever(self) -> None:
        """Warm now, then re-check every ``interval_s`` seconds."""
        while True:
            try:
                await self.run_once()
            except asyncio.CancelledError:
                raise
            except RuntimeError:
                return  # manager draining — service is shutting down
            except Exception:
                logger.exception("warm-keeper pass failed")
            await asyncio.sleep(self.interval_s)

    def stats(self) -> dict:
        return {
            "studies": list(self.studies),
            "interval_s": self.interval_s,
            "runs": self.runs,
            "warmed_total": self.warmed_total,
        }
