"""Client request resolution: submit payloads → runnable, fingerprinted work.

The service accepts two request shapes, mirroring the two things the
CLI can run:

* a **study request** — ``{"study": <registry name>, "params": {...},
  "seed": N}`` — resolved against the registry via
  :func:`repro.studies.pipeline.resolve_study_request`;
* a **sweep request** — ``{"sweep": {<raw sweep config>}}`` — the same
  JSON document ``nvmexplorer <config.json>`` takes, minus the
  ``runtime`` section (execution options belong to the server) and
  ``output_csv`` (results come back over HTTP, not the server's disk).

Both resolve to a query object with one uniform surface: ``kind``,
``name``, ``fingerprint()`` (a stable content key covering the inputs,
the cache schema tags, and the source revision — the coalescing and
memoization key), and ``run(runtime)`` returning a
:class:`~repro.studies.pipeline.StudyOutcome`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.config.schema import parse_config
from repro.core.engine import DSEEngine, SweepSpec
from repro.errors import ReproError
from repro.results.table import ResultTable
from repro.runtime import canonical_json, schema_tags
from repro.runtime.options import RuntimeOptions, ensure_runtime
from repro.runtime.shard import source_digest
from repro.runtime.telemetry import SweepTelemetry
from repro.studies.pipeline import StudyOutcome, StudyRequest, resolve_study_request

#: Keys a sweep payload's config may NOT carry (server-controlled).
_SWEEP_RESERVED = ("runtime", "output_csv")


@dataclass(frozen=True)
class StudyQuery:
    """A registry-study submission (wraps :class:`StudyRequest`)."""

    request: StudyRequest

    kind = "study"

    @property
    def name(self) -> str:
        return self.request.name

    def fingerprint(self) -> str:
        return self.request.fingerprint()

    def run(self, runtime: Optional[RuntimeOptions] = None) -> StudyOutcome:
        return self.request.run(runtime)

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "study": self.request.name,
            "params": dict(self.request.params),
            "seed": self.request.seed,
        }


@dataclass(frozen=True)
class SweepQuery:
    """A raw-sweep submission (the ``nvmexplorer <config.json>`` shape)."""

    raw: Mapping[str, Any]  # validated, reserved keys stripped

    kind = "sweep"

    @property
    def name(self) -> str:
        return str(self.raw.get("name", "unnamed-sweep"))

    def fingerprint(self) -> str:
        """Content key over the canonical config + schema tags + source.

        The raw config (not the parsed form) is hashed: two textually
        different configs that parse identically still coalesce at the
        point level through the engine's own caches, while keeping this
        key cheap and obviously stable.
        """
        payload = {
            "sweep": json.loads(canonical_json(dict(self.raw))),
            "schema_tags": schema_tags(),
            "source": source_digest(),
        }
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def run(self, runtime: Optional[RuntimeOptions] = None) -> StudyOutcome:
        """Run the sweep through the engine under the server's runtime."""
        runtime = ensure_runtime(runtime)
        config = parse_config(self.raw)
        spec = SweepSpec(
            cells=config.cells,
            capacities_bytes=config.capacities_bytes,
            traffic=config.traffic,
            node_nm=config.node_nm,
            sram_node_nm=config.sram_node_nm,
            optimization_targets=config.optimization_targets,
            access_bits=config.access_bits,
            bits_per_cell=config.bits_per_cell,
        )
        telemetry = SweepTelemetry(runtime.progress)
        start = time.perf_counter()
        table: Optional[ResultTable] = None
        error: Optional[str] = None
        try:
            table = DSEEngine.from_options(
                runtime.with_progress(telemetry.emit)
            ).run(spec)
        except ReproError as exc:
            if runtime.on_error != "skip":
                raise
            error = str(exc)
        return StudyOutcome(
            name=self.name,
            table=table,
            telemetry=telemetry,
            elapsed_s=time.perf_counter() - start,
            error=error,
        )

    def describe(self) -> dict:
        return {"kind": self.kind, "sweep": self.name}


ServiceQuery = Union[StudyQuery, SweepQuery]


def resolve_request(payload: Mapping[str, Any]) -> ServiceQuery:
    """Validate one submit payload into a runnable query.

    Raises :class:`~repro.errors.ReproError` (or a subclass, e.g.
    :class:`~repro.errors.ConfigError` from sweep validation) on any
    invalid payload — the HTTP layer maps that to a 400.
    """
    if not isinstance(payload, Mapping):
        raise ReproError("submit payload must be an object")
    if "sweep" in payload:
        unknown = sorted(set(payload) - {"sweep"})
        if unknown:
            raise ReproError(
                f"sweep request: unknown keys {', '.join(unknown)}"
            )
        sweep = payload["sweep"]
        if not isinstance(sweep, Mapping):
            raise ReproError("sweep request: 'sweep' must be a config object")
        reserved = [key for key in _SWEEP_RESERVED if key in sweep]
        if reserved:
            raise ReproError(
                f"sweep request: {', '.join(reserved)} not allowed "
                "(execution options and outputs are server-controlled)"
            )
        raw = dict(sweep)
        parse_config(raw)  # validate now; run() re-parses cheaply
        return SweepQuery(raw=raw)
    return StudyQuery(request=resolve_study_request(payload))
