"""Minimal stdlib HTTP/1.1 layer for the serving front-end.

The service's transport needs are deliberately small — JSON request in,
JSON response out, plus one streaming response shape (server-sent
events) — so instead of adding an HTTP framework dependency this module
implements exactly that subset over ``asyncio`` streams:

* :func:`read_request` parses one request (request line, headers, body
  sized by ``Content-Length``) with hard limits on header and body size.
* :func:`json_response` renders a complete JSON response; rendering is
  deterministic (sorted keys, fixed separators) so byte-identical
  payloads produce byte-identical responses — the property the warm-hit
  acceptance test asserts.
* :func:`sse_headers` / :func:`sse_event` implement the
  ``text/event-stream`` wire format for per-point progress streaming.

Every connection serves exactly one request (``Connection: close``);
clients that want another request open another connection.  That keeps
parsing, draining, and shutdown trivially correct at the cost of a TCP
handshake per call — the right trade for a lab-scale DSE service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional
from urllib.parse import parse_qs, unquote, urlsplit

#: Upper bounds on what one request may carry.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error that maps directly onto an HTTP error response."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)
        self.retry_after = retry_after

    def headers(self) -> dict:
        if self.retry_after is None:
            return {}
        # Retry-After is integer seconds; always at least 1 so clients
        # actually back off.
        return {"Retry-After": str(max(1, int(self.retry_after + 0.999)))}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str  # decoded path, query string stripped
    query: Mapping[str, str] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)  # lower-cased keys
    body: bytes = b""
    peer: str = ""

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body ({exc})") from None


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one HTTP request off ``reader``.

    Returns ``None`` when the peer closed the connection without sending
    anything; raises :class:`HttpError` on malformed or oversized input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except EOFError:
        return None
    except Exception as exc:  # IncompleteReadError, LimitOverrunError
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return None
        data = getattr(exc, "partial", b"")
        if not data:
            return None
        raise HttpError(400, "malformed request head") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, f"malformed header line {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)

    return HttpRequest(
        method=method,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_json(payload: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, fixed separators.

    The result endpoint's byte-identity guarantee rests on this — the
    same payload always renders to the same bytes, across processes and
    server restarts.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A complete HTTP response (headers + body) as bytes."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A complete JSON response as bytes."""
    return response_bytes(status, render_json(payload), extra_headers=extra_headers)


def error_response(error: HttpError) -> bytes:
    return json_response(
        error.status,
        {"error": error.message, "status": error.status},
        extra_headers=error.headers(),
    )


def sse_headers() -> bytes:
    """Response head opening a server-sent-events stream."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-store\r\n"
        b"Connection: close\r\n\r\n"
    )


def sse_event(data: Any, event: Optional[str] = None) -> bytes:
    """One server-sent event frame (``data`` JSON-encoded)."""
    frame = b""
    if event:
        frame += b"event: " + event.encode("utf-8") + b"\n"
    frame += b"data: " + render_json(data) + b"\n\n"
    return frame
