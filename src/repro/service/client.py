"""A dependency-free asyncio client for the DSE service.

Speaks the service's one-request-per-connection HTTP dialect over
``asyncio.open_connection`` — no HTTP client library required — which
makes it usable from the test suite, the shipped example script, and any
asyncio application.  The raw-bytes accessor (:meth:`result_bytes`)
exists specifically so callers can assert the service's byte-identity
guarantee for warm results.

Submission and event streaming tolerate a flaky server: a connection
reset (or HTTP 503) during :meth:`~ServiceClient.submit` is retried with
exponential backoff — safe because submission is fingerprint-idempotent
server-side — and a dropped :meth:`~ServiceClient.events` stream
reconnects and resumes from the server's event replay, skipping the
frames already delivered, so a consumer sees each progress event
exactly once even across a server restart.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Mapping, Optional, Tuple


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str, payload: Any = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


def _retryable(exc: BaseException) -> bool:
    """Is this a transient transport/availability failure worth retrying?"""
    if isinstance(exc, ServiceError):
        return exc.status == 503
    return isinstance(exc, (ConnectionError, asyncio.IncompleteReadError, OSError))


class ServiceClient:
    """Talks to one service instance at ``host:port``.

    ``retries`` bounds how many transient failures (connection reset,
    refused connection, HTTP 503) :meth:`submit` and :meth:`events`
    absorb before propagating; ``retry_backoff_s`` is the base of the
    exponential backoff between attempts.
    """

    def __init__(
        self,
        host: str,
        port: int,
        retries: int = 3,
        retry_backoff_s: float = 0.2,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.retries = max(0, int(retries))
        self.retry_backoff_s = float(retry_backoff_s)

    # -- transport ---------------------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, dict, bytes]:
        """One round trip; returns ``(status, headers, body_bytes)``."""
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: close",
        ]
        if body:
            lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(head + body)
            await writer.drain()
            status, response_headers = await _read_head(reader)
            raw = await reader.read()
            return status, response_headers, raw
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def request_json(
        self,
        method: str,
        path: str,
        payload: Any = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Any:
        status, _, body = await self.request(method, path, payload, headers)
        decoded = json.loads(body.decode("utf-8")) if body else {}
        if status >= 400:
            message = (
                decoded.get("error", "") if isinstance(decoded, dict) else ""
            )
            raise ServiceError(status, message or f"request failed ({status})",
                               payload=decoded)
        return decoded

    # -- API surface -------------------------------------------------------

    async def health(self) -> dict:
        return await self.request_json("GET", "/healthz")

    async def studies(self) -> list:
        return (await self.request_json("GET", "/v1/studies"))["studies"]

    async def submit(
        self,
        payload: Mapping[str, Any],
        client_id: Optional[str] = None,
    ) -> dict:
        """Submit a study/sweep request; returns ``{"job": ..., "submission": ...}``.

        Connection resets and 503s are retried with exponential backoff
        (up to ``self.retries`` times): submission is keyed by content
        fingerprint server-side, so a duplicate delivery coalesces onto
        the same job instead of running twice.
        """
        headers = {"X-Client-Id": client_id} if client_id else None
        attempt = 0
        while True:
            try:
                return await self.request_json(
                    "POST", "/v1/submit", payload, headers
                )
            except Exception as exc:
                attempt += 1
                if not _retryable(exc) or attempt > self.retries:
                    raise
                await asyncio.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))

    async def status(self, job_id: str) -> dict:
        return await self.request_json("GET", f"/v1/jobs/{job_id}")

    async def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_s: float = 0.05,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its status."""
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            status = await self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if deadline is not None and loop.time() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            await asyncio.sleep(poll_s)

    async def result_bytes(self, job_id: str) -> bytes:
        """The raw result body — the byte-identity assertion surface."""
        status, _, body = await self.request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            decoded = json.loads(body.decode("utf-8")) if body else {}
            raise ServiceError(
                status, decoded.get("error", f"result unavailable ({status})"),
                payload=decoded,
            )
        return body

    async def result(self, job_id: str) -> dict:
        return json.loads((await self.result_bytes(job_id)).decode("utf-8"))

    async def events(self, job_id: str) -> AsyncIterator[dict]:
        """Stream the job's server-sent events.

        Yields ``{"event": "progress"|"done", "data": {...}}`` frames;
        returns after the terminal ``done`` frame.

        A connection dropped mid-stream is reconnected (up to
        ``self.retries`` consecutive failures, with backoff): the server
        replays a finished-or-running job's full event log on
        reconnect, so the resumed stream skips the frames already
        delivered and continues exactly where the drop happened.
        """
        delivered = 0  # non-terminal frames already yielded to the caller
        attempt = 0
        while True:
            replayed = 0
            try:
                async for frame in self._events_once(job_id):
                    if frame["event"] == "done":
                        yield frame
                        return
                    replayed += 1
                    if replayed <= delivered:
                        continue  # server replay of a frame we already yielded
                    delivered += 1
                    attempt = 0  # progress proves the server is healthy again
                    yield frame
                # EOF without a terminal frame: the server went away
                # mid-stream; reconnect and resume from its replay.
                raise ConnectionResetError("event stream ended without done")
            except Exception as exc:
                attempt += 1
                if not _retryable(exc) or attempt > self.retries:
                    raise
                await asyncio.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))

    async def _events_once(self, job_id: str) -> AsyncIterator[dict]:
        """One SSE connection's frames, ending at EOF or the done frame."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                (
                    f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status, _ = await _read_head(reader)
            if status != 200:
                body = await reader.read()
                decoded = json.loads(body.decode("utf-8")) if body else {}
                raise ServiceError(
                    status, decoded.get("error", f"stream refused ({status})"),
                    payload=decoded,
                )
            event_name = "message"
            async for line in _iter_lines(reader):
                if line.startswith("event:"):
                    event_name = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data = json.loads(line.split(":", 1)[1].strip())
                    yield {"event": event_name, "data": data}
                    if event_name == "done":
                        return
                    event_name = "message"
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def stats(self) -> dict:
        return await self.request_json("GET", "/v1/stats")

    async def shutdown_server(self) -> dict:
        return await self.request_json("POST", "/v1/shutdown")


async def _read_head(reader) -> Tuple[int, dict]:
    """Parse a response's status line and headers."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    status = int(parts[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    return status, headers


async def _iter_lines(reader) -> AsyncIterator[str]:
    while True:
        raw = await reader.readline()
        if not raw:
            return
        yield raw.decode("utf-8").rstrip("\r\n")
