"""Terminal visualization: ASCII plots and dashboards."""

from repro.viz.ascii import bar_chart, line_chart, scatter
from repro.viz.report import comparison_report, study_report
from repro.viz.dashboard import (
    array_view,
    density_view,
    filter_by_constraints,
    latency_view,
    lifetime_view,
    power_view,
    summary_dashboard,
)

__all__ = [
    "scatter",
    "line_chart",
    "bar_chart",
    "filter_by_constraints",
    "power_view",
    "latency_view",
    "lifetime_view",
    "array_view",
    "density_view",
    "summary_dashboard",
    "study_report",
    "comparison_report",
]
