"""ASCII data visualization.

The paper ships a Tableau dashboard; offline we render the same series as
terminal scatter/line/bar plots.  Good enough to eyeball the crossovers and
orderings every figure is about, and exercised by the examples.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ReproError

_MARKERS = "ox+*#@%&"


def _nice_fmt(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e4 or magnitude < 1e-2:
        return f"{value:.1e}"
    return f"{value:.3g}"


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    if value <= 0:
        raise ReproError("log-scale axes need positive values")
    return math.log10(value)


def scatter(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 70,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render labelled point series on a character grid.

    ``series`` maps a label to its (x, y) points; each series gets its own
    marker, listed in the legend.
    """
    points = [
        (label, x, y)
        for label, pts in series.items()
        for x, y in pts
    ]
    if not points:
        return "(no data)"
    xs = [_transform(x, log_x) for _, x, _ in points]
    ys = [_transform(y, log_y) for _, _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, x, y) in enumerate(points):
        marker = _MARKERS[list(series).index(label) % len(_MARKERS)]
        cx = int((_transform(x, log_x) - x_lo) / x_span * (width - 1))
        cy = int((_transform(y, log_y) - y_lo) / y_span * (height - 1))
        row = height - 1 - cy
        if grid[row][cx] not in (" ", marker):
            grid[row][cx] = "?"  # collision between different series
        else:
            grid[row][cx] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_text = _nice_fmt(10**y_hi if log_y else y_hi)
    y_lo_text = _nice_fmt(10**y_lo if log_y else y_lo)
    lines.append(f"{y_label} ^  (top={y_hi_text}, bottom={y_lo_text}"
                 f"{', log' if log_y else ''})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + f"> {x_label}"
                 f"{' (log)' if log_x else ''}")
    x_lo_text = _nice_fmt(10**x_lo if log_x else x_lo)
    x_hi_text = _nice_fmt(10**x_hi if log_x else x_hi)
    lines.append(f"  x: {x_lo_text} .. {x_hi_text}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    log: bool = False,
) -> str:
    """Horizontal bars, one per labelled value."""
    if not values:
        return "(no data)"
    items = list(values.items())
    transformed = [_transform(v, log) for _, v in items if v is not None]
    if not transformed:
        return "(no data)"
    lo = min(0.0, min(transformed)) if not log else min(transformed)
    hi = max(transformed)
    span = (hi - lo) or 1.0
    label_width = max(len(k) for k, _ in items)
    lines = [title] if title else []
    for key, value in items:
        if value is None:
            lines.append(f"{key:<{label_width}} | (n/a)")
            continue
        filled = int((_transform(value, log) - lo) / span * width)
        lines.append(
            f"{key:<{label_width}} |{'#' * filled:<{width}} {_nice_fmt(value)}"
        )
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    **kwargs,
) -> str:
    """Alias of :func:`scatter` — per-series markers trace the lines."""
    return scatter(series, **kwargs)
