"""Text dashboards over result tables.

The interactive-dashboard equivalent for a terminal: given a
:class:`~repro.results.ResultTable` of evaluations, render the standard
NVMExplorer views (power vs. read rate, latency vs. write rate, lifetime,
array characteristics) and apply the same constraint filters the web tool
exposes.
"""

from __future__ import annotations

from typing import Optional

from repro.results.table import ResultTable
from repro.viz.ascii import bar_chart, scatter


def filter_by_constraints(
    table: ResultTable,
    max_power_mw: Optional[float] = None,
    max_latency_s_per_s: Optional[float] = None,
    min_lifetime_years: Optional[float] = None,
    max_area_mm2: Optional[float] = None,
    feasible_only: bool = True,
) -> ResultTable:
    """The dashboard's constraint panel: drop rows violating any bound."""

    def keep(row: dict) -> bool:
        if feasible_only and row.get("feasible") is False:
            return False
        if max_power_mw is not None and (row.get("total_power_mw") or 0) > max_power_mw:
            return False
        if max_latency_s_per_s is not None:
            latency = row.get("memory_latency_s_per_s")
            if latency is not None and latency > max_latency_s_per_s:
                return False
        if min_lifetime_years is not None:
            lifetime = row.get("lifetime_years")
            if lifetime is not None and lifetime < min_lifetime_years:
                return False
        if max_area_mm2 is not None and (row.get("area_mm2") or 0) > max_area_mm2:
            return False
        return True

    return table.filter(keep)


def _series(table: ResultTable, x: str, y: str, by: str) -> dict:
    """Collect (x, y) series grouped by a column.

    Non-positive values are dropped: every dashboard view draws on log
    axes, and zero-rate points (e.g. a read-only workload's write rate)
    simply have nothing to show there.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for row in table:
        xv, yv = row.get(x), row.get(y)
        if xv is None or yv is None:
            continue
        if not (isinstance(xv, (int, float)) and isinstance(yv, (int, float))):
            continue
        if xv <= 0 or yv <= 0:
            continue
        series.setdefault(str(row.get(by, "all")), []).append((xv, yv))
    return {label: pts for label, pts in series.items() if pts}


def power_view(table: ResultTable, by: str = "cell") -> str:
    """Total memory power vs. read access rate (Figure 8/9 left)."""
    return scatter(
        _series(table, "reads_per_s", "total_power_mw", by),
        x_label="reads/s",
        y_label="power [mW]",
        log_x=True,
        log_y=True,
        title="Total memory power vs read traffic",
    )


def latency_view(table: ResultTable, by: str = "cell") -> str:
    """Aggregate memory latency vs. write access rate (Figure 8/9 middle)."""
    return scatter(
        _series(table, "writes_per_s", "memory_latency_s_per_s", by),
        x_label="writes/s",
        y_label="latency [s/s]",
        log_x=True,
        log_y=True,
        title="Total memory latency vs write traffic",
    )


def lifetime_view(table: ResultTable, by: str = "cell") -> str:
    """Projected lifetime vs. write access rate (Figure 8/9 right)."""
    rows = table.filter(lambda r: r.get("lifetime_years") is not None)
    return scatter(
        _series(rows, "writes_per_s", "lifetime_years", by),
        x_label="writes/s",
        y_label="lifetime [y]",
        log_x=True,
        log_y=True,
        title="Projected memory lifetime vs write traffic",
    )


def array_view(table: ResultTable, by: str = "cell") -> str:
    """Read energy vs. read latency for arrays (Figure 3/5/10 style)."""
    return scatter(
        _series(table, "read_latency_ns", "read_energy_pj", by),
        x_label="read latency [ns]",
        y_label="read energy [pJ]",
        log_x=True,
        log_y=True,
        title="Array read characteristics",
    )


def density_view(table: ResultTable) -> str:
    """Storage density bars per cell."""
    best: dict[str, float] = {}
    for row in table:
        cell = str(row.get("cell"))
        density = row.get("density_mbit_mm2")
        if density is not None:
            best[cell] = max(best.get(cell, 0.0), density)
    return bar_chart(best, title="Storage density [Mbit/mm^2]", log=False)


def summary_dashboard(table: ResultTable) -> str:
    """All standard views stacked, like the web dashboard's landing page."""
    views = [power_view(table), latency_view(table), lifetime_view(table),
             array_view(table), density_view(table)]
    return "\n\n".join(views)
