"""Markdown report generation for studies.

Produces self-contained markdown documents (tables + ASCII charts in code
fences) from study result tables — the offline stand-in for sharing a
dashboard link.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.results.table import ResultTable
from repro.viz.ascii import bar_chart
from repro.viz.dashboard import (
    array_view,
    latency_view,
    lifetime_view,
    power_view,
)


def _fence(text: str) -> str:
    return "```\n" + text + "\n```"


def study_report(
    title: str,
    table: ResultTable,
    description: str = "",
    include_views: Sequence[str] = ("power", "latency", "lifetime", "array"),
    winner_column: Optional[str] = "total_power_mw",
    group_column: str = "workload",
    figure: Optional[str] = None,
) -> str:
    """Render a study into a markdown report.

    Includes the standard dashboard views, a winners-per-group table when
    ``winner_column`` is set, and the full data as a markdown table.
    ``figure`` tags the paper figure the study reproduces.
    """
    sections: list[str] = [f"# {title}", ""]
    if figure:
        sections += [f"*Reproduces paper {figure}.*", ""]
    if description:
        sections += [description, ""]
    sections.append(f"*{len(table)} evaluation rows.*\n")

    view_builders = {
        "power": power_view,
        "latency": latency_view,
        "lifetime": lifetime_view,
        "array": array_view,
    }
    for name in include_views:
        builder = view_builders.get(name)
        if builder is None:
            continue
        rendered = builder(table)
        if "(no data)" in rendered:
            continue
        sections += [f"## {name.title()} view", "", _fence(rendered), ""]

    if winner_column and group_column in table.columns:
        sections += ["## Winners", ""]
        winners = {}
        for group in table.unique(group_column):
            rows = table.where(**{group_column: group}).filter(
                lambda r: r.get(winner_column) is not None
            )
            if rows:
                best = rows.min_by(winner_column)
                winners[str(group)] = (
                    f"{best.get('cell', '?')} ({best[winner_column]:.4g})"
                )
        lines = [f"| {group_column} | winner ({winner_column}) |", "|---|---|"]
        lines += [f"| {g} | {w} |" for g, w in winners.items()]
        sections += lines + [""]

    sections += ["## Data", "", table.to_markdown(), ""]
    return "\n".join(sections)


def comparison_report(
    title: str,
    values: dict[str, float],
    unit: str,
    log: bool = False,
) -> str:
    """A one-chart markdown report comparing labelled scalars."""
    chart = bar_chart(values, title=f"{title} [{unit}]", log=log)
    return "\n".join([f"# {title}", "", _fence(chart), ""])
