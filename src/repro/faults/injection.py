"""Application-level fault injection (the paper's Ares-derived tool).

Corrupts application data the way the storage would: quantize to the stored
format, slice the bits across cells, flip cell levels with the fault model's
probability, decode, and hand the damaged tensor back to the application.
MLC level errors are modelled as +-1 level excursions over a Gray-coded
mapping, so a single cell error usually damages a single bit — exactly what
multi-level sensing margin analysis predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import FaultModelError
from repro.faults.encodings import (
    QuantizedTensor,
    cells_to_bits,
    from_bit_array,
    quantize_int8,
    slice_into_cells,
    to_bit_array,
)
from repro.faults.models import FaultModel

_GRAY_2BIT = np.array([0b00, 0b01, 0b11, 0b10], dtype=np.int64)
_GRAY_2BIT_INVERSE = np.argsort(_GRAY_2BIT)

#: Ceiling on the (trials x cells) error matrix drawn in one RNG call by
#: :func:`inject_trials`; larger jobs draw in trial chunks so peak memory
#: stays bounded regardless of the trial count.
_MAX_BATCH_ELEMENTS = 1 << 24


def _corrupt_levels(
    levels: np.ndarray,
    errors: np.ndarray,
    bits_per_cell: int,
    rng: np.random.Generator,
) -> None:
    """Apply the cell-level error process to ``levels`` in place.

    ``errors`` is a boolean mask of the same shape.  1-bit cells flip;
    Gray-coded MLC levels drift +-1 with equal probability (clamped at the
    window edges), so most cell errors cost one bit.
    """
    n_errors = int(np.count_nonzero(errors))
    if not n_errors:
        return
    if bits_per_cell == 1:
        levels[errors] ^= 1
    else:
        gray = _GRAY_2BIT_INVERSE[levels[errors]]
        step = rng.choice([-1, 1], size=n_errors)
        drifted = np.clip(gray + step, 0, (1 << bits_per_cell) - 1)
        levels[errors] = _GRAY_2BIT[drifted]


def inject_bits(
    bits: np.ndarray,
    cell_error_rate: float,
    bits_per_cell: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Corrupt a flat bit array through the cell-level error process."""
    if not 0.0 <= cell_error_rate <= 1.0:
        raise FaultModelError("cell_error_rate must be a probability")
    n_bits = bits.size
    levels = slice_into_cells(bits, bits_per_cell)
    errors = rng.random(levels.size) < cell_error_rate
    if not errors.any():
        return bits.copy()
    corrupted = levels.copy()
    _corrupt_levels(corrupted, errors, bits_per_cell, rng)
    return cells_to_bits(corrupted, bits_per_cell, n_bits)


@dataclass
class InjectionResult:
    """One fault-injection trial's outcome."""

    corrupted: np.ndarray  # same shape/dtype family as the input tensor
    n_cell_errors: int
    n_bit_flips: int


class FaultInjector:
    """Injects storage faults into float tensors via int8 quantization."""

    def __init__(self, model: FaultModel, seed: int = 0) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def inject(self, tensor: np.ndarray) -> InjectionResult:
        """One trial: quantize, corrupt, dequantize."""
        return inject_trials([tensor], self.model, trials=1, rng=self._rng)[0][0]

    def inject_many(
        self, tensors: Sequence[np.ndarray]
    ) -> list[InjectionResult]:
        """Independently corrupt a list of tensors (e.g. per-layer weights).

        All tensors share one batched RNG draw (their cells are corrupted
        as a single concatenated array) instead of one draw per tensor.
        """
        return inject_trials(tensors, self.model, trials=1, rng=self._rng)[0]


def inject_trials(
    tensors: Sequence[np.ndarray],
    model: FaultModel,
    trials: int,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> list[list[InjectionResult]]:
    """Corrupt a tensor set across ``trials`` independent trials at once.

    The quantize/bit-slice step runs once per tensor; the error draws for
    every (trial, cell) happen in one batched RNG call over the
    concatenated cell array, replacing the per-trial ``FaultInjector``
    instantiation of the serial path.  Returns one result list (matching
    ``tensors``) per trial; ``n_cell_errors`` counts cells whose stored
    level actually changed.
    """
    if trials < 1:
        raise FaultModelError("need at least one trial")
    if rng is None:
        rng = np.random.default_rng(seed)
    rate = model.cell_error_rate
    bits_per_cell = model.bits_per_cell
    if not 0.0 <= rate <= 1.0:
        raise FaultModelError("cell_error_rate must be a probability")
    if bits_per_cell > 2:
        raise FaultModelError(
            "level drift is modelled for 1- and 2-bit cells only")

    arrays = [np.asarray(t) for t in tensors]
    quantized = [quantize_int8(t) for t in arrays]
    bit_arrays = [to_bit_array(q.values) for q in quantized]
    level_arrays = [slice_into_cells(b, bits_per_cell) for b in bit_arrays]
    if not level_arrays:
        return [[] for _ in range(trials)]
    boundaries = np.cumsum([lv.size for lv in level_arrays])[:-1]
    levels = np.concatenate(level_arrays)
    original_splits = np.split(levels, boundaries)

    # Draw errors for as many trials at once as fits the element budget
    # (all of them, for typical weight sets); huge tensors degrade to
    # per-trial draws from the same generator rather than blowing up peak
    # memory by a factor of ``trials``.
    chunk = max(1, min(trials, _MAX_BATCH_ELEMENTS // max(1, levels.size)))
    out: list[list[InjectionResult]] = []
    while len(out) < trials:
        n_chunk = min(chunk, trials - len(out))
        corrupted = np.broadcast_to(levels, (n_chunk, levels.size)).copy()
        errors = rng.random(corrupted.shape) < rate
        _corrupt_levels(corrupted, errors, bits_per_cell, rng)

        for trial in range(n_chunk):
            per_tensor = np.split(corrupted[trial], boundaries)
            results = []
            for source, q, bits, damaged_levels, original_levels in zip(
                arrays, quantized, bit_arrays, per_tensor, original_splits,
            ):
                damaged_bits = cells_to_bits(
                    damaged_levels, bits_per_cell, bits.size)
                damaged_values = from_bit_array(damaged_bits, q.values.shape)
                damaged = QuantizedTensor(
                    values=damaged_values, scale=q.scale)
                results.append(InjectionResult(
                    corrupted=damaged.dequantize().astype(
                        source.dtype, copy=False),
                    n_cell_errors=int(
                        np.count_nonzero(damaged_levels != original_levels)),
                    n_bit_flips=int(np.count_nonzero(damaged_bits != bits)),
                ))
            out.append(results)
    return out


def accuracy_under_faults(
    evaluate_with_weights: Callable[[Sequence[np.ndarray]], float],
    weights: Sequence[np.ndarray],
    model: FaultModel,
    trials: int = 5,
    seed: int = 0,
) -> float:
    """Mean task accuracy across fault-injection trials.

    ``evaluate_with_weights`` maps a full weight set to a task accuracy;
    this is the integration point with :mod:`repro.dnn` (and, in the paper,
    with PyTorch/snap).  Fault draws are batched through
    :func:`inject_trials` in trial chunks sized to the element budget, so
    corrupted weight copies are evaluated and released chunk by chunk
    instead of all trials being resident at once; only the evaluation
    callback runs per trial.
    """
    if trials < 1:
        raise FaultModelError("need at least one trial")
    total_values = sum(int(np.asarray(w).size) for w in weights)
    chunk = max(1, min(trials, _MAX_BATCH_ELEMENTS // max(1, 8 * total_values)))
    rng = np.random.default_rng(seed)
    accuracies = []
    while len(accuracies) < trials:
        n_chunk = min(chunk, trials - len(accuracies))
        for trial_results in inject_trials(weights, model, n_chunk, rng=rng):
            accuracies.append(
                evaluate_with_weights([r.corrupted for r in trial_results]))
    return float(np.mean(accuracies))
