"""Application-level fault injection (the paper's Ares-derived tool).

Corrupts application data the way the storage would: quantize to the stored
format, slice the bits across cells, flip cell levels with the fault model's
probability, decode, and hand the damaged tensor back to the application.
MLC level errors are modelled as +-1 level excursions over a Gray-coded
mapping, so a single cell error usually damages a single bit — exactly what
multi-level sensing margin analysis predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import FaultModelError
from repro.faults.encodings import (
    QuantizedTensor,
    cells_to_bits,
    from_bit_array,
    quantize_int8,
    slice_into_cells,
    to_bit_array,
)
from repro.faults.models import FaultModel

_GRAY_2BIT = np.array([0b00, 0b01, 0b11, 0b10], dtype=np.int64)
_GRAY_2BIT_INVERSE = np.argsort(_GRAY_2BIT)


def inject_bits(
    bits: np.ndarray,
    cell_error_rate: float,
    bits_per_cell: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Corrupt a flat bit array through the cell-level error process."""
    if not 0.0 <= cell_error_rate <= 1.0:
        raise FaultModelError("cell_error_rate must be a probability")
    n_bits = bits.size
    levels = slice_into_cells(bits, bits_per_cell)
    n_cells = levels.size
    errors = rng.random(n_cells) < cell_error_rate
    n_errors = int(errors.sum())
    if n_errors == 0:
        return bits.copy()

    corrupted = levels.copy()
    if bits_per_cell == 1:
        corrupted[errors] ^= 1
    else:
        # Gray-coded levels drift +-1 with equal probability (clamped at the
        # window edges), so most cell errors cost one bit.
        gray = _GRAY_2BIT_INVERSE[corrupted[errors]]
        step = rng.choice([-1, 1], size=n_errors)
        drifted = np.clip(gray + step, 0, (1 << bits_per_cell) - 1)
        corrupted[errors] = _GRAY_2BIT[drifted]
    return cells_to_bits(corrupted, bits_per_cell, n_bits)


@dataclass
class InjectionResult:
    """One fault-injection trial's outcome."""

    corrupted: np.ndarray  # same shape/dtype family as the input tensor
    n_cell_errors: int
    n_bit_flips: int


class FaultInjector:
    """Injects storage faults into float tensors via int8 quantization."""

    def __init__(self, model: FaultModel, seed: int = 0) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def inject(self, tensor: np.ndarray) -> InjectionResult:
        """One trial: quantize, corrupt, dequantize."""
        quantized = quantize_int8(tensor)
        shape = quantized.values.shape
        bits = to_bit_array(quantized.values)
        damaged_bits = inject_bits(
            bits, self.model.cell_error_rate, self.model.bits_per_cell, self._rng
        )
        n_flips = int(np.count_nonzero(bits != damaged_bits))
        damaged_values = from_bit_array(damaged_bits, shape)
        damaged = QuantizedTensor(values=damaged_values, scale=quantized.scale)
        # Cell errors are not directly observable post-decode; report the
        # bit damage and approximate cell errors by it (>= flips / bits_per_cell).
        return InjectionResult(
            corrupted=damaged.dequantize().astype(tensor.dtype, copy=False),
            n_cell_errors=max(
                n_flips // max(1, self.model.bits_per_cell), int(n_flips > 0)
            ) if n_flips else 0,
            n_bit_flips=n_flips,
        )

    def inject_many(
        self, tensors: Sequence[np.ndarray]
    ) -> list[InjectionResult]:
        """Independently corrupt a list of tensors (e.g. per-layer weights)."""
        return [self.inject(t) for t in tensors]


def accuracy_under_faults(
    evaluate_with_weights: Callable[[Sequence[np.ndarray]], float],
    weights: Sequence[np.ndarray],
    model: FaultModel,
    trials: int = 5,
    seed: int = 0,
) -> float:
    """Mean task accuracy across fault-injection trials.

    ``evaluate_with_weights`` maps a full weight set to a task accuracy;
    this is the integration point with :mod:`repro.dnn` (and, in the paper,
    with PyTorch/snap).
    """
    if trials < 1:
        raise FaultModelError("need at least one trial")
    accuracies = []
    for trial in range(trials):
        injector = FaultInjector(model, seed=seed + trial)
        damaged = [r.corrupted for r in injector.inject_many(weights)]
        accuracies.append(evaluate_with_weights(damaged))
    return float(np.mean(accuracies))
