"""Error-correcting-code models for eNVM storage.

The paper's reliability studies cite error mitigation (MaxNVM-style) as the
lever that makes dense-but-faulty storage usable.  This module provides
analytical models of the standard on-chip schemes:

* :data:`SECDED_64` — Hamming SEC-DED over 64-bit words (72,64),
* :data:`DECTED_64` — double-error-correcting BCH over 64-bit words,
* parameterized :class:`ECCScheme` for custom codes.

Given a raw per-bit error probability, :meth:`ECCScheme.corrected_ber`
computes the post-correction word-failure-driven bit error rate (binomial
tail of >t errors in an n-bit codeword), and
:meth:`ECCScheme.effective_density_factor` accounts for the parity storage
overhead — so the MLC density-vs-reliability trade of Figure 13 can be
re-examined with correction in the loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FaultModelError


@dataclass(frozen=True)
class ECCScheme:
    """An (n, k) block code correcting up to ``t`` bit errors per word."""

    name: str
    data_bits: int  # k
    code_bits: int  # n
    correctable: int  # t

    def __post_init__(self) -> None:
        if self.data_bits <= 0 or self.code_bits <= self.data_bits:
            raise FaultModelError(f"{self.name}: need code_bits > data_bits > 0")
        if self.correctable < 0:
            raise FaultModelError(f"{self.name}: correctable must be >= 0")

    @property
    def overhead(self) -> float:
        """Parity overhead as a fraction of data bits."""
        return (self.code_bits - self.data_bits) / self.data_bits

    def effective_density_factor(self) -> float:
        """Usable-density multiplier once parity is stored (< 1)."""
        return self.data_bits / self.code_bits

    def word_failure_probability(self, raw_ber: float) -> float:
        """Probability a codeword has more errors than the code corrects."""
        if not 0.0 <= raw_ber <= 1.0:
            raise FaultModelError("raw_ber must be a probability")
        if raw_ber == 0.0:
            return 0.0
        n, t = self.code_bits, self.correctable
        # P(X > t) with X ~ Binomial(n, p); sum the complement.
        p_ok = 0.0
        for errors in range(t + 1):
            p_ok += (
                math.comb(n, errors)
                * raw_ber**errors
                * (1.0 - raw_ber) ** (n - errors)
            )
        return max(0.0, 1.0 - p_ok)

    def corrected_ber(self, raw_ber: float) -> float:
        """Post-correction effective bit error rate.

        When a word fails, roughly ``t + 1`` bits are wrong (the code fixed
        none of them and may miscorrect); spread over the word's data bits.
        """
        p_fail = self.word_failure_probability(raw_ber)
        wrong_bits = min(self.correctable + 1, self.data_bits)
        return min(1.0, p_fail * wrong_bits / self.data_bits)

    def access_energy_factor(self) -> float:
        """Dynamic-energy multiplier: parity bits are read/written too."""
        return self.code_bits / self.data_bits


#: No correction (the baseline of every study).
NO_ECC = ECCScheme(name="none", data_bits=64, code_bits=65, correctable=0)
# (code_bits=65 would be a parity bit; to model truly-no-ECC use factor
#  helpers below instead.)

#: Hamming SEC-DED (72, 64): fixes any single bit error per 64-bit word.
SECDED_64 = ECCScheme(name="SECDED-72,64", data_bits=64, code_bits=72, correctable=1)

#: Shortened BCH DEC-TED (78, 64): fixes two bit errors per word.
DECTED_64 = ECCScheme(name="DECTED-78,64", data_bits=64, code_bits=78, correctable=2)

SCHEMES: dict[str, ECCScheme] = {
    "secded": SECDED_64,
    "dected": DECTED_64,
}


def scheme_by_name(name: str) -> ECCScheme:
    try:
        return SCHEMES[name.strip().lower()]
    except KeyError:
        raise FaultModelError(
            f"unknown ECC scheme {name!r} (known: {sorted(SCHEMES)})"
        ) from None


def required_scheme(raw_ber: float, target_ber: float) -> ECCScheme | None:
    """The weakest standard scheme achieving ``target_ber``, or None.

    Returns ``None`` when no correction is needed, raises when even DEC-TED
    cannot reach the target.
    """
    if raw_ber <= target_ber:
        return None
    for scheme in (SECDED_64, DECTED_64):
        if scheme.corrected_ber(raw_ber) <= target_ber:
            return scheme
    raise FaultModelError(
        f"no standard scheme corrects raw BER {raw_ber:.2e} to {target_ber:.2e}"
    )
