"""Technology-specific fault models (Section II-B2).

The paper derives fault characteristics from SPICE-level modelling for the
technologies with sufficient published circuit data — RRAM, CTT, and FeFET —
distinguishing single-level from two-bit multi-level programming.  The
driving physics encoded here:

* **SLC** storage is robust for all three (raw bit error rates ~1e-7..1e-6).
* **MLC RRAM / CTT** squeeze four levels into the same resistance window:
  error rates rise to the ~1e-4 regime but remain tolerable for
  error-resilient workloads (this is the paper's "image classification is
  robust to 2-bit MLC RRAM" result).
* **MLC FeFET** is limited by device-to-device threshold-voltage variation,
  which *grows as cells shrink*; only large-area FeFET cells program four
  levels reliably (Figure 13's headline).  We model sigma_vt ~ 1/sqrt(area),
  so the level-confusion probability falls off steeply with cell area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cells.base import CellTechnology, TechnologyClass
from repro.errors import FaultModelError

#: Technologies with enough circuit-level data to build fault models
#: (exactly the subset the paper uses).
FAULT_MODELLED_TECHNOLOGIES = (
    TechnologyClass.RRAM,
    TechnologyClass.CTT,
    TechnologyClass.FEFET,
)

#: Reference cell area for the FeFET variation model, F^2.
_FEFET_REFERENCE_AREA = 40.0
#: MLC FeFET cell-error rate at the reference area.
_FEFET_REFERENCE_MLC_BER = 1.5e-4


@dataclass(frozen=True)
class FaultModel:
    """Per-cell error probability for one (technology, levels) pair.

    ``cell_error_rate`` is the probability a cell reads back at a wrong
    level.  For SLC that is one flipped bit; for MLC the decoder maps one
    level error into (mostly) one-bit damage via Gray coding, which the
    injector models.
    """

    tech_class: TechnologyClass
    bits_per_cell: int
    cell_error_rate: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.cell_error_rate <= 1.0:
            raise FaultModelError("cell_error_rate must be a probability")
        if self.bits_per_cell < 1:
            raise FaultModelError("bits_per_cell must be >= 1")


def fefet_mlc_error_rate(area_f2: float) -> float:
    """MLC FeFET cell-error rate as a function of cell area.

    Threshold-voltage variation scales like 1/sqrt(area); the probability
    of crossing into a neighboring level is exponential in the margin over
    sigma, giving a steep area dependence: large cells are reliable, small
    cells are not.
    """
    if area_f2 <= 0:
        raise FaultModelError("cell area must be positive")
    sigma_ratio = math.sqrt(_FEFET_REFERENCE_AREA / area_f2)
    # Error rate at reference corresponds to a margin of ~3.6 sigma.
    reference_margin = 3.6
    margin = reference_margin / sigma_ratio
    # Gaussian tail approximation, normalized to the reference BER.
    rate = _FEFET_REFERENCE_MLC_BER * math.exp(
        0.5 * (reference_margin**2 - margin**2)
    )
    return min(0.5, rate)


def fault_model_for(cell: CellTechnology, bits_per_cell: int = 1) -> FaultModel:
    """Build the fault model for ``cell`` at the given MLC depth.

    Raises
    ------
    FaultModelError
        For technologies without published circuit data to model (the paper
        models RRAM, CTT, and FeFET only), or unsupported level counts.
    """
    tech = cell.tech_class
    if tech not in FAULT_MODELLED_TECHNOLOGIES:
        raise FaultModelError(
            f"no fault model for {tech.value}: the framework (like the paper) "
            "models RRAM, CTT, and FeFET"
        )
    if bits_per_cell not in (1, 2):
        raise FaultModelError("fault models cover 1- and 2-bit cells")

    if tech is TechnologyClass.RRAM:
        rate = 1e-7 if bits_per_cell == 1 else 2e-4
        why = "resistance-window partitioning"
    elif tech is TechnologyClass.CTT:
        rate = 1e-7 if bits_per_cell == 1 else 3e-4
        why = "charge-trap level spacing"
    else:  # FeFET
        if bits_per_cell == 1:
            rate = min(0.5, 1e-6 * (_FEFET_REFERENCE_AREA / cell.area_f2) ** 0.5)
        else:
            rate = fefet_mlc_error_rate(cell.area_f2)
        why = f"device-to-device variation at {cell.area_f2:g} F^2"

    return FaultModel(
        tech_class=tech,
        bits_per_cell=bits_per_cell,
        cell_error_rate=rate,
        description=f"{tech.value} {bits_per_cell}-bit: {why}",
    )
