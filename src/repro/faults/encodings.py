"""Storage encodings and bit-level views of application data.

Fault injection operates on the *stored* representation: weights are
quantized to the storage format (int8 by default), viewed as bits, sliced
across memory cells (2 bits per cell for MLC), corrupted, and decoded back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultModelError


@dataclass(frozen=True)
class QuantizedTensor:
    """An int8-quantized tensor with its dequantization scale."""

    values: np.ndarray  # int8
    scale: float

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float32) * self.scale


def quantize_int8(tensor: np.ndarray) -> QuantizedTensor:
    """Symmetric linear quantization to int8."""
    tensor = np.asarray(tensor, dtype=np.float32)
    peak = float(np.max(np.abs(tensor))) if tensor.size else 0.0
    scale = peak / 127.0 if peak > 0 else 1.0
    values = np.clip(np.round(tensor / scale), -127, 127).astype(np.int8)
    return QuantizedTensor(values=values, scale=scale)


def to_bit_array(values: np.ndarray) -> np.ndarray:
    """View an int8 array as a flat bit array (uint8 of 0/1), MSB first."""
    as_u8 = values.astype(np.int8).view(np.uint8)
    return np.unpackbits(as_u8.reshape(-1, 1), axis=1, bitorder="big").reshape(-1)

def from_bit_array(bits: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`to_bit_array`."""
    if bits.size % 8 != 0:
        raise FaultModelError("bit array length must be a multiple of 8")
    packed = np.packbits(bits.reshape(-1, 8), axis=1, bitorder="big").reshape(-1)
    return packed.view(np.int8).reshape(shape)


def slice_into_cells(bits: np.ndarray, bits_per_cell: int) -> np.ndarray:
    """Group a flat bit array into cells of ``bits_per_cell`` bits.

    Returns an integer array of cell levels, shape (n_cells,).  Pads with
    zero bits when the length is not a multiple (the pad never decodes back
    into data).
    """
    if bits_per_cell < 1:
        raise FaultModelError("bits_per_cell must be >= 1")
    remainder = bits.size % bits_per_cell
    if remainder:
        bits = np.concatenate([bits, np.zeros(bits_per_cell - remainder, dtype=bits.dtype)])
    grouped = bits.reshape(-1, bits_per_cell)
    weights = 1 << np.arange(bits_per_cell - 1, -1, -1)
    return (grouped * weights).sum(axis=1)


def cells_to_bits(levels: np.ndarray, bits_per_cell: int, n_bits: int) -> np.ndarray:
    """Inverse of :func:`slice_into_cells`, truncated to ``n_bits``."""
    if bits_per_cell < 1:
        raise FaultModelError("bits_per_cell must be >= 1")
    shifts = np.arange(bits_per_cell - 1, -1, -1)
    bits = ((levels.reshape(-1, 1) >> shifts) & 1).astype(np.uint8).reshape(-1)
    return bits[:n_bits]
