"""Fault modelling and application-level fault injection."""

from repro.faults.encodings import (
    QuantizedTensor,
    cells_to_bits,
    from_bit_array,
    quantize_int8,
    slice_into_cells,
    to_bit_array,
)
from repro.faults.ecc import (
    DECTED_64,
    SECDED_64,
    ECCScheme,
    required_scheme,
    scheme_by_name,
)
from repro.faults.injection import (
    FaultInjector,
    InjectionResult,
    accuracy_under_faults,
    inject_bits,
    inject_trials,
)
from repro.faults.models import (
    FAULT_MODELLED_TECHNOLOGIES,
    FaultModel,
    fault_model_for,
    fefet_mlc_error_rate,
)

__all__ = [
    "QuantizedTensor",
    "quantize_int8",
    "to_bit_array",
    "from_bit_array",
    "slice_into_cells",
    "cells_to_bits",
    "FaultModel",
    "fault_model_for",
    "fefet_mlc_error_rate",
    "FAULT_MODELLED_TECHNOLOGIES",
    "FaultInjector",
    "InjectionResult",
    "inject_bits",
    "inject_trials",
    "accuracy_under_faults",
    "ECCScheme",
    "SECDED_64",
    "DECTED_64",
    "scheme_by_name",
    "required_scheme",
]
