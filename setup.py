"""Setuptools shim.

This environment has no ``wheel`` package and no network, so PEP 660
editable installs (which need ``bdist_wheel``) fail.  Keeping a setup.py
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
