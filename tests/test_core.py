"""Cross-stack engine tests: metrics, intermittent, write buffers, DSE."""


import pytest

from repro.cells import TechnologyClass, sram_cell, tentpoles_for
from repro.core import (
    DSEEngine,
    SweepSpec,
    WriteBufferConfig,
    buffered_traffic,
    coalescing_factor,
    crossover_rate,
    evaluate,
    evaluate_intermittent,
    evaluate_with_buffer,
    knee_point,
    lifetime_seconds,
    pareto_front,
    retention_ok,
    wake_energy,
    wake_latency,
)
from repro.core.metrics import CONTROLLER_POWER_PER_BYTE
from repro.errors import CharacterizationError, EvaluationError
from repro.nvsim import OptimizationTarget, characterize
from repro.traffic import RESNET26, TrafficPattern
from repro.units import mb


class TestEvaluate:
    def test_power_decomposition(self, stt_array_1mb, simple_traffic):
        ev = evaluate(stt_array_1mb, simple_traffic)
        assert ev.total_power == pytest.approx(ev.dynamic_power + ev.leakage_power)
        controller = CONTROLLER_POWER_PER_BYTE * stt_array_1mb.capacity_bytes
        assert ev.leakage_power == pytest.approx(
            stt_array_1mb.leakage_power + controller
        )

    def test_dynamic_power_linear_in_rates(self, stt_array_1mb):
        t1 = TrafficPattern("a", 1e6, 1e4)
        t2 = TrafficPattern("b", 2e6, 2e4)
        e1 = evaluate(stt_array_1mb, t1)
        e2 = evaluate(stt_array_1mb, t2)
        assert e2.dynamic_power == pytest.approx(2 * e1.dynamic_power)

    def test_wide_accesses_scale_array_accesses(self, stt_array_1mb):
        # 64-byte application accesses against an 8-byte array port.
        narrow = TrafficPattern("n", 1e6, 0.0, access_bytes=8)
        wide = TrafficPattern("w", 1e6, 0.0, access_bytes=64)
        assert evaluate(stt_array_1mb, wide).dynamic_power == pytest.approx(
            8 * evaluate(stt_array_1mb, narrow).dynamic_power
        )

    def test_latency_aggregation(self, stt_array_1mb):
        t = TrafficPattern("l", 1e8, 1e6)
        ev = evaluate(stt_array_1mb, t)
        expected = (
            1e8 * stt_array_1mb.read_latency + 1e6 * stt_array_1mb.write_latency
        ) / stt_array_1mb.organization.concurrency
        assert ev.memory_latency_per_second == pytest.approx(expected)
        assert ev.slowdown == max(1.0, expected)

    def test_overloaded_memory_slows_down(self, stt_array_1mb):
        t = TrafficPattern("overload", 1e12, 0.0)
        ev = evaluate(stt_array_1mb, t)
        assert ev.slowdown > 1.0
        assert not ev.read_bandwidth_ok

    def test_energy_per_task(self, stt_array_1mb):
        t = TrafficPattern("task", 1e6, 0.0, reads_per_task=1000, writes_per_task=10)
        ev = evaluate(stt_array_1mb, t)
        expected = (
            1000 * stt_array_1mb.read_energy + 10 * stt_array_1mb.write_energy
        )
        assert ev.energy_per_task == pytest.approx(expected)

    def test_no_task_no_energy_per_task(self, stt_array_1mb, simple_traffic):
        assert evaluate(stt_array_1mb, simple_traffic).energy_per_task is None

    def test_invalid_mask_rejected(self, stt_array_1mb, simple_traffic):
        with pytest.raises(EvaluationError):
            evaluate(stt_array_1mb, simple_traffic, write_latency_mask=1.5)


class TestLifetime:
    def test_sram_unlimited(self, sram_array_1mb, simple_traffic):
        assert lifetime_seconds(sram_array_1mb, simple_traffic) is None

    def test_zero_writes_unlimited(self, stt_array_1mb):
        t = TrafficPattern("ro", 1e6, 0.0)
        assert lifetime_seconds(stt_array_1mb, t) is None

    def test_lifetime_inverse_in_write_rate(self, rram_optimistic):
        array = characterize(rram_optimistic, mb(1), 22, OptimizationTarget.READ_EDP)
        slow = lifetime_seconds(array, TrafficPattern("s", 0, 1e4))
        fast = lifetime_seconds(array, TrafficPattern("f", 0, 1e6))
        assert slow == pytest.approx(100 * fast)

    def test_wear_leveling_efficiency(self, rram_optimistic):
        array = characterize(rram_optimistic, mb(1), 22, OptimizationTarget.READ_EDP)
        t = TrafficPattern("w", 0, 1e6)
        ideal = lifetime_seconds(array, t, wear_leveling_efficiency=1.0)
        poor = lifetime_seconds(array, t, wear_leveling_efficiency=0.5)
        assert poor == pytest.approx(ideal / 2)

    def test_endurance_ordering(self, simple_traffic):
        """STT (1e15) outlives RRAM (1e6) under identical write load."""
        stt = characterize(
            tentpoles_for(TechnologyClass.STT).optimistic, mb(1), 22,
            OptimizationTarget.READ_EDP,
        )
        rram = characterize(
            tentpoles_for(TechnologyClass.RRAM).optimistic, mb(1), 22,
            OptimizationTarget.READ_EDP,
        )
        t = TrafficPattern("w", 0, 1e7)
        stt_life = lifetime_seconds(stt, t)
        rram_life = lifetime_seconds(rram, t)
        assert rram_life is not None
        assert stt_life is None or stt_life > rram_life

    def test_retention_check(self, stt_array_1mb, sram_array_1mb):
        assert retention_ok(stt_array_1mb, 86400.0)
        assert not retention_ok(sram_array_1mb, 1.0)
        assert retention_ok(sram_array_1mb, 0.0)


class TestIntermittent:
    def test_envm_has_no_wake_cost(self, stt_array_1mb):
        assert wake_energy(stt_array_1mb, RESNET26) == 0.0
        assert wake_latency(stt_array_1mb, RESNET26) == 0.0

    def test_sram_pays_dram_reload(self, sram_array_1mb):
        assert wake_energy(sram_array_1mb, RESNET26) > 0.0
        assert wake_latency(sram_array_1mb, RESNET26) > 0.0

    def test_daily_energy_increases_with_rate(self, stt_array_1mb):
        low = evaluate_intermittent(stt_array_1mb, RESNET26, 10)
        high = evaluate_intermittent(stt_array_1mb, RESNET26, 1e5)
        assert high.energy_per_day > low.energy_per_day

    def test_zero_rate_is_pure_sleep(self, stt_array_1mb):
        ev = evaluate_intermittent(stt_array_1mb, RESNET26, 0.0)
        assert ev.energy_per_day == pytest.approx(
            stt_array_1mb.sleep_power * 86400.0
        )

    def test_negative_rate_rejected(self, stt_array_1mb):
        with pytest.raises(EvaluationError):
            evaluate_intermittent(stt_array_1mb, RESNET26, -1.0)

    def test_crossover_math(self, stt_array_1mb, sram_array_1mb):
        # SRAM has enormous sleep power and wake cost; STT wins everywhere,
        # so there is no positive crossover where SRAM becomes better.
        a = evaluate_intermittent(sram_array_1mb, RESNET26, 1.0)
        b = evaluate_intermittent(stt_array_1mb, RESNET26, 1.0)
        assert crossover_rate(b, a) == float("inf")


class TestWriteBuffer:
    def test_config_validation(self):
        with pytest.raises(EvaluationError):
            WriteBufferConfig(mask_fraction=1.5)
        with pytest.raises(EvaluationError):
            WriteBufferConfig(traffic_reduction=1.0)

    def test_buffered_traffic_reduces_writes(self, simple_traffic):
        config = WriteBufferConfig(0.0, 0.5)
        reduced = buffered_traffic(simple_traffic, config)
        assert reduced.writes_per_second == pytest.approx(
            simple_traffic.writes_per_second / 2
        )
        assert reduced.reads_per_second == simple_traffic.reads_per_second

    def test_masking_hides_write_latency(self, pcm_optimistic):
        array = characterize(pcm_optimistic, mb(1), 22, OptimizationTarget.READ_EDP)
        t = TrafficPattern("w-heavy", 1e5, 1e6)
        plain = evaluate(array, t)
        masked = evaluate_with_buffer(array, t, WriteBufferConfig(1.0, 0.0))
        assert masked.memory_latency_per_second < plain.memory_latency_per_second
        # Energy is still paid in full.
        assert masked.dynamic_power == pytest.approx(plain.dynamic_power)

    def test_reduction_extends_lifetime(self, rram_optimistic):
        array = characterize(rram_optimistic, mb(1), 22, OptimizationTarget.READ_EDP)
        t = TrafficPattern("w", 0, 1e6)
        plain = evaluate(array, t)
        reduced = evaluate_with_buffer(array, t, WriteBufferConfig(0.0, 0.5))
        assert reduced.lifetime_seconds == pytest.approx(2 * plain.lifetime_seconds)

    def test_coalescing_factor_hot_addresses(self):
        # Repeatedly writing the same 4 lines through a 16-line buffer
        # coalesces almost everything.
        addresses = [64 * (i % 4) for i in range(1000)]
        factor = coalescing_factor(addresses, buffer_lines=16)
        assert factor > 0.95

    def test_coalescing_factor_streaming(self):
        # A pure stream cannot be coalesced.
        addresses = [64 * i for i in range(1000)]
        factor = coalescing_factor(addresses, buffer_lines=16)
        assert factor == pytest.approx(0.0, abs=0.02)

    def test_coalescing_factor_empty(self):
        assert coalescing_factor([], buffer_lines=4) == 0.0


class TestPareto:
    records = [
        {"name": "a", "x": 1.0, "y": 10.0},
        {"name": "b", "x": 2.0, "y": 5.0},
        {"name": "c", "x": 3.0, "y": 1.0},
        {"name": "d", "x": 3.0, "y": 10.0},  # dominated by a and c
        {"name": "e", "x": 2.0, "y": 5.0},  # duplicate of b: stays
    ]

    def test_front_excludes_dominated(self):
        front = pareto_front(self.records, ["x", "y"])
        names = {r["name"] for r in front}
        assert names == {"a", "b", "c", "e"}

    def test_single_objective(self):
        front = pareto_front(self.records, ["x"])
        assert {r["name"] for r in front} == {"a"}

    def test_missing_objective_excluded(self):
        records = self.records + [{"name": "f", "x": 0.0}]
        front = pareto_front(records, ["x", "y"])
        assert all("y" in r for r in front)

    def test_empty_objectives_rejected(self):
        with pytest.raises(EvaluationError):
            pareto_front(self.records, [])

    def test_knee_point_balances(self):
        front = pareto_front(self.records, ["x", "y"])
        knee = knee_point(front, ["x", "y"])
        assert knee["name"] in {"b", "e"}

    def test_knee_empty_front_rejected(self):
        with pytest.raises(EvaluationError):
            knee_point([], ["x"])


class TestDSEEngine:
    def test_array_only_sweep(self, stt_optimistic, sram16):
        spec = SweepSpec(
            cells=[stt_optimistic, sram16],
            capacities_bytes=[mb(1)],
            optimization_targets=(OptimizationTarget.READ_EDP,),
        )
        table = DSEEngine().run(spec)
        assert len(table) == 2
        assert set(table.column("tech")) == {"STT", "SRAM"}
        assert set(table.column("node_nm")) == {22, 16}

    def test_traffic_sweep_rows(self, stt_optimistic, simple_traffic):
        spec = SweepSpec(
            cells=[stt_optimistic],
            capacities_bytes=[mb(1), mb(2)],
            traffic=[simple_traffic],
        )
        table = DSEEngine().run(spec)
        assert len(table) == 2
        assert all(row["workload"] == "unit-test-traffic" for row in table)

    def test_engine_caches_characterizations(self, stt_optimistic, simple_traffic):
        engine = DSEEngine()
        spec = SweepSpec(
            cells=[stt_optimistic], capacities_bytes=[mb(1)],
            traffic=[simple_traffic],
        )
        engine.run(spec)
        first_cache = dict(engine._array_cache)
        engine.run(spec)
        assert engine._array_cache.keys() == first_cache.keys()

    def test_empty_sweep_rejected(self):
        with pytest.raises(CharacterizationError):
            SweepSpec(cells=[], capacities_bytes=[mb(1)])
        with pytest.raises(CharacterizationError):
            SweepSpec(cells=[sram_cell(16)], capacities_bytes=[])

    def test_record_flavor_tagging(self, stt_optimistic):
        spec = SweepSpec(cells=[stt_optimistic], capacities_bytes=[mb(1)])
        row = DSEEngine().run(spec)[0]
        assert row["flavor"] == "optimistic"
        assert row["capacity_mb"] == pytest.approx(1.0)
