"""The shipped config/ samples parse and run end to end."""

import json
from pathlib import Path

import pytest

from repro.config import (
    is_suite_config,
    load_config,
    load_study_config,
    load_suite_config,
    run_config,
    run_study_config,
    run_suite_config,
)
from repro.config.schema import is_service_config
from repro.studies.pipeline import REGISTRY

CONFIG_DIR = Path(__file__).resolve().parent.parent / "config"
CONFIG_FILES = sorted(CONFIG_DIR.glob("*.json"))
SWEEP_CONFIG_FILES = [
    p for p in CONFIG_FILES
    if not is_suite_config(raw := json.loads(p.read_text()))
    and not is_service_config(raw)
]
STUDY_CONFIG_FILES = sorted((CONFIG_DIR / "studies").glob("*.json"))


def test_samples_exist():
    names = {p.name for p in CONFIG_FILES}
    assert "main_dnn_study.json" in names
    assert "graph_study.json" in names
    assert "spec_llc_study.json" in names
    assert "array_characterization.json" in names
    assert "suite.json" in names


@pytest.mark.parametrize("path", SWEEP_CONFIG_FILES, ids=lambda p: p.name)
def test_sample_parses(path):
    parsed = load_config(path)
    assert parsed.cells
    assert parsed.capacities_bytes


def test_service_stub_parses():
    from repro.config.loader import load_service_config

    parsed = load_service_config(CONFIG_DIR / "service.json")
    assert parsed.workers == 2
    assert parsed.rate_limit_rps > 0
    assert set(parsed.warm_studies) <= set(REGISTRY)
    assert parsed.runtime.on_error == "skip"


def test_suite_stub_parses():
    parsed = load_suite_config(CONFIG_DIR / "suite.json")
    assert parsed.only is None
    assert parsed.shard_count == 1
    assert parsed.incremental


def test_suite_config_runs(tmp_path):
    raw = json.loads((CONFIG_DIR / "suite.json").read_text())
    raw["suite"]["only"] = ["ext_hierarchy"]
    raw["suite"]["output_dir"] = str(tmp_path / "out")
    raw["runtime"]["cache_dir"] = str(tmp_path / "cache")
    run = run_suite_config(raw)
    assert run.ok
    assert set(run.tables) == {"ext_hierarchy"}
    assert (tmp_path / "out" / "results" / "ext_hierarchy.csv").exists()
    assert (tmp_path / "out" / "manifest.json").exists()
    # A second pass against the same output dir is fully incremental.
    again = run_suite_config(raw)
    assert again.fully_incremental


def test_main_dnn_study_runs(tmp_path):
    raw = json.loads((CONFIG_DIR / "main_dnn_study.json").read_text())
    raw["output_csv"] = str(tmp_path / "dnn.csv")
    # Shrink the sweep for test time: one capacity is already configured.
    table = run_config(raw)
    assert len(table) > 0
    assert (tmp_path / "dnn.csv").exists()
    assert {"PCM", "STT", "RRAM", "FeFET", "SRAM"} <= set(table.column("tech"))


def test_every_registered_study_has_a_stub():
    names = {p.stem for p in STUDY_CONFIG_FILES}
    assert names == set(REGISTRY)


@pytest.mark.parametrize("path", STUDY_CONFIG_FILES, ids=lambda p: p.name)
def test_study_stub_parses(path):
    parsed = load_study_config(path)
    assert parsed.study == path.stem
    assert parsed.study in REGISTRY


def test_study_stub_runs(tmp_path):
    raw = json.loads((CONFIG_DIR / "studies" / "ext_hierarchy.json").read_text())
    raw["output_csv"] = str(tmp_path / "h.csv")
    raw["report_md"] = str(tmp_path / "h.md")
    table = run_study_config(raw)
    assert len(table) == 9
    assert (tmp_path / "h.csv").exists()
    assert (tmp_path / "h.md").exists()


def test_array_characterization_runs(tmp_path):
    raw = json.loads((CONFIG_DIR / "array_characterization.json").read_text())
    raw["output_csv"] = str(tmp_path / "arrays.csv")
    # Restrict targets to keep the unit-test fast; the full sweep runs in
    # the benches.
    raw["system"]["optimization_targets"] = ["ReadEDP"]
    table = run_config(raw)
    # 7 technologies x 2 flavors + SRAM = 15 arrays (the config does not
    # request the reference flavor).
    assert len(table) == 15
