"""The invariant linter: rule engine, rules, suppressions, baseline, CLI."""

import json
import textwrap
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.cli import apply_baseline, main as lint_main, write_baseline
from repro.analysis.determinism import DeterminismRule
from repro.analysis.drift import SchemaDriftRule, compute_pins, write_pins
from repro.analysis.engine import SUPPRESSION_RULE_ID
from repro.analysis.exceptions import ExceptSafetyRule
from repro.analysis.iodiscipline import AtomicWriteRule
from repro.analysis.locks import LockCoverageRule

SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"


def make_tree(tmp_path, files):
    """Materialize ``{relpath: source}`` under a ``repro`` package root.

    Files mirror real module names (``nvsim/model.py`` ->
    ``repro.nvsim.model``) so default rule configurations apply to the
    fixture unchanged.
    """
    root = tmp_path / "repro"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"), encoding="utf-8")
    return root


def rule_findings(root, rule):
    return run_lint(root, rules=[rule]).findings


# -- determinism -------------------------------------------------------------


class TestDeterminismRule:
    def test_wall_clock_in_root_package_is_flagged(self, tmp_path):
        files = {
            "nvsim/model.py": """
                import time

                def characterize():
                    return time.time()
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, DeterminismRule())
        assert len(findings) == 1
        assert findings[0].rule == "determinism"
        assert "time.time" in findings[0].message

    def test_reachability_crosses_module_boundaries(self, tmp_path):
        files = {
            "util.py": """
                import time

                def stamp():
                    return time.time()
            """,
            "nvsim/model.py": """
                from repro.util import stamp

                def characterize():
                    return stamp()
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, DeterminismRule())
        assert len(findings) == 1
        assert findings[0].path == "repro/util.py"
        assert "reachable from fingerprinted root" in findings[0].message

    def test_unreachable_helper_is_not_flagged(self, tmp_path):
        files = {
            "util.py": """
                import time

                def stamp():
                    return time.time()
            """,
            "nvsim/model.py": """
                def characterize():
                    return 42
            """,
        }
        root = make_tree(tmp_path, files)
        assert rule_findings(root, DeterminismRule()) == []

    def test_fingerprint_caller_becomes_a_seed(self, tmp_path):
        files = {
            "runtime/fingerprint.py": """
                def point_fingerprint(payload):
                    return str(payload)
            """,
            "runtime/engine.py": """
                import random

                from repro.runtime.fingerprint import point_fingerprint

                def key_for(point):
                    point_fingerprint(point)
                    return random.random()
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, DeterminismRule())
        assert any("random.random" in f.message for f in findings)

    def test_unsorted_iterdir_flagged_sorted_is_not(self, tmp_path):
        files = {
            "nvsim/store.py": """
                def bad(root):
                    return [p.name for p in root.iterdir()]

                def good(root):
                    return [p.name for p in sorted(root.iterdir())]

                def counted(root):
                    return len(list(root.glob("*.json")))
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, DeterminismRule())
        assert len(findings) == 1
        assert ".iterdir()" in findings[0].message
        assert findings[0].line == 2

    def test_set_iteration_flagged_sorted_is_not(self, tmp_path):
        files = {
            "nvsim/interp.py": """
                def bad(lo, hi):
                    return [k for k in set(lo) | set(hi)]

                def good(lo, hi):
                    return [k for k in sorted(set(lo) | set(hi))]
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, DeterminismRule())
        assert len(findings) == 1
        assert "undefined" in findings[0].message

    def test_monotonic_clocks_are_allowed(self, tmp_path):
        files = {
            "nvsim/model.py": """
                import time

                def timed():
                    return time.perf_counter() - time.monotonic()
            """,
        }
        root = make_tree(tmp_path, files)
        assert rule_findings(root, DeterminismRule()) == []


# -- suppressions ------------------------------------------------------------


class TestSuppressions:
    def test_inline_suppression_with_reason_waives(self, tmp_path):
        files = {
            "nvsim/model.py": """
                import time

                def characterize():
                    return time.time()  # repro: allow[determinism] display only
            """,
        }
        root = make_tree(tmp_path, files)
        result = run_lint(root, rules=[DeterminismRule()])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0][1].reason == "display only"

    def test_suppression_on_line_above(self, tmp_path):
        files = {
            "nvsim/model.py": """
                import time

                def characterize():
                    # repro: allow[determinism] display only
                    return time.time()
            """,
        }
        root = make_tree(tmp_path, files)
        result = run_lint(root, rules=[DeterminismRule()])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_suppression_without_reason_is_a_finding(self, tmp_path):
        files = {
            "nvsim/model.py": """
                import time

                def characterize():
                    return time.time()  # repro: allow[determinism]
            """,
        }
        root = make_tree(tmp_path, files)
        result = run_lint(root, rules=[DeterminismRule()])
        rules = {f.rule for f in result.findings}
        # The reasonless waiver does not waive, and is itself flagged.
        assert rules == {"determinism", SUPPRESSION_RULE_ID}

    def test_unused_suppression_is_reported_not_fatal(self, tmp_path):
        files = {
            "nvsim/model.py": """
                def characterize():
                    return 42  # repro: allow[determinism] stale waiver
            """,
        }
        root = make_tree(tmp_path, files)
        result = run_lint(root, rules=[DeterminismRule()])
        assert result.findings == []
        assert len(result.unused_suppressions) == 1
        assert "no longer waives" in result.unused_suppressions[0].message


# -- atomic-write ------------------------------------------------------------


class TestAtomicWriteRule:
    def test_bare_write_text_is_flagged(self, tmp_path):
        files = {
            "runtime/cache.py": """
                def save(path, text):
                    path.write_text(text)
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, AtomicWriteRule())
        assert len(findings) == 1
        assert "write_text" in findings[0].message

    def test_staged_replace_in_same_function_is_compliant(self, tmp_path):
        files = {
            "runtime/cache.py": """
                import os

                def save(path, tmp, text):
                    tmp.write_text(text)
                    os.replace(tmp, path)
            """,
        }
        root = make_tree(tmp_path, files)
        assert rule_findings(root, AtomicWriteRule()) == []

    def test_open_for_write_is_flagged_read_is_not(self, tmp_path):
        files = {
            "runtime/cache.py": """
                def save(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)

                def load(path):
                    with open(path) as fh:
                        return fh.read()
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, AtomicWriteRule())
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_atomic_helper_is_compliant(self, tmp_path):
        files = {
            "runtime/cache.py": """
                from repro.runtime.io import atomic_write_text

                def save(path, text):
                    atomic_write_text(path, text)
            """,
        }
        root = make_tree(tmp_path, files)
        assert rule_findings(root, AtomicWriteRule()) == []

    def test_modules_outside_persistence_set_are_ignored(self, tmp_path):
        files = {
            "viz/report.py": """
                def save(path, text):
                    path.write_text(text)
            """,
        }
        root = make_tree(tmp_path, files)
        assert rule_findings(root, AtomicWriteRule()) == []


# -- lock-coverage -----------------------------------------------------------


class TestLockCoverageRule:
    def test_unlocked_counter_bump_is_flagged(self, tmp_path):
        files = {
            "runtime/telemetry.py": """
                import threading

                class SweepTelemetry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        with self._lock:
                            self.completed = 0

                    def bump(self):
                        self.completed += 1
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, LockCoverageRule())
        assert len(findings) == 1
        assert "self.completed" in findings[0].message
        assert findings[0].line == 10

    def test_locked_mutation_and_documented_helper_pass(self, tmp_path):
        files = {
            "runtime/telemetry.py": """
                import threading

                class SweepTelemetry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        with self._lock:
                            self.completed = 0
                            self.failures = []

                    def bump(self):
                        with self._lock:
                            self.completed += 1
                            self.failures.append("x")

                    def _count(self, n):
                        \"\"\"Caller holds the lock.\"\"\"
                        self.completed += n
            """,
        }
        root = make_tree(tmp_path, files)
        assert rule_findings(root, LockCoverageRule()) == []

    def test_in_place_container_mutation_is_flagged(self, tmp_path):
        files = {
            "runtime/telemetry.py": """
                import threading

                class SweepTelemetry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        with self._lock:
                            self.failures = []

                    def record(self, item):
                        self.failures.append(item)
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, LockCoverageRule())
        assert len(findings) == 1
        assert "in-place mutation" in findings[0].message


# -- except-safety -----------------------------------------------------------


class TestExceptSafetyRule:
    def test_bare_except_is_flagged(self, tmp_path):
        files = {
            "runtime/worker.py": """
                def run(task):
                    try:
                        task()
                    except:
                        pass
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, ExceptSafetyRule())
        assert len(findings) == 1
        assert "bare `except:`" in findings[0].message

    def test_swallowed_interrupt_is_flagged_reraise_is_not(self, tmp_path):
        files = {
            "runtime/worker.py": """
                def swallow(task):
                    try:
                        task()
                    except KeyboardInterrupt:
                        pass

                def cleanup(task, tmp):
                    try:
                        task()
                    except BaseException:
                        tmp.unlink(missing_ok=True)
                        raise
            """,
        }
        root = make_tree(tmp_path, files)
        findings = rule_findings(root, ExceptSafetyRule())
        assert len(findings) == 1
        assert "KeyboardInterrupt" in findings[0].message
        assert findings[0].line == 4

    def test_out_of_scope_modules_are_ignored(self, tmp_path):
        files = {
            "viz/plots.py": """
                def render(fn):
                    try:
                        fn()
                    except:
                        pass
            """,
        }
        root = make_tree(tmp_path, files)
        assert rule_findings(root, ExceptSafetyRule()) == []


# -- schema-drift (fixture-level; the real tree is tested in
# test_analysis_drift.py) --------------------------------------------------


MOD_V1 = """
MY_SCHEMA_TAG = "my-store-v1"


def payload(x):
    return {"schema": MY_SCHEMA_TAG, "value": x}
"""

REGISTRY = {"MY_SCHEMA_TAG": ("repro.mod", ("repro.mod",))}


class TestSchemaDriftRule:
    def make_rule(self, tmp_path):
        return SchemaDriftRule(pins_path=tmp_path / "pins.json", registry=REGISTRY)

    def pin(self, tmp_path):
        write_pins(tmp_path / "pins.json", compute_pins(tmp_path, REGISTRY))

    def test_unpinned_tag_is_flagged(self, tmp_path):
        root = make_tree(tmp_path, {"mod.py": MOD_V1})
        findings = rule_findings(root, self.make_rule(tmp_path))
        assert len(findings) == 1
        assert "no pinned source digest" in findings[0].message

    def test_pinned_and_unchanged_is_clean(self, tmp_path):
        root = make_tree(tmp_path, {"mod.py": MOD_V1})
        self.pin(tmp_path)
        assert rule_findings(root, self.make_rule(tmp_path)) == []

    def test_source_drift_without_tag_bump_fails(self, tmp_path):
        root = make_tree(tmp_path, {"mod.py": MOD_V1})
        self.pin(tmp_path)
        (root / "mod.py").write_text(
            MOD_V1.replace('"value": x', '"value": x * 2'), encoding="utf-8"
        )
        findings = rule_findings(root, self.make_rule(tmp_path))
        assert len(findings) == 1
        assert "without a tag bump" in findings[0].message
        assert "bump MY_SCHEMA_TAG" in findings[0].message

    def test_tag_bump_asks_for_repin_only(self, tmp_path):
        root = make_tree(tmp_path, {"mod.py": MOD_V1})
        self.pin(tmp_path)
        (root / "mod.py").write_text(
            MOD_V1.replace("my-store-v1", "my-store-v2"), encoding="utf-8"
        )
        findings = rule_findings(root, self.make_rule(tmp_path))
        assert len(findings) == 1
        assert "tag value changed" in findings[0].message
        assert "--update-pins" in findings[0].message

    def test_repin_after_reviewed_change_is_clean(self, tmp_path):
        root = make_tree(tmp_path, {"mod.py": MOD_V1})
        self.pin(tmp_path)
        (root / "mod.py").write_text(
            MOD_V1.replace("my-store-v1", "my-store-v2"), encoding="utf-8"
        )
        self.pin(tmp_path)
        assert rule_findings(root, self.make_rule(tmp_path)) == []

    def test_unregistered_tag_constant_is_flagged(self, tmp_path):
        files = {
            "mod.py": MOD_V1,
            "other.py": 'ROGUE_SCHEMA_TAG = "rogue-v1"\n',
        }
        root = make_tree(tmp_path, files)
        self.pin(tmp_path)
        findings = rule_findings(root, self.make_rule(tmp_path))
        assert len(findings) == 1
        assert "ROGUE_SCHEMA_TAG" in findings[0].message
        assert "not covered" in findings[0].message


# -- baseline + CLI ----------------------------------------------------------


DIRTY_TREE = {
    "nvsim/model.py": """
        import time

        def characterize():
            return time.time()
    """,
}


class TestBaselineAndCli:
    def test_apply_baseline_splits_and_reports_stale(self, tmp_path):
        root = make_tree(tmp_path, DIRTY_TREE)
        result = run_lint(root, rules=[DeterminismRule()])
        entries = [{"rule": f.rule, "path": f.path, "context": f.context} for f in result.findings]
        entries.append({"rule": "determinism", "path": "repro/gone.py", "context": "x"})
        active, baselined, stale = apply_baseline(result, entries)
        assert active == []
        assert len(baselined) == 1
        assert len(stale) == 1 and stale[0]["path"] == "repro/gone.py"

    def test_baseline_survives_line_drift(self, tmp_path):
        root = make_tree(tmp_path, DIRTY_TREE)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, run_lint(root, rules=[DeterminismRule()]).findings)
        # Shift the violation down; the (rule, path, context) key still
        # matches.
        path = root / "nvsim" / "model.py"
        path.write_text("# header\n" + path.read_text(), encoding="utf-8")
        result = run_lint(root, rules=[DeterminismRule()])
        active, baselined, stale = apply_baseline(
            result, json.loads(baseline.read_text())["findings"]
        )
        assert active == [] and len(baselined) == 1 and stale == []

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY_TREE)
        rc = lint_main([str(root), "--json", "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["clean"] is False
        assert any(v["rule"] == "determinism" for v in payload["violations"])

    def test_cli_clean_tree_exits_zero(self, tmp_path, capsys):
        files = {
            "nvsim/model.py": "def characterize():\n    return 42\n",
        }
        root = make_tree(tmp_path, files)
        assert lint_main([str(root), "--no-baseline"]) == 0

    def test_cli_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY_TREE)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(root), "--write-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert lint_main([str(root), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_cli_missing_root_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "determinism",
            "schema-drift",
            "atomic-write",
            "lock-coverage",
            "except-safety",
        ):
            assert rule_id in out


# -- the repo lints itself ---------------------------------------------------


class TestSelfLint:
    def test_src_repro_is_clean_modulo_baseline(self, capsys):
        rc = lint_main([str(SRC_REPRO), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == [], (
            "src/repro violates its own invariants:\n"
            + "\n".join(
                f"{v['path']}:{v['line']}: [{v['rule']}] {v['message']}"
                for v in payload["violations"]
            )
        )
        assert rc == 0

    def test_baseline_holds_at_most_ten_entries(self):
        from repro.analysis.cli import DEFAULT_BASELINE_PATH, load_baseline

        entries = load_baseline(DEFAULT_BASELINE_PATH)
        assert entries is not None, "committed lint baseline missing/invalid"
        assert len(entries) <= 10
