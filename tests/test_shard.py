"""Shard planner, run manifests, and manifest merging."""

import json
import random

import pytest

from repro.runtime.fingerprint import fingerprint_payload
from repro.runtime.shard import (
    MANIFEST_FILENAME,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    ManifestEntry,
    PointShard,
    RunManifest,
    ShardError,
    ShardPlan,
    assign_fingerprint,
    collect_artifacts,
    merge_manifests,
    partition_fingerprints,
    plan_shard,
    point_set_digest,
    point_shard_section,
    schema_tags,
    shard_assignments,
    source_digest,
    study_fingerprint,
)
from repro.studies.pipeline import REGISTRY

SUITE = tuple(REGISTRY)


# --- planner --------------------------------------------------------------


@pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 5])
def test_every_study_assigned_exactly_once(shard_count):
    plans = [plan_shard(SUITE, i, shard_count) for i in range(shard_count)]
    seen = [name for plan in plans for name in plan.selected]
    assert sorted(seen) == sorted(SUITE)
    assert len(seen) == len(set(seen))


@pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 5])
def test_shard_sizes_balanced(shard_count):
    sizes = [len(plan_shard(SUITE, i, shard_count).selected) for i in range(shard_count)]
    assert max(sizes) - min(sizes) <= 1


def test_assignment_stable_under_registry_reordering():
    reference = shard_assignments(SUITE, 3)
    for seed in range(5):
        shuffled = list(SUITE)
        random.Random(seed).shuffle(shuffled)
        assert shard_assignments(shuffled, 3) == reference
        for i in range(3):
            assert set(plan_shard(shuffled, i, 3).selected) == {
                name for name, shard in reference.items() if shard == i
            }


def test_selection_preserves_suite_order():
    plan = plan_shard(SUITE, 1, 3)
    positions = [SUITE.index(name) for name in plan.selected]
    assert positions == sorted(positions)
    assert plan.suite == SUITE


def test_single_shard_is_whole_suite():
    plan = plan_shard(SUITE, 0, 1)
    assert plan.is_whole_suite
    assert plan.selected == SUITE


def test_invalid_shard_parameters_rejected():
    with pytest.raises(ShardError, match="shard_count"):
        plan_shard(SUITE, 0, 0)
    with pytest.raises(ShardError, match="shard_index"):
        plan_shard(SUITE, 3, 3)
    with pytest.raises(ShardError, match="shard_index"):
        plan_shard(SUITE, -1, 2)
    with pytest.raises(ShardError, match="duplicate"):
        plan_shard(["a", "b", "a"], 0, 2)


# --- fingerprint-space partitioning ---------------------------------------


def test_partition_fingerprints_exact_cover():
    fingerprints = [fingerprint_payload({"point": i}) for i in range(64)]
    for shard_count in (1, 2, 3, 5):
        shards = [
            partition_fingerprints(fingerprints, i, shard_count)
            for i in range(shard_count)
        ]
        combined = [fp for shard in shards for fp in shard]
        assert sorted(combined) == sorted(fingerprints)


def test_assign_fingerprint_deterministic_and_in_range():
    fp = fingerprint_payload({"x": 1})
    assert assign_fingerprint(fp, 4) == assign_fingerprint(fp, 4)
    assert 0 <= assign_fingerprint(fp, 4) < 4
    points = [{"id": fingerprint_payload({"p": i})} for i in range(10)]
    picked = partition_fingerprints(points, 0, 3, key=lambda p: p["id"])
    assert all(assign_fingerprint(p["id"], 3) == 0 for p in picked)


def test_point_shard_selects_matches_partition():
    fingerprints = [fingerprint_payload({"point": i}) for i in range(32)]
    for shard_count in (1, 2, 3, 4):
        shards = [PointShard(i, shard_count) for i in range(shard_count)]
        for fp in fingerprints:
            owners = [s for s in shards if s.selects(fp)]
            assert len(owners) == 1
        combined = [fp for s in shards for fp in s.partition(fingerprints)]
        assert sorted(combined) == sorted(fingerprints)
    assert PointShard().is_whole_space
    assert not PointShard(1, 2).is_whole_space
    assert PointShard(1, 3).to_dict() == {"index": 1, "count": 3}


def test_point_shard_validation():
    with pytest.raises(ShardError, match="shard_count"):
        PointShard(0, 0)
    with pytest.raises(ShardError, match="shard_index"):
        PointShard(2, 2)
    with pytest.raises(ShardError, match="shard_index"):
        PointShard(-1, 2)


def test_point_set_digest_order_independent():
    fingerprints = [fingerprint_payload({"p": i}) for i in range(8)]
    shuffled = list(reversed(fingerprints))
    assert point_set_digest(fingerprints) == point_set_digest(shuffled)
    assert point_set_digest(fingerprints) != point_set_digest(fingerprints[:-1])
    assert point_set_digest(fingerprints) == point_set_digest(
        fingerprints + fingerprints  # duplicates collapse: it is a set digest
    )


def test_point_shard_section_contents():
    planned = [fingerprint_payload({"p": i}) for i in range(6)]
    selected = planned[:2]
    section = point_shard_section(PointShard(0, 2), planned, selected, selected)
    assert section["index"] == 0
    assert section["count"] == 2
    assert section["planned"] == 6
    assert section["planned_digest"] == point_set_digest(planned)
    assert section["selected"] == sorted(selected)
    assert section["completed"] == 2


# --- study fingerprints ---------------------------------------------------


def test_study_fingerprint_stable_and_sensitive():
    spec = REGISTRY["fig09_spec_llc"]
    base = study_fingerprint(spec)
    assert base == study_fingerprint(spec)
    assert study_fingerprint(spec, overrides={"n_accesses": 7}) != base
    assert study_fingerprint(spec, seed=1) != base
    assert study_fingerprint(REGISTRY["fig14_writebuffer"]) != base


def test_study_fingerprint_point_shard_sensitivity():
    spec = REGISTRY["fig09_spec_llc"]
    base = study_fingerprint(spec)
    # The whole-space selector keys identically to no selector at all.
    assert study_fingerprint(spec, point_shard=PointShard(0, 1)) == base
    shard0 = study_fingerprint(spec, point_shard=PointShard(0, 2))
    shard1 = study_fingerprint(spec, point_shard=PointShard(1, 2))
    assert shard0 != base
    assert shard1 != base
    assert shard0 != shard1


def test_source_digest_is_stable_hex():
    digest = source_digest()
    assert digest == source_digest()
    assert len(digest) == 64
    int(digest, 16)


def test_schema_tags_cover_every_cache_layer():
    assert set(schema_tags()) == {"arrays", "evaluations", "traces"}


# --- manifests ------------------------------------------------------------


def _entry(name, status=STATUS_OK, **kwargs):
    defaults = {
        "fingerprint": fingerprint_payload({"study": name}),
        "rows": 5,
        "elapsed_s": 0.1,
        "artifacts": {"csv": f"results/{name}.csv"},
        "telemetry": {"completed": 3, "evaluated": 2},
    }
    defaults.update(kwargs)
    return ManifestEntry(name=name, status=status, **defaults)


def _manifest(entries, shard_index=0, shard_count=1, suite=None, **kwargs):
    return RunManifest(
        shard_index=shard_index,
        shard_count=shard_count,
        suite=tuple(suite if suite is not None else (e.name for e in entries)),
        entries=tuple(entries),
        **kwargs,
    )


def test_manifest_roundtrip(tmp_path):
    manifest = _manifest([_entry("a"), _entry("b", status=STATUS_FAILED, error="boom")])
    path = manifest.write(tmp_path)
    assert path.name == MANIFEST_FILENAME
    loaded = RunManifest.load(tmp_path)
    assert loaded == manifest
    assert RunManifest.load(path) == manifest
    assert not loaded.ok
    assert loaded.entry_for("a") == manifest.entries[0]
    assert loaded.entry_for("zzz") is None


def test_manifest_try_load_tolerates_missing_and_corrupt(tmp_path):
    assert RunManifest.try_load(tmp_path) is None
    (tmp_path / MANIFEST_FILENAME).write_text("{not json")
    assert RunManifest.try_load(tmp_path) is None
    (tmp_path / MANIFEST_FILENAME).write_text(json.dumps({"schema": "other-v9"}))
    assert RunManifest.try_load(tmp_path) is None


def test_manifest_rejects_wrong_schema():
    with pytest.raises(ShardError, match="schema"):
        RunManifest.from_dict({"schema": "nope"})


def test_entry_rejects_unknown_status():
    with pytest.raises(ShardError, match="status"):
        ManifestEntry(name="a", status="great")


def test_cached_entries_count_as_ok():
    assert _entry("a", status=STATUS_CACHED).ok
    assert not _entry("a", status=STATUS_FAILED).ok


def test_retained_entries_roundtrip_and_lookup(tmp_path):
    manifest = _manifest([_entry("a")], suite=("a",), retained=(_entry("z"),))
    manifest.write(tmp_path)
    loaded = RunManifest.load(tmp_path)
    assert loaded.retained == manifest.retained
    assert loaded.entry_for("z") is None  # not part of this run
    assert loaded.lookup("z") == manifest.retained[0]
    assert loaded.lookup("a") == manifest.entries[0]
    assert loaded.lookup("missing") is None


# --- merging --------------------------------------------------------------


def _shard_manifests(names=("a", "b", "c", "d", "e"), shard_count=3):
    shards = []
    for i in range(shard_count):
        plan = plan_shard(names, i, shard_count)
        shards.append(
            _manifest(
                [_entry(n) for n in plan.selected],
                shard_index=i,
                shard_count=shard_count,
                suite=names,
            )
        )
    return shards


def test_merge_combines_all_shards_in_suite_order():
    shards = _shard_manifests()
    merged = merge_manifests(shards)
    assert merged.names == ("a", "b", "c", "d", "e")
    assert merged.shard_count == 1
    assert merged.merged_from == (0, 1, 2)
    assert merged.ok


def test_merge_detects_duplicate_study():
    shards = _shard_manifests()
    dup = shards[1].entries[0]
    shards[0] = _manifest(
        list(shards[0].entries) + [dup],
        shard_index=0,
        shard_count=3,
        suite=shards[0].suite,
    )
    with pytest.raises(ShardError, match="more than one shard"):
        merge_manifests(shards)


def test_merge_detects_dropped_study():
    shards = _shard_manifests()
    shards[2] = _manifest(
        shards[2].entries[:-1],
        shard_index=2,
        shard_count=3,
        suite=shards[2].suite,
    )
    with pytest.raises(ShardError, match="dropped"):
        merge_manifests(shards)


def test_merge_detects_missing_shard():
    shards = _shard_manifests()
    with pytest.raises(ShardError, match="missing shard"):
        merge_manifests(shards[:2])


def test_merge_detects_duplicate_shard_index():
    shards = _shard_manifests()
    with pytest.raises(ShardError, match="duplicate shard"):
        merge_manifests([shards[0], shards[0], shards[1]])


def test_merge_detects_suite_mismatch():
    shards = _shard_manifests()
    other = _manifest(
        shards[1].entries, shard_index=1, shard_count=3, suite=("a", "b", "x", "d", "e")
    )
    with pytest.raises(ShardError, match="suite"):
        merge_manifests([shards[0], other, shards[2]])


def test_merge_detects_schema_tag_mismatch():
    shards = _shard_manifests()
    stale = _manifest(
        shards[1].entries,
        shard_index=1,
        shard_count=3,
        suite=shards[1].suite,
        tags={"arrays": "array-cache-v0"},
    )
    with pytest.raises(ShardError, match="schema tags"):
        merge_manifests([shards[0], stale, shards[2]])


def test_merge_detects_shard_count_mismatch():
    shards = _shard_manifests()
    odd = _manifest(
        shards[1].entries, shard_index=1, shard_count=4, suite=shards[1].suite
    )
    with pytest.raises(ShardError, match="shard_count"):
        merge_manifests([shards[0], odd, shards[2]])


def test_merge_rejects_unplanned_study():
    shards = _shard_manifests()
    rogue = _manifest(
        list(shards[0].entries) + [_entry("zzz")],
        shard_index=0,
        shard_count=3,
        suite=shards[0].suite,
    )
    with pytest.raises(ShardError, match="not part of the planned suite"):
        merge_manifests([rogue, shards[1], shards[2]])


def test_merge_nothing_rejected():
    with pytest.raises(ShardError, match="no manifests"):
        merge_manifests([])


# --- point-sharded merging ------------------------------------------------

POINTS = [fingerprint_payload({"pt": i}) for i in range(12)]


def _point_entry(name, shard, selected, planned=None, status=STATUS_OK,
                 **kwargs):
    planned = POINTS if planned is None else planned
    section = point_shard_section(shard, planned, selected, selected)
    section.update(kwargs.pop("section_overrides", {}))
    defaults = {
        "fingerprint": fingerprint_payload({"study": name, "shard": shard.index}),
        "rows": 2 * len(selected),
        "elapsed_s": 0.5,
        "artifacts": {"csv": f"results/{name}.csv"},
        "telemetry": {"completed": len(selected), "skipped": len(planned) - len(selected)},
        "point_shard": section,
    }
    defaults.update(kwargs)
    return ManifestEntry(name=name, status=status, **defaults)


def _point_manifests(names=("a", "b"), point_count=2):
    manifests = []
    for j in range(point_count):
        shard = PointShard(j, point_count)
        entries = [
            _point_entry(name, shard, shard.partition(POINTS))
            for name in names
        ]
        manifests.append(RunManifest(
            shard_index=0,
            shard_count=1,
            suite=tuple(names),
            entries=tuple(entries),
            point_shard_index=j,
            point_shard_count=point_count,
        ))
    return manifests


def _replace_entry(manifest, name, entry):
    return RunManifest(
        shard_index=manifest.shard_index,
        shard_count=manifest.shard_count,
        suite=manifest.suite,
        entries=tuple(entry if e.name == name else e for e in manifest.entries),
        tags=manifest.tags,
        point_shard_index=manifest.point_shard_index,
        point_shard_count=manifest.point_shard_count,
    )


@pytest.mark.parametrize("point_count", [2, 3, 4])
def test_point_merge_combines_slices(point_count):
    merged = merge_manifests(_point_manifests(point_count=point_count))
    assert merged.names == ("a", "b")
    assert merged.shard_count == 1
    assert merged.point_shard_count == 1
    assert merged.point_merged_from == tuple(range(point_count))
    assert merged.ok
    for entry in merged.entries:
        assert entry.status == STATUS_OK
        assert entry.rows == 2 * len(POINTS)  # slices sum to the whole space
        assert entry.fingerprint == ""  # whole-space key set by the merge driver
        telemetry = entry.telemetry
        assert telemetry["completed"] == len(POINTS)


def test_point_merge_statuses_combine():
    manifests = _point_manifests()
    cached = [
        _replace_entry(
            m, "a",
            _point_entry("a", m.point_shard, m.point_shard.partition(POINTS),
                         status=STATUS_CACHED),
        )
        for m in manifests
    ]
    assert merge_manifests(cached).entry_for("a").status == STATUS_CACHED
    failed = [cached[0], _replace_entry(
        cached[1], "a",
        _point_entry("a", cached[1].point_shard,
                     cached[1].point_shard.partition(POINTS),
                     status=STATUS_FAILED, error="boom"),
    )]
    merged = merge_manifests(failed)
    assert merged.entry_for("a").status == STATUS_FAILED
    assert not merged.ok
    # A failed study is neither copied nor re-materialized by the merge
    # driver, so its merged entry must not advertise artifact paths.
    assert dict(merged.entry_for("a").artifacts) == {}
    assert dict(merged.entry_for("b").artifacts) == {"csv": "results/b.csv"}


def test_point_merge_detects_dropped_point():
    manifests = _point_manifests()
    shard0 = manifests[0].point_shard
    short = shard0.partition(POINTS)[:-1]  # one selected point goes missing
    tampered = _replace_entry(manifests[0], "a",
                              _point_entry("a", shard0, short))
    with pytest.raises(ShardError, match="dropped by every shard"):
        merge_manifests([tampered, manifests[1]])


def test_point_merge_detects_duplicated_point():
    manifests = _point_manifests()
    shard0 = manifests[0].point_shard
    stolen = manifests[1].point_shard.partition(POINTS)[0]
    greedy = _replace_entry(
        manifests[0], "a",
        _point_entry("a", shard0, shard0.partition(POINTS) + [stolen]),
    )
    with pytest.raises(ShardError, match="more than one point shard"):
        merge_manifests([greedy, manifests[1]])


def test_point_shard_section_records_poisoned_points():
    planned = [fingerprint_payload({"p": i}) for i in range(6)]
    selected = planned[:3]
    completed = selected[:2]  # the third exhausted its retry budget
    section = point_shard_section(
        PointShard(0, 2), planned, selected, completed,
        poisoned=[selected[2]],
    )
    assert section["completed"] == 2
    assert section["poisoned"] == [selected[2]]
    # poisoned points stay selected: the shard still owns them
    assert selected[2] in section["selected"]


def test_point_merge_accepts_poisoned_points():
    """Exactly-once-or-poisoned: a poisoned point is covered, not dropped."""
    manifests = _point_manifests()
    shard0 = manifests[0].point_shard
    selected = shard0.partition(POINTS)
    poisoned = _replace_entry(
        manifests[0], "a",
        _point_entry("a", shard0, selected, section_overrides={
            "completed": len(selected) - 1,
            "poisoned": [selected[0]],
        }),
    )
    merged = merge_manifests([poisoned, manifests[1]])
    assert merged.ok
    section = merged.entry_for("a").point_shard
    assert not section  # slices were consumed; no whole-space section


def test_point_merge_rejects_poisoned_outside_selected_slice():
    manifests = _point_manifests()
    shard0 = manifests[0].point_shard
    foreign = manifests[1].point_shard.partition(POINTS)[0]
    tampered = _replace_entry(
        manifests[0], "a",
        _point_entry("a", shard0, shard0.partition(POINTS),
                     section_overrides={"poisoned": [foreign]}),
    )
    with pytest.raises(ShardError, match="not in\\s+their shard's selected"):
        merge_manifests([tampered, manifests[1]])


def test_point_merge_rejects_overcounted_completion():
    """completed + poisoned must not exceed the selected slice."""
    manifests = _point_manifests()
    shard0 = manifests[0].point_shard
    selected = shard0.partition(POINTS)
    inflated = _replace_entry(
        manifests[0], "a",
        _point_entry("a", shard0, selected,
                     section_overrides={"poisoned": [selected[0]]}),
    )
    with pytest.raises(ShardError, match="more completed"):
        merge_manifests([inflated, manifests[1]])


def test_point_merge_detects_planned_space_mismatch():
    manifests = _point_manifests()
    shard0 = manifests[0].point_shard
    other_points = [fingerprint_payload({"other": i}) for i in range(12)]
    drifted = _replace_entry(
        manifests[0], "a",
        _point_entry("a", shard0, shard0.partition(other_points),
                     planned=other_points),
    )
    with pytest.raises(ShardError, match="planned point space"):
        merge_manifests([drifted, manifests[1]])


def test_point_merge_detects_missing_point_shard():
    manifests = _point_manifests()
    with pytest.raises(ShardError, match="missing shard manifests"):
        merge_manifests(manifests[:1])


def test_point_merge_detects_point_count_mismatch():
    two = _point_manifests(point_count=2)
    three = _point_manifests(point_count=3)
    with pytest.raises(ShardError, match="point_shard_count"):
        merge_manifests([two[0], three[1]])


def test_point_merge_detects_study_missing_from_a_slice():
    manifests = _point_manifests()
    narrowed = RunManifest(
        shard_index=0,
        shard_count=1,
        suite=manifests[1].suite,
        entries=manifests[1].entries[:1],  # "b" never ran on this slice
        point_shard_index=1,
        point_shard_count=2,
    )
    with pytest.raises(ShardError, match="appears in point shards"):
        merge_manifests([manifests[0], narrowed])


def test_point_merge_detects_section_manifest_mismatch():
    manifests = _point_manifests()
    confused = _replace_entry(
        manifests[0], "a",
        _point_entry("a", manifests[0].point_shard,
                     manifests[0].point_shard.partition(POINTS),
                     section_overrides={"index": 1}),
    )
    with pytest.raises(ShardError, match="does not match its manifest"):
        merge_manifests([confused, manifests[1]])


def test_point_sharded_manifest_roundtrip(tmp_path):
    manifest = _point_manifests()[1]
    manifest.write(tmp_path)
    loaded = RunManifest.load(tmp_path)
    assert loaded == manifest
    assert loaded.point_shard == PointShard(1, 2)
    assert dict(loaded.entry_for("a").point_shard)["index"] == 1


def test_manifests_without_point_fields_still_load():
    # Pre-point-sharding manifests (PR 4) lack the new keys entirely.
    payload = _manifest([_entry("a")]).to_dict()
    for key in ("point_shard_index", "point_shard_count", "point_merged_from"):
        payload.pop(key)
    for entry in payload["entries"]:
        entry.pop("point_shard")
    loaded = RunManifest.from_dict(payload)
    assert loaded.point_shard_count == 1
    assert dict(loaded.entry_for("a").point_shard) == {}


# --- artifact collection --------------------------------------------------


def test_collect_artifacts_copies_files(tmp_path):
    source = tmp_path / "shard0"
    target = tmp_path / "merged"
    (source / "results").mkdir(parents=True)
    (source / "results" / "a.csv").write_text("x,y\n1,2\n")
    manifest = _manifest([_entry("a", artifacts={"csv": "results/a.csv"})])
    collect_artifacts(manifest, source, target)
    assert (target / "results" / "a.csv").read_text() == "x,y\n1,2\n"


def test_collect_artifacts_missing_file_rejected(tmp_path):
    manifest = _manifest([_entry("a", artifacts={"csv": "results/a.csv"})])
    with pytest.raises(ShardError, match="missing"):
        collect_artifacts(manifest, tmp_path / "nope", tmp_path / "merged")


def test_collect_artifacts_skips_named_studies(tmp_path):
    source = tmp_path / "shard0"
    (source / "results").mkdir(parents=True)
    (source / "results" / "b.csv").write_text("x\n1\n")
    manifest = _manifest([
        _entry("a", artifacts={"csv": "results/a.csv"}),  # partial; never copied
        _entry("b", artifacts={"csv": "results/b.csv"}),
    ])
    collect_artifacts(manifest, source, tmp_path / "merged", skip={"a"})
    assert not (tmp_path / "merged" / "results" / "a.csv").exists()
    assert (tmp_path / "merged" / "results" / "b.csv").exists()


def test_shard_plan_is_frozen():
    plan = plan_shard(SUITE, 0, 2)
    assert isinstance(plan, ShardPlan)
    with pytest.raises(AttributeError):
        plan.shard_index = 5
