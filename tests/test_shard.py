"""Shard planner, run manifests, and manifest merging."""

import json
import random

import pytest

from repro.runtime.fingerprint import fingerprint_payload
from repro.runtime.shard import (
    MANIFEST_FILENAME,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    ManifestEntry,
    RunManifest,
    ShardError,
    ShardPlan,
    assign_fingerprint,
    collect_artifacts,
    merge_manifests,
    partition_fingerprints,
    plan_shard,
    schema_tags,
    shard_assignments,
    source_digest,
    study_fingerprint,
)
from repro.studies.pipeline import REGISTRY

SUITE = tuple(REGISTRY)


# --- planner --------------------------------------------------------------


@pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 5])
def test_every_study_assigned_exactly_once(shard_count):
    plans = [plan_shard(SUITE, i, shard_count) for i in range(shard_count)]
    seen = [name for plan in plans for name in plan.selected]
    assert sorted(seen) == sorted(SUITE)
    assert len(seen) == len(set(seen))


@pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 5])
def test_shard_sizes_balanced(shard_count):
    sizes = [len(plan_shard(SUITE, i, shard_count).selected) for i in range(shard_count)]
    assert max(sizes) - min(sizes) <= 1


def test_assignment_stable_under_registry_reordering():
    reference = shard_assignments(SUITE, 3)
    for seed in range(5):
        shuffled = list(SUITE)
        random.Random(seed).shuffle(shuffled)
        assert shard_assignments(shuffled, 3) == reference
        for i in range(3):
            assert set(plan_shard(shuffled, i, 3).selected) == {
                name for name, shard in reference.items() if shard == i
            }


def test_selection_preserves_suite_order():
    plan = plan_shard(SUITE, 1, 3)
    positions = [SUITE.index(name) for name in plan.selected]
    assert positions == sorted(positions)
    assert plan.suite == SUITE


def test_single_shard_is_whole_suite():
    plan = plan_shard(SUITE, 0, 1)
    assert plan.is_whole_suite
    assert plan.selected == SUITE


def test_invalid_shard_parameters_rejected():
    with pytest.raises(ShardError, match="shard_count"):
        plan_shard(SUITE, 0, 0)
    with pytest.raises(ShardError, match="shard_index"):
        plan_shard(SUITE, 3, 3)
    with pytest.raises(ShardError, match="shard_index"):
        plan_shard(SUITE, -1, 2)
    with pytest.raises(ShardError, match="duplicate"):
        plan_shard(["a", "b", "a"], 0, 2)


# --- fingerprint-space partitioning ---------------------------------------


def test_partition_fingerprints_exact_cover():
    fingerprints = [fingerprint_payload({"point": i}) for i in range(64)]
    for shard_count in (1, 2, 3, 5):
        shards = [
            partition_fingerprints(fingerprints, i, shard_count)
            for i in range(shard_count)
        ]
        combined = [fp for shard in shards for fp in shard]
        assert sorted(combined) == sorted(fingerprints)


def test_assign_fingerprint_deterministic_and_in_range():
    fp = fingerprint_payload({"x": 1})
    assert assign_fingerprint(fp, 4) == assign_fingerprint(fp, 4)
    assert 0 <= assign_fingerprint(fp, 4) < 4
    points = [{"id": fingerprint_payload({"p": i})} for i in range(10)]
    picked = partition_fingerprints(points, 0, 3, key=lambda p: p["id"])
    assert all(assign_fingerprint(p["id"], 3) == 0 for p in picked)


# --- study fingerprints ---------------------------------------------------


def test_study_fingerprint_stable_and_sensitive():
    spec = REGISTRY["fig09_spec_llc"]
    base = study_fingerprint(spec)
    assert base == study_fingerprint(spec)
    assert study_fingerprint(spec, overrides={"n_accesses": 7}) != base
    assert study_fingerprint(spec, seed=1) != base
    assert study_fingerprint(REGISTRY["fig14_writebuffer"]) != base


def test_source_digest_is_stable_hex():
    digest = source_digest()
    assert digest == source_digest()
    assert len(digest) == 64
    int(digest, 16)


def test_schema_tags_cover_every_cache_layer():
    assert set(schema_tags()) == {"arrays", "evaluations", "traces"}


# --- manifests ------------------------------------------------------------


def _entry(name, status=STATUS_OK, **kwargs):
    defaults = {
        "fingerprint": fingerprint_payload({"study": name}),
        "rows": 5,
        "elapsed_s": 0.1,
        "artifacts": {"csv": f"results/{name}.csv"},
        "telemetry": {"completed": 3, "evaluated": 2},
    }
    defaults.update(kwargs)
    return ManifestEntry(name=name, status=status, **defaults)


def _manifest(entries, shard_index=0, shard_count=1, suite=None, **kwargs):
    return RunManifest(
        shard_index=shard_index,
        shard_count=shard_count,
        suite=tuple(suite if suite is not None else (e.name for e in entries)),
        entries=tuple(entries),
        **kwargs,
    )


def test_manifest_roundtrip(tmp_path):
    manifest = _manifest([_entry("a"), _entry("b", status=STATUS_FAILED, error="boom")])
    path = manifest.write(tmp_path)
    assert path.name == MANIFEST_FILENAME
    loaded = RunManifest.load(tmp_path)
    assert loaded == manifest
    assert RunManifest.load(path) == manifest
    assert not loaded.ok
    assert loaded.entry_for("a") == manifest.entries[0]
    assert loaded.entry_for("zzz") is None


def test_manifest_try_load_tolerates_missing_and_corrupt(tmp_path):
    assert RunManifest.try_load(tmp_path) is None
    (tmp_path / MANIFEST_FILENAME).write_text("{not json")
    assert RunManifest.try_load(tmp_path) is None
    (tmp_path / MANIFEST_FILENAME).write_text(json.dumps({"schema": "other-v9"}))
    assert RunManifest.try_load(tmp_path) is None


def test_manifest_rejects_wrong_schema():
    with pytest.raises(ShardError, match="schema"):
        RunManifest.from_dict({"schema": "nope"})


def test_entry_rejects_unknown_status():
    with pytest.raises(ShardError, match="status"):
        ManifestEntry(name="a", status="great")


def test_cached_entries_count_as_ok():
    assert _entry("a", status=STATUS_CACHED).ok
    assert not _entry("a", status=STATUS_FAILED).ok


def test_retained_entries_roundtrip_and_lookup(tmp_path):
    manifest = _manifest([_entry("a")], suite=("a",), retained=(_entry("z"),))
    manifest.write(tmp_path)
    loaded = RunManifest.load(tmp_path)
    assert loaded.retained == manifest.retained
    assert loaded.entry_for("z") is None  # not part of this run
    assert loaded.lookup("z") == manifest.retained[0]
    assert loaded.lookup("a") == manifest.entries[0]
    assert loaded.lookup("missing") is None


# --- merging --------------------------------------------------------------


def _shard_manifests(names=("a", "b", "c", "d", "e"), shard_count=3):
    shards = []
    for i in range(shard_count):
        plan = plan_shard(names, i, shard_count)
        shards.append(
            _manifest(
                [_entry(n) for n in plan.selected],
                shard_index=i,
                shard_count=shard_count,
                suite=names,
            )
        )
    return shards


def test_merge_combines_all_shards_in_suite_order():
    shards = _shard_manifests()
    merged = merge_manifests(shards)
    assert merged.names == ("a", "b", "c", "d", "e")
    assert merged.shard_count == 1
    assert merged.merged_from == (0, 1, 2)
    assert merged.ok


def test_merge_detects_duplicate_study():
    shards = _shard_manifests()
    dup = shards[1].entries[0]
    shards[0] = _manifest(
        list(shards[0].entries) + [dup],
        shard_index=0,
        shard_count=3,
        suite=shards[0].suite,
    )
    with pytest.raises(ShardError, match="more than one shard"):
        merge_manifests(shards)


def test_merge_detects_dropped_study():
    shards = _shard_manifests()
    shards[2] = _manifest(
        shards[2].entries[:-1],
        shard_index=2,
        shard_count=3,
        suite=shards[2].suite,
    )
    with pytest.raises(ShardError, match="dropped"):
        merge_manifests(shards)


def test_merge_detects_missing_shard():
    shards = _shard_manifests()
    with pytest.raises(ShardError, match="missing shard"):
        merge_manifests(shards[:2])


def test_merge_detects_duplicate_shard_index():
    shards = _shard_manifests()
    with pytest.raises(ShardError, match="duplicate shard"):
        merge_manifests([shards[0], shards[0], shards[1]])


def test_merge_detects_suite_mismatch():
    shards = _shard_manifests()
    other = _manifest(
        shards[1].entries, shard_index=1, shard_count=3, suite=("a", "b", "x", "d", "e")
    )
    with pytest.raises(ShardError, match="suite"):
        merge_manifests([shards[0], other, shards[2]])


def test_merge_detects_schema_tag_mismatch():
    shards = _shard_manifests()
    stale = _manifest(
        shards[1].entries,
        shard_index=1,
        shard_count=3,
        suite=shards[1].suite,
        tags={"arrays": "array-cache-v0"},
    )
    with pytest.raises(ShardError, match="schema tags"):
        merge_manifests([shards[0], stale, shards[2]])


def test_merge_detects_shard_count_mismatch():
    shards = _shard_manifests()
    odd = _manifest(
        shards[1].entries, shard_index=1, shard_count=4, suite=shards[1].suite
    )
    with pytest.raises(ShardError, match="shard_count"):
        merge_manifests([shards[0], odd, shards[2]])


def test_merge_rejects_unplanned_study():
    shards = _shard_manifests()
    rogue = _manifest(
        list(shards[0].entries) + [_entry("zzz")],
        shard_index=0,
        shard_count=3,
        suite=shards[0].suite,
    )
    with pytest.raises(ShardError, match="not part of the planned suite"):
        merge_manifests([rogue, shards[1], shards[2]])


def test_merge_nothing_rejected():
    with pytest.raises(ShardError, match="no manifests"):
        merge_manifests([])


# --- artifact collection --------------------------------------------------


def test_collect_artifacts_copies_files(tmp_path):
    source = tmp_path / "shard0"
    target = tmp_path / "merged"
    (source / "results").mkdir(parents=True)
    (source / "results" / "a.csv").write_text("x,y\n1,2\n")
    manifest = _manifest([_entry("a", artifacts={"csv": "results/a.csv"})])
    collect_artifacts(manifest, source, target)
    assert (target / "results" / "a.csv").read_text() == "x,y\n1,2\n"


def test_collect_artifacts_missing_file_rejected(tmp_path):
    manifest = _manifest([_entry("a", artifacts={"csv": "results/a.csv"})])
    with pytest.raises(ShardError, match="missing"):
        collect_artifacts(manifest, tmp_path / "nope", tmp_path / "merged")


def test_shard_plan_is_frozen():
    plan = plan_shard(SUITE, 0, 2)
    assert isinstance(plan, ShardPlan)
    with pytest.raises(AttributeError):
        plan.shard_index = 5
