"""Case-study tests: each paper study produces its expected *shape*.

These are the library-level counterparts of the reproduction benches in
``benchmarks/`` — smaller sweeps, same qualitative assertions.
"""

import pytest

from repro.studies import (
    acceptable,
    area_efficiency_study,
    back_gated_fefet_study,
    continuous_study,
    dnn_buffer_arrays,
    fefet_stt_crossover,
    graph_study,
    intermittent_study,
    intermittent_sweep,
    llc_arrays,
    llc_study,
    low_efficiency_latency_advantage,
    lowest_power_technology,
    mlc_study,
    optimization_target_study,
    preferred_technologies,
    tentpole_validation,
    best_lifetime_technology,
    worst_lifetime_technology,
    winner_per_benchmark,
    feasible,
    writebuffer_study,
    performant_technologies,
)
from repro.runtime.options import RuntimeOptions
from repro.studies.pipeline import REGISTRY
from repro.traffic import ALBERT, RESNET26
from repro.units import mb


#: Per-study parameter overrides that shrink the regression sweeps below
#: without changing which code paths run.
_SHRINK = {
    "fig03_array_targets": {"capacity_bytes": mb(1)},
    "fig05_dnn_arrays": {"capacity_bytes": mb(1)},
    "fig08_graph": {"points_per_axis": 2, "include_kernels": False},
    "fig12_area_efficiency": {"traffic_points": 2, "capacity_bytes": mb(4)},
    "fig13_mlc": {"trials": 1, "capacities": (mb(8),)},
    "ext_retention": {"inferences_per_day": (1.0, 1e3)},
    "ext_synthetic_llc": {"n_accesses": 20_000},
}


class TestRegistryRuntime:
    """Every registered study honors the shared runtime options.

    The regression the registry exists to prevent: studies silently
    dropping ``workers``/``cache_dir`` (the old ``inspect``-probed,
    lambda-wrapped ``summary.STUDIES`` did exactly that for
    fig11/fig12/fig13).
    """

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_cache_dir_honored_and_warm_run_identical(self, name, tmp_path):
        spec = REGISTRY[name]
        runtime = RuntimeOptions(cache_dir=tmp_path / "cache")
        overrides = _SHRINK.get(name, {})
        cold = spec.run(runtime, **overrides)
        warm = spec.run(runtime, **overrides)
        assert cold.ok and warm.ok
        # cache_dir honored: the second run recomputes nothing.
        assert warm.telemetry.completed == 0, name
        assert warm.telemetry.evaluated == 0, name
        assert warm.telemetry.trace_simulated == 0, name
        assert warm.telemetry.cached + warm.telemetry.eval_cached > 0, name
        # parity: cached rows identical to freshly computed rows.
        assert list(warm.table) == list(cold.table), name

    def test_workers_honored_rows_identical(self, tmp_path):
        spec = REGISTRY["fig08_graph"]
        serial = spec.run(RuntimeOptions(workers=1), points_per_axis=2)
        parallel = spec.run(RuntimeOptions(workers=2), points_per_axis=2)
        assert list(serial.table) == list(parallel.table)

    def test_every_builder_takes_runtime_keyword(self):
        import inspect

        for name, spec in REGISTRY.items():
            assert "runtime" in inspect.signature(spec.builder).parameters, name

    def test_trace_cache_used_by_synthetic_llc(self, tmp_path):
        runtime = RuntimeOptions(cache_dir=tmp_path / "cache")
        cold = REGISTRY["ext_synthetic_llc"].run(runtime, n_accesses=20_000)
        assert cold.telemetry.trace_simulated == 4  # one per synthetic workload
        trace_dir = tmp_path / "cache" / "traces"
        assert trace_dir.exists()
        assert any(trace_dir.glob("??/*.json"))
        warm = REGISTRY["ext_synthetic_llc"].run(runtime, n_accesses=20_000)
        assert warm.telemetry.trace_simulated == 0
        assert warm.telemetry.trace_cached == 4

    def test_seed_reaches_synthetic_traces(self, tmp_path):
        """runtime.seed must change the regenerated traffic, not be dropped."""
        cache = tmp_path / "cache"
        REGISTRY["ext_synthetic_llc"].run(
            RuntimeOptions(cache_dir=cache, seed=1), n_accesses=20_000)
        reseeded = REGISTRY["ext_synthetic_llc"].run(
            RuntimeOptions(cache_dir=cache, seed=2), n_accesses=20_000)
        # A different seed is a different trace fingerprint: nothing warm.
        assert reseeded.telemetry.trace_simulated == 4
        assert reseeded.telemetry.trace_cached == 0


@pytest.fixture(scope="module")
def graph_table():
    return graph_study(points_per_axis=3)


@pytest.fixture(scope="module")
def continuous_table():
    return continuous_study()


@pytest.fixture(scope="module")
def llc_table():
    return llc_study()


class TestArrayStudies:
    def test_fig3_covers_cells_and_targets(self):
        table = optimization_target_study(capacity_bytes=mb(1))
        assert len(table.unique("target")) == 6
        assert "SRAM" in table.unique("tech")

    def test_fig3_targets_trade_off(self):
        table = optimization_target_study(capacity_bytes=mb(1))
        stt = table.where(cell="STT-optimistic")
        latency_opt = stt.where(target="ReadLatency")[0]
        area_opt = stt.where(target="Area")[0]
        assert latency_opt["read_latency_ns"] <= area_opt["read_latency_ns"]
        assert area_opt["area_mm2"] <= latency_opt["area_mm2"]

    def test_fig4_validation_brackets_published_macro(self):
        for result in tentpole_validation():
            assert result.covered or result.within_order_of_magnitude, result

    def test_fig5_density_and_tiers(self):
        table = dnn_buffer_arrays(capacity_bytes=mb(2))
        sram = table.where(tech="SRAM")[0]
        stt = table.where(cell="STT-optimistic")[0]
        fefet = table.where(cell="FeFET-optimistic")[0]
        # optimistic STT several-fold denser than SRAM; FeFET densest of all
        assert stt["density_mbit_mm2"] > 3 * sram["density_mbit_mm2"]
        assert fefet["density_mbit_mm2"] == max(
            r["density_mbit_mm2"] for r in table
        )
        # FeFET read energy is a tier above the other optimistic eNVMs
        others = [
            r["read_energy_pj"]
            for r in table
            if r["flavor"] == "optimistic" and r["tech"] in ("STT", "PCM", "RRAM")
        ]
        assert fefet["read_energy_pj"] > 3 * max(others)

    def test_fig10_only_stt_and_rram_beat_sram_writes(self):
        table = llc_arrays(capacity_bytes=mb(16)).where(target="ReadEDP")
        sram_write = table.where(tech="SRAM")[0]["write_latency_ns"]
        beating = {
            r["tech"]
            for r in table
            if r["tech"] != "SRAM" and r["write_latency_ns"] < sram_write
        }
        assert beating == {"STT", "RRAM"}


class TestDNNStudy:
    def test_fig6_envm_power_advantage(self, continuous_table):
        rows = continuous_table.where(workload="resnet26-weights-60fps")
        sram = rows.where(tech="SRAM")[0]["total_power_mw"]
        for tech in ("PCM", "RRAM", "STT"):
            best = rows.where(tech=tech, flavor="optimistic")[0]["total_power_mw"]
            assert sram / best > 4.0, tech
        fefet = rows.where(tech="FeFET", flavor="optimistic")[0]["total_power_mw"]
        assert 1.5 < sram / fefet < 6.0

    def test_fig6_feasibility_excludes_slow_writers(self, continuous_table):
        acts = continuous_table.where(workload="resnet26-weights+acts-60fps")
        slow = acts.where(cell="PCM-pessimistic")[0]
        assert not slow["meets_fps"]

    def test_fig6_intermittent_winners_low_density_tier(self):
        table = intermittent_study()
        single = table.where(workload="resnet26")
        best = single.min_by("energy_per_inference_uj")
        assert best["tech"] in {"RRAM", "STT", "PCM"}

    def test_fig7_crossover_location(self):
        albert = fefet_stt_crossover(ALBERT, mb(32))
        assert 1e2 < albert < 1e5

    def test_fig7_albert_crosses_before_resnet(self):
        albert = fefet_stt_crossover(ALBERT, mb(32))
        resnet = fefet_stt_crossover(RESNET26, mb(2))
        assert albert < resnet

    def test_fig7_sweep_monotone_energy(self):
        table = intermittent_sweep(RESNET26, mb(2), rates_per_day=(1, 1e3, 1e6))
        for cell in table.unique("cell"):
            energies = table.where(cell=cell).sort_by("inferences_per_day")
            values = energies.column("energy_per_day_j")
            assert values == sorted(values)

    def test_table2_density_priority_picks_fefet_then_ctt_like(self):
        choices = preferred_technologies()
        density_rows = [c for c in choices if c.priority == "high-density"]
        assert density_rows
        assert all(c.optimistic_winner == "FeFET" for c in density_rows)


class TestGraphStudy:
    def test_fig8_fefet_wins_low_read_rates(self, graph_table):
        assert lowest_power_technology(graph_table, 1e6) == "FeFET"

    def test_fig8_stt_wins_high_read_rates(self, graph_table):
        assert lowest_power_technology(graph_table, 1.25e9) == "STT"

    def test_fig8_stt_best_lifetime_rram_worst(self, graph_table):
        assert best_lifetime_technology(graph_table) == "STT"
        assert worst_lifetime_technology(graph_table) == "RRAM"

    def test_fig8_fefet_fails_high_write_traffic(self, graph_table):
        """Pessimistic FeFET misses SRAM-level latency at high writes."""
        heavy = graph_table.filter(
            lambda r: r["writes_per_s"] > 1e7 and r["reads_per_s"] > 1e8
        )
        sram = min(
            r["memory_latency_s_per_s"] for r in heavy if r["tech"] == "SRAM"
        )
        fefet = min(
            r["memory_latency_s_per_s"]
            for r in heavy
            if r["cell"] == "FeFET-pessimistic"
        )
        assert fefet > sram

    def test_fig8_kernel_points_included(self, graph_table):
        workloads = set(graph_table.column("workload"))
        assert "Facebook-Graph-BFS" in workloads
        assert "Wikipedia-BFS" in workloads


class TestLLCStudy:
    def test_fig9_rram_not_viable_lifetime(self, llc_table):
        """RRAM lifetime collapses under write-heavy SPEC benchmarks."""
        rows = feasible(llc_table).where(cell="RRAM-optimistic", workload="619.lbm_s")
        assert rows
        assert rows[0]["lifetime_years"] < 1.0

    def test_fig9_stt_best_lifetime(self, llc_table):
        rows = feasible(llc_table).where(workload="619.lbm_s", flavor="optimistic")
        lifetimes = {
            r["tech"]: (float("inf") if r["lifetime_years"] is None else r["lifetime_years"])
            for r in rows
        }
        assert lifetimes["STT"] == max(lifetimes.values())

    def test_fig9_low_rate_winners_are_dense_technologies(self, llc_table):
        winners = winner_per_benchmark(llc_table)
        low_rate = winners["648.exchange2_s"]
        assert low_rate in {"RRAM", "FeFET"}

    def test_fig9_all_plotted_meet_bandwidth(self, llc_table):
        ok = feasible(llc_table)
        assert all(r["feasible"] for r in ok)


class TestCodesign:
    def test_fig11_bg_fefet_closes_write_gap(self):
        table = back_gated_fefet_study(points_per_axis=2)
        bg = table.where(cell="FeFET-back-gated")
        std = table.where(cell="FeFET-optimistic")
        assert max(bg.column("write_latency_ns")) < max(std.column("write_latency_ns")) / 5
        # BG-FeFET meets latency in strictly more scenarios.
        bg_ok = sum(1 for r in bg if r["memory_latency_s_per_s"] <= 1.0)
        std_ok = sum(1 for r in std if r["memory_latency_s_per_s"] <= 1.0)
        assert bg_ok >= std_ok

    def test_fig11_bg_fefet_trades_density_and_read_energy(self):
        table = back_gated_fefet_study(points_per_axis=2)
        bg = table.where(cell="FeFET-back-gated")[0]
        std = table.where(cell="FeFET-optimistic")[0]
        assert bg["density_mbit_mm2"] < std["density_mbit_mm2"]

    def test_fig12_latency_optimal_designs_sacrifice_efficiency(self):
        from repro.studies import efficiency_of_latency_extremes

        extremes = efficiency_of_latency_extremes()
        for tech, values in extremes.items():
            assert (
                values["latency_optimal_efficiency"] < values["max_efficiency"]
            ), tech
            assert (
                values["latency_optimal_ns"] <= values["max_efficiency_latency_ns"]
            ), tech

    def test_fig12_median_split_reports(self):
        cloud = area_efficiency_study(traffic_points=2)
        medians = low_efficiency_latency_advantage(cloud, efficiency_threshold=0.5)
        assert medians["low_eff_median"] > 0
        assert medians["high_eff_median"] > 0


class TestMLCStudy:
    @pytest.fixture(scope="class")
    def mlc_table(self):
        return mlc_study(capacities=(mb(8),), trials=2)

    def test_fig13_mlc_rram_acceptable_and_denser(self, mlc_table):
        rram_mlc = mlc_table.where(tech="RRAM", bits_per_cell=2)[0]
        rram_slc = mlc_table.where(tech="RRAM", bits_per_cell=1)[0]
        assert rram_mlc["accuracy_ok"]
        assert rram_mlc["density_mbit_mm2"] > 1.5 * rram_slc["density_mbit_mm2"]

    def test_fig13_small_fefet_mlc_fails(self, mlc_table):
        small = mlc_table.where(cell="FeFET-2F2", bits_per_cell=2)[0]
        large = mlc_table.where(cell="FeFET-103F2", bits_per_cell=2)[0]
        assert not small["accuracy_ok"]
        assert large["accuracy_ok"]

    def test_fig13_slc_acceptable_everywhere(self, mlc_table):
        slc = mlc_table.where(bits_per_cell=1)
        assert all(r["accuracy_ok"] for r in slc)

    def test_fig13_filter(self, mlc_table):
        ok = acceptable(mlc_table)
        assert 0 < len(ok) < len(mlc_table)


class TestWriteBufferStudy:
    @pytest.fixture(scope="class")
    def wb_table(self):
        return writebuffer_study()

    def test_fig14_buffering_expands_viable_set(self, wb_table):
        budget = 0.45
        before = performant_technologies(
            wb_table, "Facebook-Graph-BFS", "no-buffer", latency_budget=budget
        )
        after = performant_technologies(
            wb_table, "Facebook-Graph-BFS", "mask+reduce50", latency_budget=budget
        )
        assert before <= after
        assert len(after) > len(before)

    def test_fig14_stt_stays_lowest_power_high_traffic(self, wb_table):
        rows = wb_table.where(base_workload="Facebook-Graph-BFS",
                              scenario="mask+reduce50", flavor="optimistic")
        best = rows.min_by("total_power_mw")
        assert best["tech"] == "STT"

    def test_fig14_masking_does_not_change_power(self, wb_table):
        plain = wb_table.where(base_workload="605.mcf_s", scenario="no-buffer",
                               cell="PCM-optimistic")[0]
        masked = wb_table.where(base_workload="605.mcf_s", scenario="mask-only",
                                cell="PCM-optimistic")[0]
        assert masked["total_power_mw"] == pytest.approx(plain["total_power_mw"])
        assert masked["memory_latency_s_per_s"] < plain["memory_latency_s_per_s"]
