"""Unit-constant and conversion helper tests."""

import math

from repro import units


def test_capacity_helpers():
    assert units.mb(1) == 1024 * 1024
    assert units.mb(2.5) == int(2.5 * 1024 * 1024)
    assert units.kb(4) == 4096


def test_time_conversions():
    assert units.to_ns(1e-9) == 1.0
    assert units.to_ns(2.5e-9) == 2.5


def test_energy_power_conversions():
    assert units.to_pj(1e-12) == 1.0
    assert units.to_mw(0.001) == 1.0


def test_area_conversion():
    assert math.isclose(units.to_mm2(1e-6), 1.0)


def test_years_roundtrip():
    assert math.isclose(units.years(units.SECONDS_PER_YEAR), 1.0)
    assert math.isclose(units.years(units.SECONDS_PER_DAY) * 365.25, 1.0)


def test_prefix_constants_are_consistent():
    assert units.NANOSECOND == 1e-9
    assert units.PICOJOULE == 1e-12
    assert units.MICROWATT == 1e-6
    assert units.MB == 1024 * units.KB
    assert units.GB == 1024 * units.MB
    assert units.BITS_PER_BYTE == 8
