"""Numpy DNN substrate tests: layers, network, data, proxies."""

import numpy as np
import pytest

from repro.dnn import (
    MLP,
    Dense,
    ReLU,
    cross_entropy_grad,
    gaussian_clusters,
    softmax,
    trained_proxy,
)
from repro.errors import ReproError


class TestLayers:
    def test_dense_forward_shape(self):
        layer = Dense(4, 3)
        out = layer.forward(np.ones((5, 4), dtype=np.float32))
        assert out.shape == (5, 3)

    def test_dense_gradient_check(self):
        """Numerical vs analytical gradient on a tiny layer."""
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        grad_out = rng.normal(size=(4, 2)).astype(np.float32)

        layer.forward(x)
        layer.backward(grad_out)
        analytical = layer.grad_weight.copy()

        eps = 1e-4
        numerical = np.zeros_like(layer.weight)
        for i in range(3):
            for j in range(2):
                layer.weight[i, j] += eps
                plus = float((layer.forward(x) * grad_out).sum())
                layer.weight[i, j] -= 2 * eps
                minus = float((layer.forward(x) * grad_out).sum())
                layer.weight[i, j] += eps
                numerical[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(analytical, numerical, atol=1e-2)

    def test_dense_backward_before_forward(self):
        with pytest.raises(ReproError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_relu(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.array_equal(relu.forward(x), [[0.0, 0.0, 2.0]])
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, [[0.0, 0.0, 1.0]])

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(1).normal(size=(6, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_stability_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = cross_entropy_grad(logits, np.array([0, 1]))
        assert loss < 1e-6
        assert np.allclose(grad, 0.0, atol=1e-6)


class TestMLP:
    def test_construction_validates(self):
        with pytest.raises(ReproError):
            MLP([4])

    def test_training_reduces_loss(self):
        data = gaussian_clusters(n_classes=4, train_per_class=50, test_per_class=20)
        net = MLP((data.n_features, 32, 4), seed=1)
        first = net.train_step(data.x_train, data.y_train, 0.05)
        for _ in range(40):
            last = net.train_step(data.x_train, data.y_train, 0.05)
        assert last < first

    def test_weight_roundtrip(self):
        net = MLP((4, 8, 2), seed=0)
        weights = net.get_weights()
        assert len(weights) == 2
        weights[0][:] = 0.0
        net.set_weights(weights)
        assert np.all(net.dense_layers[0].weight == 0.0)

    def test_get_weights_returns_copies(self):
        net = MLP((4, 8, 2), seed=0)
        weights = net.get_weights()
        weights[0][:] = 99.0
        assert not np.any(net.dense_layers[0].weight == 99.0)

    def test_set_weights_validates_shapes(self):
        net = MLP((4, 8, 2), seed=0)
        with pytest.raises(ReproError):
            net.set_weights([np.zeros((4, 8))])
        with pytest.raises(ReproError):
            net.set_weights([np.zeros((4, 9)), np.zeros((8, 2))])

    def test_parameter_count(self):
        net = MLP((4, 8, 2), seed=0)
        assert net.n_parameters == (4 * 8 + 8) + (8 * 2 + 2)


class TestData:
    def test_deterministic(self):
        a = gaussian_clusters(seed=9)
        b = gaussian_clusters(seed=9)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_shapes_and_classes(self):
        data = gaussian_clusters(n_classes=5, train_per_class=10, test_per_class=4)
        assert data.x_train.shape == (50, 16)
        assert data.x_test.shape == (20, 16)
        assert set(np.unique(data.y_train)) == set(range(5))

    def test_too_few_classes_rejected(self):
        with pytest.raises(ReproError):
            gaussian_clusters(n_classes=1)


class TestProxies:
    def test_registry_trains_and_caches(self):
        a = trained_proxy("resnet18")
        b = trained_proxy("resnet18")
        assert a is b
        assert a.baseline_accuracy > 0.75

    def test_unknown_proxy_rejected(self):
        with pytest.raises(ReproError):
            trained_proxy("gpt-17")

    def test_evaluate_with_weights_restores_originals(self):
        proxy = trained_proxy("resnet18")
        before = proxy.network.get_weights()
        zeroed = [np.zeros_like(w) for w in before]
        degraded = proxy.evaluate_with_weights(zeroed)
        after = proxy.network.get_weights()
        assert degraded < proxy.baseline_accuracy
        for b, a in zip(before, after):
            assert np.array_equal(b, a)

    def test_accuracy_under_clean_model_matches_baseline(self):
        from repro.faults import FaultModel
        from repro.cells import TechnologyClass

        proxy = trained_proxy("resnet18")
        clean = FaultModel(TechnologyClass.RRAM, 1, 0.0)
        acc = proxy.accuracy_under_model(clean, trials=1)
        # int8 quantization costs at most a sliver of accuracy
        assert acc >= proxy.baseline_accuracy - 0.03

    def test_catastrophic_error_rate_destroys_accuracy(self):
        from repro.faults import FaultModel
        from repro.cells import TechnologyClass

        proxy = trained_proxy("resnet18")
        broken = FaultModel(TechnologyClass.RRAM, 1, 0.4)
        acc = proxy.accuracy_under_model(broken, trials=2)
        assert acc < proxy.baseline_accuracy - 0.2
