"""Configuration schema, loader, and CLI tests."""

import json
from pathlib import Path

import pytest

from repro.config import (
    is_study_config,
    is_suite_config,
    load_config,
    parse_config,
    parse_study_config,
    parse_suite_config,
    run_config,
    run_study_config,
)
from repro.config.cli import main as cli_main
from repro.errors import ConfigError


def minimal_config(**overrides):
    config = {
        "name": "test-sweep",
        "cells": {"technologies": ["STT"], "flavors": ["optimistic"]},
        "system": {"capacities_mb": [1]},
    }
    config.update(overrides)
    return config


class TestSchema:
    def test_minimal_config_parses(self):
        parsed = parse_config(minimal_config())
        assert parsed.name == "test-sweep"
        assert len(parsed.cells) == 1
        assert parsed.capacities_bytes == [1024 * 1024]

    def test_missing_cells_rejected(self):
        with pytest.raises(ConfigError):
            parse_config({"name": "x"})

    def test_empty_cell_selection_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(minimal_config(cells={"technologies": []}))

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                minimal_config(cells={"technologies": ["STT"], "flavors": ["shiny"]})
            )

    def test_sram_baseline_included(self):
        parsed = parse_config(
            minimal_config(
                cells={"technologies": ["STT"], "flavors": ["optimistic"],
                       "include_sram": True}
            )
        )
        names = {c.name for c in parsed.cells}
        assert "SRAM-16nm" in names

    def test_custom_cell(self):
        config = minimal_config()
        config["cells"]["custom"] = [
            {"name": "my-rram", "tech_class": "RRAM", "area_f2": 6.0}
        ]
        parsed = parse_config(config)
        assert any(c.name == "my-rram" for c in parsed.cells)

    def test_custom_cell_bad_field_rejected(self):
        config = minimal_config()
        config["cells"]["custom"] = [
            {"name": "bad", "tech_class": "RRAM", "area_f2": 6.0, "wat": 1}
        ]
        with pytest.raises(ConfigError):
            parse_config(config)

    def test_traffic_kinds(self):
        for kind, expectation in (
            ({"kind": "generic", "points": 2}, 4),
            ({"kind": "spec2017"}, 20),
            ({"kind": "dnn-continuous"}, 4),
        ):
            parsed = parse_config(minimal_config(traffic=kind))
            assert len(parsed.traffic) == expectation

    def test_dnn_intermittent_traffic(self):
        parsed = parse_config(
            minimal_config(
                traffic={"kind": "dnn-intermittent", "workload": "albert",
                         "capacity_mb": 32}
            )
        )
        assert len(parsed.traffic) == 1
        assert "albert" in parsed.traffic[0].name

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                minimal_config(traffic={"kind": "dnn-intermittent",
                                        "workload": "nope"})
            )

    def test_unknown_traffic_kind_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(minimal_config(traffic={"kind": "quantum"}))

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            parse_config(
                minimal_config(system={"capacities_mb": [1],
                                       "optimization_targets": ["Vibes"]})
            )

    def test_bits_per_cell_validated(self):
        with pytest.raises(ConfigError):
            parse_config(
                minimal_config(system={"capacities_mb": [1], "bits_per_cell": 0})
            )


class TestLoader:
    def test_run_config_from_dict(self):
        table = run_config(minimal_config())
        assert len(table) == 1
        assert table[0]["tech"] == "STT"

    def test_run_config_from_file_with_csv(self, tmp_path):
        out_csv = tmp_path / "results.csv"
        config = minimal_config(output_csv=str(out_csv))
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(config))
        table = run_config(path)
        assert out_csv.exists()
        assert len(table) == 1

    def test_missing_file(self):
        with pytest.raises(ConfigError):
            load_config("/nonexistent/config.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_config(path)


class TestCLI:
    def test_cli_happy_path(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(minimal_config()))
        code = cli_main([str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 result rows" in out

    def test_cli_table_flag(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(minimal_config()))
        assert cli_main([str(path), "--table"]) == 0
        assert "| cell |" in capsys.readouterr().out

    def test_cli_csv_flag(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(minimal_config()))
        out_csv = tmp_path / "o.csv"
        assert cli_main([str(path), "--csv", str(out_csv)]) == 0
        assert out_csv.exists()

    def test_cli_error_path(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "missing.json")]) == 1
        assert "error" in capsys.readouterr().err


def study_config(**overrides):
    config = {
        "study": "ext_hierarchy",
        "params": {"read_hit_rate": 0.5},
        "runtime": {"workers": 1},
    }
    config.update(overrides)
    return config


class TestRuntimeSectionExtensions:
    def test_trace_cache_dir_and_seed_parsed(self):
        parsed = parse_config(minimal_config(
            runtime={"workers": 2, "cache_dir": "c",
                     "trace_cache_dir": "t", "seed": 11}
        ))
        assert parsed.trace_cache_dir == "t"
        assert parsed.seed == 11
        options = parsed.runtime_options()
        assert options.workers == 2
        assert str(options.effective_trace_cache_dir) == "t"
        assert options.seed == 11

    def test_trace_cache_defaults_from_cache_dir(self):
        options = parse_config(minimal_config(
            runtime={"cache_dir": "root"}
        )).runtime_options()
        assert str(options.effective_trace_cache_dir) == str(Path("root") / "traces")


class TestStudyConfig:
    def test_parse_study_config(self):
        parsed = parse_study_config(study_config())
        assert parsed.study == "ext_hierarchy"
        assert parsed.params == {"read_hit_rate": 0.5}
        assert parsed.runtime.workers == 1

    def test_unknown_study_rejected(self):
        with pytest.raises(ConfigError, match="unknown study"):
            parse_study_config(study_config(study="fig99_flying_cars"))

    def test_missing_study_key_rejected(self):
        with pytest.raises(ConfigError):
            parse_study_config({"params": {}})

    def test_is_study_config(self):
        assert is_study_config(study_config())
        assert not is_study_config(minimal_config())

    def test_load_config_rejects_study_configs(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text(json.dumps(study_config()))
        with pytest.raises(ConfigError, match="registered-study"):
            load_config(path)

    def test_run_study_config_writes_artifacts(self, tmp_path):
        config = study_config(
            output_csv=str(tmp_path / "h.csv"),
            report_md=str(tmp_path / "h.md"),
        )
        table = run_study_config(config)
        assert len(table) == 9
        assert (tmp_path / "h.csv").exists()
        report = (tmp_path / "h.md").read_text()
        assert "Reproduces paper" in report

    def test_run_study_config_bad_param_rejected(self):
        with pytest.raises(ConfigError, match="bad params"):
            run_study_config(study_config(params={"warp_factor": 9}))

    def test_run_study_config_runtime_overrides(self, tmp_path):
        cache = tmp_path / "cache"
        run_study_config(study_config(), cache_dir=str(cache))
        assert (cache / "arrays").exists()


class TestStudyCLI:
    def test_list_studies(self, capsys):
        assert cli_main(["list-studies"]) == 0
        assert "fig09_spec_llc" in capsys.readouterr().out

    def test_run_study_happy_path(self, tmp_path, capsys):
        out_csv = tmp_path / "h.csv"
        code = cli_main(["run-study", "ext_hierarchy", "--csv", str(out_csv)])
        assert code == 0
        assert out_csv.exists()
        assert "9 result rows" in capsys.readouterr().out

    def test_run_study_param_override(self, capsys):
        code = cli_main([
            "run-study", "ext_hierarchy",
            "--param", "front_sizes_kb=[16]", "--table",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 result rows" in out

    def test_run_study_unknown_name(self, capsys):
        assert cli_main(["run-study", "fig99_flying_cars"]) == 1
        assert "unknown study" in capsys.readouterr().err

    def test_run_study_bad_param_syntax(self, capsys):
        assert cli_main(["run-study", "ext_hierarchy", "--param", "oops"]) == 1
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_study_config_file_dispatched(self, tmp_path, capsys):
        path = tmp_path / "study.json"
        path.write_text(json.dumps(study_config()))
        assert cli_main([str(path)]) == 0
        assert "9 result rows" in capsys.readouterr().out

    def test_runtime_flags_forwarded(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(minimal_config()))
        cache = tmp_path / "cache"
        assert cli_main([str(path), "--cache-dir", str(cache)]) == 0
        assert (cache / "arrays").exists()


def suite_config(tmp_path, **suite_overrides):
    suite = {
        "only": ["ext_hierarchy"],
        "output_dir": str(tmp_path / "out"),
        "shard_index": 0,
        "shard_count": 1,
        "incremental": True,
    }
    suite.update(suite_overrides)
    return {"suite": suite}


class TestSuiteConfig:
    def test_is_suite_config(self, tmp_path):
        assert is_suite_config(suite_config(tmp_path))
        assert not is_suite_config(minimal_config())
        assert not is_study_config(suite_config(tmp_path))

    def test_parse_defaults(self):
        parsed = parse_suite_config({"suite": {}})
        assert parsed.only is None
        assert parsed.output_dir == "output"
        assert parsed.shard_index == 0
        assert parsed.shard_count == 1
        assert parsed.incremental
        assert parsed.point_shard_index is None
        assert parsed.point_shard_count is None

    def test_unknown_study_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown study"):
            parse_suite_config(suite_config(tmp_path, only=["fig99_warp"]))

    def test_bad_shard_bounds_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="shard_count"):
            parse_suite_config(suite_config(tmp_path, shard_count=0))
        with pytest.raises(ConfigError, match="shard_index"):
            parse_suite_config(suite_config(tmp_path, shard_index=2, shard_count=2))

    def test_point_shard_keys_parsed(self, tmp_path):
        parsed = parse_suite_config(suite_config(
            tmp_path, point_shard_index=1, point_shard_count=3))
        assert parsed.point_shard_index == 1
        assert parsed.point_shard_count == 3
        count_only = parse_suite_config(suite_config(tmp_path,
                                                     point_shard_count=2))
        assert count_only.point_shard_index == 0
        assert count_only.point_shard_count == 2

    def test_bad_point_shard_bounds_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="point_shard_count"):
            parse_suite_config(suite_config(tmp_path, point_shard_count=0))
        with pytest.raises(ConfigError, match="point_shard_index"):
            parse_suite_config(suite_config(
                tmp_path, point_shard_index=2, point_shard_count=2))

    def test_only_must_be_a_list(self, tmp_path):
        with pytest.raises(ConfigError, match="list of study names"):
            parse_suite_config(suite_config(tmp_path, only="ext_hierarchy"))

    def test_load_config_rejects_suite_shape(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(suite_config(tmp_path)))
        with pytest.raises(ConfigError, match="suite-run config"):
            load_config(path)


class TestSuiteCLI:
    def test_suite_config_dispatched(self, tmp_path, capsys):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(suite_config(tmp_path)))
        assert cli_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "| ext_hierarchy | ok |" in out
        assert (tmp_path / "out" / "manifest.json").exists()
        # Second run: fully incremental, distinct exit code.
        assert cli_main([str(path)]) == 3
        assert "| ext_hierarchy | cached |" in capsys.readouterr().out

    def test_merge_shards_subcommand(self, tmp_path, capsys):
        for i in range(2):
            path = tmp_path / f"suite{i}.json"
            path.write_text(json.dumps(suite_config(
                tmp_path,
                only=["ext_hierarchy", "fig05_dnn_arrays"],
                output_dir=str(tmp_path / f"s{i}"),
                shard_index=i,
                shard_count=2,
            )))
            assert cli_main([str(path)]) == 0
        capsys.readouterr()
        rc = cli_main(["merge-shards", str(tmp_path / "merged"),
                       str(tmp_path / "s0"), str(tmp_path / "s1")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 studies from 2 shard(s)" in out
        assert (tmp_path / "merged" / "manifest.json").exists()

    def test_suite_config_rejects_table_output_flags(self, tmp_path, capsys):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(suite_config(tmp_path)))
        assert cli_main([str(path), "--csv", str(tmp_path / "x.csv")]) == 1
        assert "not supported for suite configs" in capsys.readouterr().err

    def test_merge_shards_incomplete_rejected(self, tmp_path, capsys):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(suite_config(
            tmp_path, output_dir=str(tmp_path / "s0"),
            shard_index=0, shard_count=2,
        )))
        assert cli_main([str(path)]) == 0
        capsys.readouterr()
        rc = cli_main(["merge-shards", str(tmp_path / "merged"),
                       str(tmp_path / "s0")])
        assert rc == 2
        assert "missing shard" in capsys.readouterr().err

    def test_point_sharded_suite_merge(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        for i in range(2):
            path = tmp_path / f"point{i}.json"
            config = suite_config(
                tmp_path, only=["fig09_spec_llc"],
                output_dir=str(tmp_path / f"p{i}"),
                point_shard_index=i, point_shard_count=2,
            )
            config["runtime"] = {"cache_dir": cache}
            path.write_text(json.dumps(config))
            assert cli_main([str(path)]) == 0
        capsys.readouterr()
        rc = cli_main(["merge-shards", str(tmp_path / "merged"),
                       str(tmp_path / "p0"), str(tmp_path / "p1"),
                       "--cache-dir", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| fig09_spec_llc | ok |" in out
        assert "1 studies from 2 shard(s)" in out

    def test_run_study_point_shard_flags(self, tmp_path, capsys):
        assert cli_main(["run-study", "fig09_spec_llc"]) == 0
        full = int(capsys.readouterr().out.split(" result rows")[0])
        shard_rows = []
        for i in range(2):
            assert cli_main(["run-study", "fig09_spec_llc",
                             "--point-shard-index", str(i),
                             "--point-shard-count", "2"]) == 0
            shard_rows.append(int(capsys.readouterr().out.split(" result rows")[0]))
        assert sum(shard_rows) == full
        assert all(rows < full for rows in shard_rows)
