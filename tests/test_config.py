"""Configuration schema, loader, and CLI tests."""

import json

import pytest

from repro.config import load_config, parse_config, run_config
from repro.config.cli import main as cli_main
from repro.errors import ConfigError


def minimal_config(**overrides):
    config = {
        "name": "test-sweep",
        "cells": {"technologies": ["STT"], "flavors": ["optimistic"]},
        "system": {"capacities_mb": [1]},
    }
    config.update(overrides)
    return config


class TestSchema:
    def test_minimal_config_parses(self):
        parsed = parse_config(minimal_config())
        assert parsed.name == "test-sweep"
        assert len(parsed.cells) == 1
        assert parsed.capacities_bytes == [1024 * 1024]

    def test_missing_cells_rejected(self):
        with pytest.raises(ConfigError):
            parse_config({"name": "x"})

    def test_empty_cell_selection_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(minimal_config(cells={"technologies": []}))

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                minimal_config(cells={"technologies": ["STT"], "flavors": ["shiny"]})
            )

    def test_sram_baseline_included(self):
        parsed = parse_config(
            minimal_config(
                cells={"technologies": ["STT"], "flavors": ["optimistic"],
                       "include_sram": True}
            )
        )
        names = {c.name for c in parsed.cells}
        assert "SRAM-16nm" in names

    def test_custom_cell(self):
        config = minimal_config()
        config["cells"]["custom"] = [
            {"name": "my-rram", "tech_class": "RRAM", "area_f2": 6.0}
        ]
        parsed = parse_config(config)
        assert any(c.name == "my-rram" for c in parsed.cells)

    def test_custom_cell_bad_field_rejected(self):
        config = minimal_config()
        config["cells"]["custom"] = [
            {"name": "bad", "tech_class": "RRAM", "area_f2": 6.0, "wat": 1}
        ]
        with pytest.raises(ConfigError):
            parse_config(config)

    def test_traffic_kinds(self):
        for kind, expectation in (
            ({"kind": "generic", "points": 2}, 4),
            ({"kind": "spec2017"}, 20),
            ({"kind": "dnn-continuous"}, 4),
        ):
            parsed = parse_config(minimal_config(traffic=kind))
            assert len(parsed.traffic) == expectation

    def test_dnn_intermittent_traffic(self):
        parsed = parse_config(
            minimal_config(
                traffic={"kind": "dnn-intermittent", "workload": "albert",
                         "capacity_mb": 32}
            )
        )
        assert len(parsed.traffic) == 1
        assert "albert" in parsed.traffic[0].name

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                minimal_config(traffic={"kind": "dnn-intermittent",
                                        "workload": "nope"})
            )

    def test_unknown_traffic_kind_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(minimal_config(traffic={"kind": "quantum"}))

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            parse_config(
                minimal_config(system={"capacities_mb": [1],
                                       "optimization_targets": ["Vibes"]})
            )

    def test_bits_per_cell_validated(self):
        with pytest.raises(ConfigError):
            parse_config(
                minimal_config(system={"capacities_mb": [1], "bits_per_cell": 0})
            )


class TestLoader:
    def test_run_config_from_dict(self):
        table = run_config(minimal_config())
        assert len(table) == 1
        assert table[0]["tech"] == "STT"

    def test_run_config_from_file_with_csv(self, tmp_path):
        out_csv = tmp_path / "results.csv"
        config = minimal_config(output_csv=str(out_csv))
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(config))
        table = run_config(path)
        assert out_csv.exists()
        assert len(table) == 1

    def test_missing_file(self):
        with pytest.raises(ConfigError):
            load_config("/nonexistent/config.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_config(path)


class TestCLI:
    def test_cli_happy_path(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(minimal_config()))
        code = cli_main([str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 result rows" in out

    def test_cli_table_flag(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(minimal_config()))
        assert cli_main([str(path), "--table"]) == 0
        assert "| cell |" in capsys.readouterr().out

    def test_cli_csv_flag(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(minimal_config()))
        out_csv = tmp_path / "o.csv"
        assert cli_main([str(path), "--csv", str(out_csv)]) == 0
        assert out_csv.exists()

    def test_cli_error_path(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "missing.json")]) == 1
        assert "error" in capsys.readouterr().err
